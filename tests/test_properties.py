"""Property-based tests (hypothesis) for the core invariants.

Strategies build small random instances, queries, and dependencies;
the properties are the load-bearing semantic facts the paper relies on:

* CQ evaluation is monotone in the instance;
* the chase result satisfies the dependencies and receives a
  homomorphism from the input;
* backward rewriting agrees with the chase on linear TGDs;
* the blow-up preserves equality-free constraint satisfaction and CQ
  answers (the engine behind Thm 6.3);
* every enumerated access output is valid, and every selection policy
  produces valid outputs;
* accessible parts are access-valid subinstances (Prop 3.2's glue).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.accessibility import (
    AccessRequest,
    EagerSelection,
    RandomSelection,
    StingySelection,
    accessible_part,
    is_access_valid,
    is_valid_output,
    valid_outputs,
)
from repro.answerability import blow_up_instance
from repro.chase import ChaseOutcome, chase, satisfies
from repro.constraints import TGD, fd, inclusion_dependency
from repro.containment import contains, linear_contains
from repro.data import Instance
from repro.logic import (
    Atom,
    Constant,
    Variable,
    boolean_cq,
    holds,
    instance_homomorphism,
)
from repro.schema import AccessMethod, Relation, Schema

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
RELATIONS = [("R", 2), ("S", 1), ("T", 2)]

values = st.integers(min_value=0, max_value=4).map(Constant)


@st.composite
def facts(draw):
    name, arity = draw(st.sampled_from(RELATIONS))
    return Atom(name, tuple(draw(values) for __ in range(arity)))


instances = st.lists(facts(), min_size=0, max_size=10).map(Instance)

query_variables = st.sampled_from(
    [Variable(n) for n in ("x", "y", "z")]
)


@st.composite
def query_atoms(draw):
    name, arity = draw(st.sampled_from(RELATIONS))
    terms = tuple(
        draw(st.one_of(query_variables, values)) for __ in range(arity)
    )
    return Atom(name, terms)


boolean_queries = st.lists(query_atoms(), min_size=1, max_size=3).map(
    boolean_cq
)


@st.composite
def unary_ids(draw):
    (src, src_arity), (dst, dst_arity) = draw(
        st.tuples(st.sampled_from(RELATIONS), st.sampled_from(RELATIONS))
    )
    src_pos = draw(st.integers(0, src_arity - 1))
    dst_pos = draw(st.integers(0, dst_arity - 1))
    return inclusion_dependency(
        src, (src_pos,), dst, (dst_pos,), src_arity, dst_arity
    )


id_sets = st.lists(unary_ids(), min_size=0, max_size=3)


# ----------------------------------------------------------------------
# CQ evaluation
# ----------------------------------------------------------------------
class TestQueryProperties:
    @given(q=boolean_queries, inst=instances, extra=facts())
    @settings(max_examples=60, deadline=None)
    def test_cq_monotone(self, q, inst, extra):
        before = holds(q, inst)
        bigger = inst.copy()
        bigger.add(extra)
        if before:
            assert holds(q, bigger)

    @given(q=boolean_queries)
    @settings(max_examples=60, deadline=None)
    def test_query_holds_on_canonical_db(self, q):
        canonical, __ = q.canonical_instance()
        assert holds(q, canonical)


# ----------------------------------------------------------------------
# Chase
# ----------------------------------------------------------------------
class TestChaseProperties:
    @given(inst=instances, ids=id_sets)
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_chase_fixpoint_satisfies(self, inst, ids):
        result = chase(inst, ids, max_rounds=12, max_facts=3000)
        if result.outcome is ChaseOutcome.FIXPOINT:
            assert satisfies(result.instance, ids)

    @given(inst=instances, ids=id_sets)
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_input_embeds_into_chase(self, inst, ids):
        result = chase(inst, ids, max_rounds=8, max_facts=3000)
        assert inst.is_subinstance_of(result.instance)

    @given(inst=instances)
    @settings(max_examples=50, deadline=None)
    def test_fd_chase_merges_or_fails(self, inst):
        dependency = fd("R", [0], 1)
        result = chase(inst, [dependency])
        if result.outcome is not ChaseOutcome.FAILED:
            assert dependency.satisfied_by(result.instance)


# ----------------------------------------------------------------------
# Rewriting vs chase
# ----------------------------------------------------------------------
class TestRewritingAgreement:
    @given(q1=boolean_queries, q2=boolean_queries, ids=id_sets)
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_agreement_on_definitive_cases(self, q1, q2, ids):
        chase_decision = contains(q1, q2, ids, max_rounds=8)
        rewrite_decision = linear_contains(q1, q2, ids)
        assert not rewrite_decision.is_unknown
        if not chase_decision.is_unknown:
            assert chase_decision.truth == rewrite_decision.truth


# ----------------------------------------------------------------------
# Blow-up (Thm 6.3's engine)
# ----------------------------------------------------------------------
class TestBlowUpProperties:
    @given(inst=instances, q=boolean_queries, copies=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_preserves_cq_truth(self, inst, q, copies):
        assert holds(q, inst) == holds(q, blow_up_instance(inst, copies))

    @given(inst=instances, rule=unary_ids(), copies=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_preserves_id_satisfaction(self, inst, rule, copies):
        blown = blow_up_instance(inst, copies)
        assert rule.satisfied_by(inst) == rule.satisfied_by(blown)

    @given(inst=instances, copies=st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_original_embeds_and_projects_back(self, inst, copies):
        blown = blow_up_instance(inst, copies)
        assert inst.is_subinstance_of(blown)
        # The projection a^j ↦ a collapses the blow-up exactly onto the
        # original (the paper's homomorphism back to I).
        projection = {}
        for term in blown.active_domain():
            if isinstance(term, Constant) and isinstance(term.value, tuple):
                if term.value and term.value[0] == "@clone":
                    projection[term] = Constant(term.value[1])
        assert blown.substitute(projection) == inst


# ----------------------------------------------------------------------
# Access semantics
# ----------------------------------------------------------------------
def _method(bound, inputs=()):
    return AccessMethod("m", Relation("R", 2), frozenset(inputs), bound)


class TestAccessProperties:
    @given(inst=instances, bound=st.integers(1, 4))
    @settings(max_examples=50, deadline=None)
    def test_enumerated_outputs_valid(self, inst, bound):
        request = AccessRequest(_method(bound), ())
        for output in valid_outputs(inst, request, limit=20):
            assert is_valid_output(output, inst, request)

    @given(inst=instances, bound=st.integers(1, 4), seed=st.integers(0, 5))
    @settings(max_examples=50, deadline=None)
    def test_selection_policies_valid(self, inst, bound, seed):
        request = AccessRequest(_method(bound), ())
        for selection in (
            EagerSelection(),
            StingySelection(),
            RandomSelection(seed=seed),
        ):
            output = selection.select(inst, request)
            assert is_valid_output(output, inst, request)

    @given(inst=instances, bound=st.integers(1, 3), seed=st.integers(0, 3))
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_accessible_parts_access_valid(self, inst, bound, seed):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_relation("S", 1)
        schema.add_relation("T", 2)
        schema.add_method("dump", "R", inputs=[], result_bound=bound)
        schema.add_method("lookup", "S", inputs=[0])
        schema.add_method("scan_t", "T", inputs=[0])
        selection = RandomSelection(seed=seed)
        part = accessible_part(inst, schema, selection).part
        assert part.is_subinstance_of(inst)
        assert is_access_valid(part, inst, schema)
