"""CI smoke: live `/metrics` scrape plus the `op: "metrics"` wire frame.

Run directly (``PYTHONPATH=src python tests/obs/smoke_metrics.py``):

* starts a real `DecideServer` (TCP) with a shared `MetricsRegistry`
  and JSON request logging, decides a few queries, asks for the
  ``op: "metrics"`` frame, and asserts the request histogram counted
  every decide with a per-stage split;
* serves the same pool over the WSGI adapter via ``wsgiref`` in a
  thread, scrapes ``GET /metrics`` over real HTTP, and runs the
  payload through `validate_exposition` (parseable Prometheus text,
  no duplicate series);
* asserts the JSON log emitted one record per request.

Exit code 0 on success — the CI metrics-smoke step gates on it.
"""

import asyncio
import io
import json
import sys
import threading
import urllib.request
from wsgiref.simple_server import WSGIServer, make_server

from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    RequestLogger,
    validate_exposition,
)
from repro.server import DecideServer, SessionPool, make_wsgi_app
from repro.workloads import university_schema

DECIDES = 5


async def tcp_leg(pool: SessionPool, log_stream: io.StringIO) -> None:
    registry = MetricsRegistry()
    server = DecideServer(
        pool,
        port=0,
        metrics=registry,
        request_log=RequestLogger(stream=log_stream),
    )
    await server.start()
    host, port = server.address
    print(f"smoke TCP server on {host}:{port}")
    try:
        reader, writer = await asyncio.open_connection(host, port)
        frames = [
            {"query": "Udirectory(i,a,p)", "id": index}
            for index in range(DECIDES)
        ]
        frames.append({"op": "metrics", "id": "m"})
        for frame in frames:
            writer.write(json.dumps(frame).encode("utf-8") + b"\n")
        await writer.drain()
        replies = []
        for __ in frames:
            line = await asyncio.wait_for(reader.readline(), timeout=60)
            replies.append(json.loads(line))
        writer.close()
        await writer.wait_closed()
        *decisions, metrics_frame = replies
        assert all(r["decision"] == "yes" for r in decisions), decisions
        assert metrics_frame["op"] == "metrics", metrics_frame
        snapshot = metrics_frame["metrics"]
        (series,) = [
            s
            for s in snapshot["histograms"]["repro_request_ms"]["series"]
            if s["labels"] == {"op": "decide"}
        ]
        assert series["count"] == DECIDES, series
        assert series["p50"] is not None and series["p99"] is not None
        stages = {
            s["labels"]["stage"]
            for s in snapshot["histograms"]["repro_request_stage_ms"][
                "series"
            ]
        }
        assert "queue" in stages and "compile" in stages, stages
        assert (
            snapshot["providers"]["pool"]["counters"]["requests"]
            == DECIDES
        ), snapshot["providers"]["pool"]
        # the exposition of the same registry validates too
        counts = validate_exposition(registry.render())
        assert counts["repro_request_ms_count"] >= 1, counts
        print(
            f"ok: op:metrics counted {series['count']} decides, "
            f"stages {sorted(stages)}"
        )
    finally:
        await server.close()


def http_leg(pool: SessionPool) -> None:
    app = make_wsgi_app(pool)

    class QuietServer(WSGIServer):
        def handle_error(self, request, client_address):  # pragma: no cover
            raise

    httpd = make_server("127.0.0.1", 0, app, server_class=QuietServer)
    host, port = httpd.server_address
    print(f"smoke HTTP server on {host}:{port}")
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        body = json.dumps({"query": "Udirectory(i,a,p)"}).encode("utf-8")
        with urllib.request.urlopen(
            urllib.request.Request(
                f"http://{host}:{port}/decide", data=body
            ),
            timeout=30,
        ) as response:
            assert json.loads(response.read())["decision"] == "yes"
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=30
        ) as response:
            assert response.status == 200, response.status
            content_type = response.headers["Content-Type"]
            assert content_type == CONTENT_TYPE, content_type
            text = response.read().decode("utf-8")
        names = validate_exposition(text)  # raises on malformed/duplicate
        assert (
            'repro_http_request_ms_count{op="decide"} 1' in text
        ), "decide did not increment the request histogram"
        assert "repro_pool_counters_requests" in text, (
            "legacy pool counters missing from the scrape"
        )
        print(
            f"ok: /metrics scrape valid, {len(names)} series names, "
            f"{sum(names.values())} samples"
        )
    finally:
        httpd.shutdown()
        httpd.server_close()
        thread.join(timeout=10)


def main() -> int:
    log_stream = io.StringIO()
    pool = SessionPool(university_schema(ud_bound=100), pool_size=2)
    asyncio.run(tcp_leg(pool, log_stream))
    records = [
        json.loads(line) for line in log_stream.getvalue().splitlines()
    ]
    assert len(records) == DECIDES + 1, len(records)  # + op:metrics
    assert all(r["event"] == "request" for r in records), records
    assert sum(r.get("op") == "decide" for r in records) == DECIDES
    print(f"ok: {len(records)} JSON log records")
    http_leg(SessionPool(university_schema(ud_bound=100)))
    print("ok: metrics smoke complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
