"""`StageTimer`: exclusive accounting, nesting, thread-local wiring."""

from repro.obs import (
    STAGES,
    StageTimer,
    activate,
    current_timer,
    deactivate,
    stage,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class TestStageTimer:
    def test_flat_stages_accumulate(self):
        clock = FakeClock()
        timer = StageTimer(clock=clock)
        timer.push("chase")
        clock.tick(0.5)
        timer.pop()
        timer.push("chase")
        clock.tick(0.25)
        timer.pop()
        assert timer.stages == {"chase": 0.75}

    def test_nested_stage_pauses_the_parent(self):
        # match runs 1.0s wall, but 0.6s of it is an inner chase: the
        # exclusive split must be match=0.4, chase=0.6.
        clock = FakeClock()
        timer = StageTimer(clock=clock)
        timer.push("match")
        clock.tick(0.1)
        timer.push("chase")
        clock.tick(0.6)
        timer.pop()
        clock.tick(0.3)
        timer.pop()
        assert abs(timer.stages["match"] - 0.4) < 1e-9
        assert abs(timer.stages["chase"] - 0.6) < 1e-9
        assert abs(sum(timer.stages.values()) - 1.0) < 1e-9

    def test_add_credits_external_time(self):
        timer = StageTimer(clock=FakeClock())
        timer.add("queue", 0.032)
        timer.add("queue", 0.01)
        assert abs(timer.stages["queue"] - 0.042) < 1e-12

    def test_as_millis_orders_by_canonical_glossary(self):
        clock = FakeClock()
        timer = StageTimer(clock=clock)
        for name in ("persist", "compile", "custom_z", "chase"):
            timer.push(name)
            clock.tick(0.001)
            timer.pop()
        timer.add("queue", 0.002)
        keys = list(timer.as_millis())
        assert keys == ["queue", "compile", "chase", "persist", "custom_z"]
        assert timer.as_millis()["queue"] == 2.0

    def test_stage_glossary_is_the_documented_six(self):
        assert STAGES == (
            "queue", "compile", "rewrite", "chase", "match", "persist"
        )


class TestThreadLocalWiring:
    def test_stage_is_noop_without_active_timer(self):
        assert current_timer() is None
        with stage("chase"):
            pass  # must not raise, must not record anywhere

    def test_activate_deactivate_restores_previous(self):
        outer, inner = StageTimer(), StageTimer()
        previous = activate(outer)
        assert previous is None and current_timer() is outer
        nested_previous = activate(inner)
        assert nested_previous is outer and current_timer() is inner
        deactivate(nested_previous)
        assert current_timer() is outer
        deactivate(previous)
        assert current_timer() is None

    def test_stage_records_into_the_active_timer(self):
        timer = StageTimer()
        previous = activate(timer)
        try:
            with stage("rewrite"):
                pass
        finally:
            deactivate(previous)
        assert "rewrite" in timer.stages

    def test_stage_pops_on_exception(self):
        clock = FakeClock()
        timer = StageTimer(clock=clock)
        previous = activate(timer)
        try:
            try:
                with stage("chase"):
                    clock.tick(0.2)
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
        finally:
            deactivate(previous)
        assert abs(timer.stages["chase"] - 0.2) < 1e-9
        # the stack unwound: a fresh stage still nests correctly
        previous = activate(timer)
        try:
            with stage("match"):
                clock.tick(0.1)
        finally:
            deactivate(previous)
        assert abs(timer.stages["match"] - 0.1) < 1e-9
