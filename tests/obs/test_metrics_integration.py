"""End-to-end observability: TCP server, WSGI app, and fleet.

Asserts the ISSUE's acceptance criteria directly: ``GET /metrics``
(WSGI) and ``op: "metrics"`` (TCP, fleet-aggregated) expose the
request-latency histograms with per-stage timings, every legacy
``stats()`` counter rides along as a provider, and the registry's
provider values equal the legacy values (the no-second-bookkeeping
equivalence).
"""

import asyncio
import io
import json

from repro.io import json_safe
from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    RequestLogger,
    flatten_stats,
    validate_exposition,
)
from repro.server import (
    DecideServer,
    FleetDispatcher,
    SessionPool,
    make_wsgi_app,
)
from repro.workloads import university_schema

QUERY = "Udirectory(i,a,p)"


def run(coroutine):
    return asyncio.run(coroutine)


async def exchange_raw(address, frames: list) -> list[bytes]:
    host, port = address
    reader, writer = await asyncio.open_connection(host, port)
    for frame in frames:
        text = frame if isinstance(frame, str) else json.dumps(frame)
        writer.write(text.encode("utf-8") + b"\n")
    await writer.drain()
    replies = []
    for __ in frames:
        replies.append(
            await asyncio.wait_for(reader.readline(), timeout=30)
        )
    writer.close()
    await writer.wait_closed()
    return replies


async def exchange(address, frames: list) -> list:
    return [
        json.loads(line) for line in await exchange_raw(address, frames)
    ]


class TestDecideServerMetrics:
    def test_op_metrics_exposes_request_histograms_and_stages(self):
        async def scenario():
            pool = SessionPool(university_schema(ud_bound=100))
            server = DecideServer(
                pool, port=0, metrics=MetricsRegistry()
            )
            await server.start()
            try:
                return await exchange(
                    server.address,
                    [
                        {"query": QUERY},
                        {"op": "plan", "query": QUERY},
                        {"op": "metrics", "id": "m"},
                    ],
                )
            finally:
                await server.close()

        decided, plan, frame = run(scenario())
        assert decided["decision"] == "yes"
        assert frame["op"] == "metrics" and frame["id"] == "m"
        assert isinstance(frame["pid"], int)
        snapshot = frame["metrics"]
        histograms = snapshot["histograms"]
        by_op = {
            tuple(sorted(s["labels"].items())): s
            for s in histograms["repro_request_ms"]["series"]
        }
        assert by_op[(("op", "decide"),)]["count"] == 1
        assert by_op[(("op", "plan"),)]["count"] == 1
        assert by_op[(("op", "decide"),)]["p50"] is not None
        stage_names = {
            s["labels"]["stage"]
            for s in histograms["repro_request_stage_ms"]["series"]
        }
        # a cold decide pays at least the executor queue and compile
        assert {"queue", "compile"} <= stage_names
        counters = {
            (name, tuple(sorted(s["labels"].items()))): s["value"]
            for name, samples in snapshot["counters"].items()
            for s in samples
        }
        assert counters[
            ("repro_requests_total", (("op", "decide"), ("outcome", "ok")))
        ] == 1.0

    def test_registry_providers_equal_legacy_stats(self):
        async def scenario():
            pool = SessionPool(university_schema(ud_bound=100))
            server = DecideServer(
                pool, port=0, metrics=MetricsRegistry()
            )
            await server.start()
            try:
                await exchange(server.address, [{"query": QUERY}])
            finally:
                await server.close()
            return server, pool

        server, pool = run(scenario())
        providers = server.metrics.collect_providers()
        # every numeric leaf of the legacy surfaces appears with the
        # same value among the registry's flattened provider samples
        for name, legacy in (
            ("pool", pool.stats()),
            ("server", server.server_stats()),
        ):
            expected = flatten_stats(json_safe(legacy), f"repro_{name}")
            actual = flatten_stats(
                json_safe(providers[name]), f"repro_{name}"
            )
            assert expected == actual
            assert expected  # non-vacuous: the dicts have numeric leaves
        assert providers["pool"]["counters"]["requests"] == 1

    def test_json_log_lines_carry_outcome_and_stages(self):
        stream = io.StringIO()

        async def scenario():
            pool = SessionPool(university_schema(ud_bound=100))
            server = DecideServer(
                pool,
                port=0,
                metrics=MetricsRegistry(),
                request_log=RequestLogger(stream=stream),
            )
            await server.start()
            try:
                return await exchange(
                    server.address,
                    [{"query": QUERY}, {"query": "Nope("}],
                )
            finally:
                await server.close()

        ok, bad = run(scenario())
        assert ok["decision"] == "yes" and "error" in bad
        records = [
            json.loads(line) for line in stream.getvalue().splitlines()
        ]
        assert len(records) == 2
        good, err = records
        assert good["event"] == "request" and good["op"] == "decide"
        assert good["outcome"] == "ok" and good["decision"] == "yes"
        assert good["elapsed_ms"] >= 0
        assert "compile" in good["stages_ms"]
        assert good["peer"]
        assert err["outcome"] == "error"
        assert err["error_type"] == "ParseError"

    def test_wire_frames_use_stable_key_order(self):
        async def scenario():
            pool = SessionPool(university_schema(ud_bound=100))
            server = DecideServer(pool, port=0)
            await server.start()
            try:
                return await exchange_raw(
                    server.address, [{"query": QUERY}, {"op": "stats"}]
                )
            finally:
                await server.close()

        for line in run(scenario()):
            parsed = json.loads(line)
            assert line.decode("utf-8").rstrip("\n") == json.dumps(
                parsed, sort_keys=True
            )

    def test_op_metrics_without_registry_still_answers(self):
        # A server started without metrics builds an ad-hoc registry so
        # the wire op never errors; pool counters are still present.
        async def scenario():
            pool = SessionPool(university_schema(ud_bound=100))
            server = DecideServer(pool, port=0)
            await server.start()
            try:
                return await exchange(
                    server.address,
                    [{"query": QUERY}, {"op": "metrics"}],
                )
            finally:
                await server.close()

        __, frame = run(scenario())
        assert frame["op"] == "metrics"
        providers = frame["metrics"]["providers"]
        assert providers["pool"]["counters"]["requests"] == 1


def wsgi_call(app, method="GET", path="/", body=None):
    raw = b"" if body is None else json.dumps(body).encode("utf-8")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(raw)),
        "REMOTE_ADDR": "127.0.0.1",
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    chunks = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], chunks


class TestWsgiMetrics:
    def test_scrape_validates_and_counts_requests(self):
        registry = MetricsRegistry()
        app = make_wsgi_app(
            SessionPool(university_schema(ud_bound=100)),
            metrics=registry,
        )
        status, headers, __ = wsgi_call(
            app, "POST", "/decide", {"query": QUERY}
        )
        assert status == "200 OK"
        status, headers, body = wsgi_call(app, "GET", "/metrics")
        assert status == "200 OK"
        assert headers["Content-Type"] == CONTENT_TYPE
        text = body.decode("utf-8")
        names = validate_exposition(text)  # parseable, no duplicates
        assert 'repro_http_requests_total{op="decide",outcome="ok"} 1' in text
        assert 'repro_http_request_ms_count{op="decide"} 1' in text
        assert names["repro_http_request_ms_bucket"] >= 2
        # provider leaves (the legacy pool counters) ride along
        assert "repro_pool_counters_requests 1" in text

    def test_second_decide_increments_the_scrape(self):
        app = make_wsgi_app(SessionPool(university_schema(ud_bound=100)))
        for __ in range(2):
            wsgi_call(app, "POST", "/", {"query": QUERY})
        __, __, body = wsgi_call(app, "GET", "/metrics")
        assert (
            'repro_http_request_ms_count{op="decide"} 2'
            in body.decode("utf-8")
        )

    def test_parse_errors_are_observed_as_invalid(self):
        app = make_wsgi_app(SessionPool(university_schema(ud_bound=100)))
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/decide",
            "CONTENT_LENGTH": "3",
            "wsgi.input": io.BytesIO(b"{{{"),
        }
        captured = {}
        app(environ, lambda s, h: captured.setdefault("status", s))
        assert captured["status"] == "400 Bad Request"
        __, __, body = wsgi_call(app, "GET", "/metrics")
        assert (
            'repro_http_requests_total{op="invalid",outcome="error"} 1'
            in body.decode("utf-8")
        )

    def test_metrics_op_over_post_matches_the_wire_frame(self):
        app = make_wsgi_app(SessionPool(university_schema(ud_bound=100)))
        status, __, chunks = wsgi_call(
            app, "POST", "/", {"op": "metrics", "id": 5}
        )
        frame = json.loads(chunks)
        assert status == "200 OK"
        assert frame["op"] == "metrics" and frame["id"] == 5
        assert "histograms" in frame["metrics"]


class TestFleetMetrics:
    def test_op_metrics_aggregates_across_workers(self):
        async def scenario():
            pools = [
                SessionPool(university_schema(ud_bound=100))
                for __ in range(2)
            ]
            workers = [
                DecideServer(pool, port=0, metrics=MetricsRegistry())
                for pool in pools
            ]
            for worker in workers:
                await worker.start()
            dispatcher = FleetDispatcher(port=0)
            dispatcher.register_metrics(MetricsRegistry())
            await dispatcher.start()
            try:
                for index, worker in enumerate(workers):
                    host, port = worker.address
                    await dispatcher.add_worker(f"w{index}", host, port)
                replies = await exchange(
                    dispatcher.address,
                    [
                        {"query": QUERY},
                        {"query": QUERY},
                        {"op": "metrics", "id": "agg"},
                    ],
                )
                return replies
            finally:
                await dispatcher.close(drain_timeout=5)
                for worker in workers:
                    await worker.close()

        first, second, frame = run(scenario())
        assert first["decision"] == second["decision"] == "yes"
        assert frame["op"] == "metrics" and frame["id"] == "agg"
        assert isinstance(frame["pid"], int)
        assert frame["fleet"]["workers"] == 2
        by_id = {entry["worker"]: entry for entry in frame["workers"]}
        assert set(by_id) == {"w0", "w1"}
        for entry in by_id.values():
            assert isinstance(entry["pid"], int)
            assert "shards" in entry
            assert "histograms" in entry["metrics"]
        # both decides hit one worker (same fingerprint routes sticky);
        # the aggregate merges worker snapshots bucket-wise
        aggregate = frame["aggregate"]
        assert aggregate["workers_merged"] == 2
        (series,) = [
            s
            for s in aggregate["histograms"]["repro_request_ms"]["series"]
            if s["labels"] == {"op": "decide"}
        ]
        assert series["count"] == 2
        assert series["p50"] is not None
        # the dispatcher's own registry snapshot rides along
        assert "counters" in frame["dispatcher"]

    def test_dispatcher_counts_its_own_requests(self):
        async def scenario():
            pool = SessionPool(university_schema(ud_bound=100))
            worker = DecideServer(pool, port=0)
            await worker.start()
            dispatcher = FleetDispatcher(port=0)
            dispatcher.register_metrics(MetricsRegistry())
            await dispatcher.start()
            try:
                host, port = worker.address
                await dispatcher.add_worker("w0", host, port)
                await exchange(
                    dispatcher.address,
                    [{"query": QUERY}, {"op": "ping"}],
                )
                return dispatcher.metrics.snapshot()
            finally:
                await dispatcher.close(drain_timeout=5)
                await worker.close()

        snapshot = run(scenario())
        counters = {
            (name, tuple(sorted(s["labels"].items()))): s["value"]
            for name, samples in snapshot["counters"].items()
            for s in samples
        }
        assert counters[
            (
                "repro_fleet_requests_total",
                (("op", "decide"), ("outcome", "ok")),
            )
        ] == 1.0
        assert snapshot["providers"]["fleet"]["workers"] == 1
