"""Per-client quota-table battery: the bugfixes of this PR's satellites.

Regressions covered:

* the table used to grow past `MAX_CLIENT_STATES` when no entry was
  idle at insertion time — the cap is now hard (overflow peers share
  one untracked bucket);
* ``_ClientState.idle`` used to compare stale ``tokens`` against the
  burst (refill only happened inside ``take``), so a peer that drained
  its bucket and then went quiet was never prunable.

The battery churns thousands of peers with mixed idle/busy/drained
states under an injected clock and asserts the cap invariant
throughout.
"""

from repro.server import DecideServer
from repro.server.server import MAX_CLIENT_STATES, _ClientState


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


class FakePool:
    """The quota table never touches the pool; a stats stub suffices."""

    def stats(self) -> dict:
        return {}


def make_server(clock: FakeClock, **kwargs) -> DecideServer:
    kwargs.setdefault("client_rate", 10.0)
    kwargs.setdefault("client_burst", 8.0)
    return DecideServer(FakePool(), port=0, clock=clock, **kwargs)


class TestIdleCheck:
    def test_fresh_state_is_idle(self):
        state = _ClientState(burst=8.0, now=0.0)
        assert state.idle(10.0, 8.0, now=0.0)

    def test_inflight_is_never_idle(self):
        state = _ClientState(burst=8.0, now=0.0)
        state.inflight = 1
        assert not state.idle(None, 8.0, now=1e9)

    def test_rate_none_means_idle_when_not_inflight(self):
        state = _ClientState(burst=8.0, now=0.0)
        state.tokens = 0.0  # bucket state is meaningless without a rate
        assert state.idle(None, 8.0, now=0.0)

    def test_drained_then_quiet_peer_becomes_idle(self):
        # The satellite-2 regression: tokens refill only inside take(),
        # so idleness must be judged against the *virtually refilled*
        # bucket, not the stale stored value.
        state = _ClientState(burst=8.0, now=0.0)
        for __ in range(8):
            assert state.take(10.0, 8.0, now=0.0) is None
        assert state.tokens == 0.0
        assert not state.idle(10.0, 8.0, now=0.0)  # genuinely drained
        # 0.8s at 10 tokens/s refills the full burst of 8.
        assert state.idle(10.0, 8.0, now=0.8)

    def test_idle_check_does_not_mutate(self):
        state = _ClientState(burst=8.0, now=0.0)
        state.take(10.0, 8.0, now=0.0)
        tokens, stamp = state.tokens, state.stamp
        state.idle(10.0, 8.0, now=100.0)
        assert state.tokens == tokens and state.stamp == stamp

    def test_partially_refilled_is_still_busy(self):
        state = _ClientState(burst=8.0, now=0.0)
        for __ in range(8):
            state.take(10.0, 8.0, now=0.0)
        assert not state.idle(10.0, 8.0, now=0.4)  # only 4 of 8 back


class TestCapInvariant:
    def test_idle_churn_sweeps_and_counts_evictions(self):
        clock = FakeClock()
        server = make_server(clock)
        for index in range(4 * MAX_CLIENT_STATES):
            server._client_state(f"10.0.{index // 256}.{index % 256}:1")
            clock.tick(0.001)
            assert len(server._clients) <= MAX_CLIENT_STATES
        assert server._counters["client_evictions"] > 0
        assert server._counters["client_overflow"] == 0

    def test_all_busy_table_holds_cap_via_overflow_bucket(self):
        clock = FakeClock()
        server = make_server(clock)
        for index in range(MAX_CLIENT_STATES):
            server._client_state(f"busy-{index}").inflight = 1
        assert len(server._clients) == MAX_CLIENT_STATES
        first = server._client_state("newcomer-1")
        second = server._client_state("newcomer-2")
        assert first is second is server._overflow_state
        assert len(server._clients) == MAX_CLIENT_STATES
        assert server._counters["client_overflow"] == 2
        # the shared bucket still pays quota: it can drain
        for __ in range(8):
            first.take(10.0, 8.0, now=clock())
        assert first.take(10.0, 8.0, now=clock()) is not None

    def test_mixed_churn_battery(self):
        # Thousands of peers in three interleaved populations: busy
        # (inflight held), drained-then-quiet, and one-shot idle.  The
        # cap must hold at every step, busy entries must survive every
        # sweep, and drained peers must age into evictability.
        clock = FakeClock()
        server = make_server(clock)
        busy = [f"busy-{i}" for i in range(100)]
        for peer in busy:
            server._client_state(peer).inflight = 1
        for index in range(5000):
            peer = f"churn-{index}"
            state = server._client_state(peer)
            if index % 3 == 0 and state is not server._overflow_state:
                state.tokens = 0.0  # drained; refills via the clock
            clock.tick(0.01)
            assert len(server._clients) <= MAX_CLIENT_STATES
            for survivor in busy:
                assert survivor in server._clients
        assert server._counters["client_evictions"] > 0
        # Busy entries alone never filled the table, so tracked slots
        # kept recycling instead of spilling to the overflow bucket.
        assert server._counters["client_overflow"] == 0

    def test_overflow_clears_once_a_tracked_peer_frees(self):
        clock = FakeClock()
        server = make_server(clock)
        for index in range(MAX_CLIENT_STATES):
            server._client_state(f"busy-{index}").inflight = 1
        assert (
            server._client_state("spill")
            is server._overflow_state
        )
        # one busy peer completes and its bucket refills
        server._clients["busy-0"].inflight = 0
        clock.tick(10.0)
        state = server._client_state("tracked-again")
        assert state is not server._overflow_state
        assert "tracked-again" in server._clients
        assert len(server._clients) <= MAX_CLIENT_STATES

    def test_repeat_peer_reuses_its_state(self):
        clock = FakeClock()
        server = make_server(clock)
        first = server._client_state("1.2.3.4:5")
        assert server._client_state("1.2.3.4:5") is first
        assert len(server._clients) == 1
