"""Prometheus text exposition: rendering and the scrape validator."""

import pytest

from repro.obs import (
    CONTENT_TYPE,
    MetricsRegistry,
    render_prometheus,
    validate_exposition,
)


def build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    c = registry.counter(
        "repro_requests_total", "Requests.", labels=("op", "outcome")
    )
    c.inc(op="decide", outcome="ok")
    c.inc(2, op="decide", outcome="error")
    registry.gauge("repro_workers", "Worker threads.").set(4)
    h = registry.histogram(
        "repro_request_ms", "Latency.", buckets=(10.0, 20.0), labels=("op",)
    )
    for value in (1.0, 5.0, 12.0, 99.0):
        h.observe(value, op="decide")
    registry.register_provider(
        "pool", lambda: {"sessions": 2, "hits": {"memory": 7}}
    )
    return registry


class TestRender:
    def test_content_type_pins_the_text_format(self):
        assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def test_help_and_type_headers(self):
        text = render_prometheus(build_registry())
        assert "# HELP repro_requests_total Requests." in text
        assert "# TYPE repro_requests_total counter" in text
        assert "# TYPE repro_workers gauge" in text
        assert "# TYPE repro_request_ms histogram" in text

    def test_counter_and_gauge_samples(self):
        text = render_prometheus(build_registry())
        assert 'repro_requests_total{op="decide",outcome="ok"} 1' in text
        assert 'repro_requests_total{op="decide",outcome="error"} 2' in text
        assert "repro_workers 4" in text

    def test_histogram_buckets_are_cumulative_with_inf(self):
        text = render_prometheus(build_registry())
        assert 'repro_request_ms_bucket{le="10",op="decide"} 2' in text
        assert 'repro_request_ms_bucket{le="20",op="decide"} 3' in text
        assert 'repro_request_ms_bucket{le="+Inf",op="decide"} 4' in text
        assert 'repro_request_ms_sum{op="decide"} 117' in text
        assert 'repro_request_ms_count{op="decide"} 4' in text

    def test_provider_leaves_become_untyped_gauges(self):
        text = render_prometheus(build_registry())
        assert "repro_pool_sessions 2" in text
        assert "repro_pool_hits_memory 7" in text

    def test_provider_name_colliding_with_instrument_is_dropped(self):
        registry = MetricsRegistry()
        registry.counter("repro_pool_sessions", "c").inc(5)
        registry.register_provider("pool", lambda: {"sessions": 99})
        text = render_prometheus(registry)
        assert "repro_pool_sessions 5" in text
        assert "99" not in text
        validate_exposition(text)  # and in particular: no duplicates

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", labels=("who",)).inc(
            who='pe"er\\1\nx'
        )
        text = render_prometheus(registry)
        assert '{who="pe\\"er\\\\1\\nx"}' in text
        validate_exposition(text)

    def test_render_is_idempotent_and_validates(self):
        registry = build_registry()
        first, second = render_prometheus(registry), render_prometheus(registry)
        assert first == second
        names = validate_exposition(first)
        assert names["repro_requests_total"] == 2
        assert names["repro_request_ms_bucket"] == 3
        assert names["repro_request_ms_count"] == 1


class TestValidator:
    def test_rejects_duplicate_series(self):
        with pytest.raises(ValueError, match="duplicate series"):
            validate_exposition("repro_x 1\nrepro_x 2\n")

    def test_same_name_different_labels_is_fine(self):
        names = validate_exposition(
            'repro_x{op="a"} 1\nrepro_x{op="b"} 2\n'
        )
        assert names == {"repro_x": 2}

    def test_rejects_unparseable_sample(self):
        with pytest.raises(ValueError, match="unparseable sample"):
            validate_exposition("not a metric line at all !!\n")

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            validate_exposition("repro_x notanumber\n")

    def test_accepts_inf_and_nan_spellings(self):
        validate_exposition("repro_a +Inf\nrepro_b -Inf\nrepro_c NaN\n")

    def test_rejects_stray_comment(self):
        with pytest.raises(ValueError, match="bad comment"):
            validate_exposition("# FOO repro_x something\n")

    def test_blank_lines_are_ignored(self):
        assert validate_exposition("\n\nrepro_x 1\n\n") == {"repro_x": 1}
