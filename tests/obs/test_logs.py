"""`RequestLogger`: JSON-lines records, drop-not-raise, CLI glue."""

import io
import json

import pytest

from repro.obs import RequestLogger, request_logger_from_format


class TestRequestLogger:
    def test_one_json_object_per_line(self):
        stream = io.StringIO()
        logger = RequestLogger(stream=stream, clock=lambda: 1700000000.5)
        logger.log(peer="1.2.3.4:5", op="decide", outcome="ok")
        logger.log(peer="1.2.3.4:5", op="plan", outcome="error")
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["event"] == "request"
        assert first["peer"] == "1.2.3.4:5"
        assert first["op"] == "decide"
        assert first["ts"].endswith("Z") and "T" in first["ts"]
        assert logger.records_written == 2

    def test_injected_clock_is_deterministic(self):
        stream = io.StringIO()
        logger = RequestLogger(stream=stream, clock=lambda: 0.0)
        logger.log()
        assert json.loads(stream.getvalue())["ts"] == (
            "1970-01-01T00:00:00.000Z"
        )

    def test_none_fields_are_omitted(self):
        stream = io.StringIO()
        logger = RequestLogger(stream=stream, clock=lambda: 0.0)
        logger.log(op="decide", error_type=None, retry_after_ms=None)
        record = json.loads(stream.getvalue())
        assert "error_type" not in record
        assert "retry_after_ms" not in record
        assert record["op"] == "decide"

    def test_unserializable_field_stringifies_rather_than_raises(self):
        stream = io.StringIO()
        logger = RequestLogger(stream=stream, clock=lambda: 0.0)
        logger.log(weird=object())
        assert logger.records_written == 1
        assert "object object" in json.loads(stream.getvalue())["weird"]

    def test_closed_stream_drops_and_counts(self):
        stream = io.StringIO()
        stream.close()
        logger = RequestLogger(stream=stream, clock=lambda: 0.0)
        logger.log(op="decide")  # must not raise
        assert logger.records_written == 0
        assert logger.records_dropped == 1
        assert logger.stats() == {
            "records_written": 0,
            "records_dropped": 1,
        }


class TestFormatGlue:
    def test_json_format_builds_a_logger(self):
        stream = io.StringIO()
        logger = request_logger_from_format("json", stream=stream)
        assert isinstance(logger, RequestLogger)

    def test_text_and_none_mean_no_logger(self):
        assert request_logger_from_format("text") is None
        assert request_logger_from_format(None) is None

    def test_unknown_format_is_rejected(self):
        with pytest.raises(ValueError, match="unknown log format"):
            request_logger_from_format("xml")
