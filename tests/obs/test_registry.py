"""Unit tests for `repro.obs.registry`: instruments, percentile math,
provider flattening, snapshots, and cross-worker merging."""

import json
import math
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricsRegistry,
    flatten_stats,
    merge_snapshots,
)
from repro.obs.registry import Histogram, _percentile_from_counts


class TestCounterGauge:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_t_total", "t", labels=("op",))
        c.inc(op="decide")
        c.inc(2.0, op="decide")
        c.inc(op="plan")
        assert c.value(op="decide") == 3.0
        assert c.value(op="plan") == 1.0
        assert c.value(op="missing") == 0.0

    def test_counter_rejects_negative_and_wrong_labels(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_t_total", "t", labels=("op",))
        with pytest.raises(ValueError):
            c.inc(-1.0, op="decide")
        with pytest.raises(ValueError):
            c.inc(other="decide")
        with pytest.raises(ValueError):
            c.inc()

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        g = registry.gauge("repro_depth", "d")
        g.set(5)
        assert g.value() == 5.0
        g.inc(-2)
        assert g.value() == 3.0

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "x", labels=("op",))
        b = registry.counter("repro_x_total", "x", labels=("op",))
        assert a is b

    def test_kind_conflict_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("repro_x_total", "x")
        with pytest.raises(ValueError):
            registry.counter("repro_x_total", "x", labels=("op",))

    def test_invalid_metric_name_is_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("repro bad name", "x")

    def test_thread_safety_under_contention(self):
        registry = MetricsRegistry()
        c = registry.counter("repro_n_total", "n")

        def spin():
            for __ in range(1000):
                c.inc()

        threads = [threading.Thread(target=spin) for __ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000.0


class TestHistogramPercentiles:
    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram("repro_h", "h", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram("repro_h", "h", buckets=())

    def test_empty_series_has_no_percentile(self):
        h = Histogram("repro_h", "h", buckets=(1.0, 2.0))
        assert h.percentile(50) is None
        assert h.count() == 0 and h.sum() == 0.0

    def test_percentile_bounds_are_validated(self):
        h = Histogram("repro_h", "h", buckets=(1.0, 2.0))
        h.observe(0.5)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_bucket_linear_interpolation(self):
        # 10 observations all in (0, 10]: pK is at K% of the bucket
        # width under the uniform-within-bucket assumption.
        h = Histogram("repro_h", "h", buckets=(10.0, 20.0))
        for __ in range(10):
            h.observe(4.2)
        assert h.percentile(50) == pytest.approx(5.0)
        assert h.percentile(90) == pytest.approx(9.0)
        assert h.percentile(100) == pytest.approx(10.0)

    def test_interpolation_across_two_buckets(self):
        # 5 observations <= 10, 5 in (10, 20]: the median falls exactly
        # at the first bound, p75 at the midpoint of the second bucket.
        h = Histogram("repro_h", "h", buckets=(10.0, 20.0))
        for value in (1, 2, 3, 4, 5):
            h.observe(value)
        for value in (11, 12, 13, 14, 15):
            h.observe(value)
        assert h.percentile(50) == pytest.approx(10.0)
        assert h.percentile(75) == pytest.approx(15.0)

    def test_known_distribution_p50_p99(self):
        # 100 observations spread uniformly 1..100 over bounds every 10:
        # the estimate must land within one bucket of the true value.
        bounds = tuple(float(b) for b in range(10, 101, 10))
        h = Histogram("repro_h", "h", buckets=bounds)
        for value in range(1, 101):
            h.observe(float(value))
        assert h.percentile(50) == pytest.approx(50.0, abs=10.0)
        assert h.percentile(99) == pytest.approx(99.0, abs=10.0)
        assert h.count() == 100
        assert h.sum() == pytest.approx(5050.0)

    def test_overflow_reports_last_finite_bound_as_floor(self):
        h = Histogram("repro_h", "h", buckets=(1.0, 2.0))
        for __ in range(10):
            h.observe(100.0)
        assert h.percentile(50) == 2.0
        assert h.percentile(99) == 2.0

    def test_labelled_series_are_independent(self):
        h = Histogram(
            "repro_h", "h", buckets=(10.0, 20.0), label_names=("op",)
        )
        h.observe(5.0, op="decide")
        h.observe(15.0, op="plan")
        assert h.count(op="decide") == 1
        assert h.count(op="plan") == 1
        assert h.percentile(50, op="decide") == pytest.approx(5.0)
        assert h.percentile(50, op="plan") == pytest.approx(15.0)

    def test_default_buckets_cover_sub_ms_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS_MS[0] <= 1.0
        assert DEFAULT_LATENCY_BUCKETS_MS[-1] >= 5000.0
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            DEFAULT_LATENCY_BUCKETS_MS
        )

    def test_percentile_from_counts_matches_instrument(self):
        bounds = (10.0, 20.0, 30.0)
        h = Histogram("repro_h", "h", buckets=bounds)
        for value in (1, 5, 12, 18, 25, 29, 99):
            h.observe(float(value))
        ((__, state),) = h.series()
        for p in (50, 95, 99):
            assert _percentile_from_counts(
                bounds, state["counts"], state["inf"], p
            ) == pytest.approx(h.percentile(p))


class TestFlattenStats:
    def test_numbers_bools_recurse_with_joined_names(self):
        stats = {"a": {"b": 2, "ok": True}, "c": 1.5}
        samples = flatten_stats(stats, "repro_x")
        assert ("repro_x_a_b", {}, 2.0) in samples
        assert ("repro_x_a_ok", {}, 1.0) in samples
        assert ("repro_x_c", {}, 1.5) in samples

    def test_strings_none_and_bare_lists_are_skipped(self):
        samples = flatten_stats(
            {"s": "text", "n": None, "l": [1, 2, 3]}, "repro_x"
        )
        assert samples == []

    def test_hexish_keys_become_key_label(self):
        digest = "ab" * 16
        samples = flatten_stats({digest: {"hits": 3}}, "repro_x")
        assert samples == [
            ("repro_x_hits", {"key": digest[:12]}, 3.0)
        ]

    def test_fingerprint_lists_become_fingerprint_label(self):
        stats = {
            "sessions": [
                {"fingerprint": "cd" * 16, "requests": 7},
                {"fingerprint": "ef" * 16, "requests": 9},
            ]
        }
        samples = flatten_stats(stats, "repro_pool")
        assert (
            "repro_pool_sessions_requests",
            {"fingerprint": "cd" * 6},
            7.0,
        ) in samples
        assert (
            "repro_pool_sessions_requests",
            {"fingerprint": "ef" * 6},
            9.0,
        ) in samples

    def test_non_finite_floats_are_skipped(self):
        samples = flatten_stats(
            {"nan": math.nan, "inf": math.inf, "ok": 1}, "repro_x"
        )
        assert samples == [("repro_x_ok", {}, 1.0)]

    def test_awkward_keys_are_sanitized(self):
        samples = flatten_stats({"per-shard %": 1, "0weird": 2}, "repro_x")
        names = {name for name, __, __ in samples}
        assert names == {"repro_x_per_shard__", "repro_x__0weird"}


class TestProvidersAndSnapshot:
    def test_provider_equivalence_with_legacy_stats(self):
        # The ISSUE's equivalence criterion: every numeric leaf of the
        # legacy stats() dict appears, with the same value, among the
        # registry's flattened provider samples.
        legacy = {"requests": 41, "hits": {"memory": 7, "durable": 2}}
        registry = MetricsRegistry()
        registry.register_provider("pool", lambda: legacy)
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in registry.provider_samples()
        }
        assert samples[("repro_pool_requests", ())] == 41.0
        assert samples[("repro_pool_hits_memory", ())] == 7.0
        assert samples[("repro_pool_hits_durable", ())] == 2.0

    def test_failing_provider_yields_error_stub(self):
        registry = MetricsRegistry()

        def explode():
            raise RuntimeError("boom")

        registry.register_provider("bad", explode)
        collected = registry.collect_providers()
        assert "RuntimeError: boom" in collected["bad"]["error"]
        assert registry.provider_samples() == []  # no numeric leaves

    def test_reregistration_replaces(self):
        registry = MetricsRegistry()
        registry.register_provider("pool", lambda: {"v": 1})
        registry.register_provider("pool", lambda: {"v": 2})
        assert registry.collect_providers()["pool"] == {"v": 2}
        assert registry.provider_names() == ["pool"]

    def test_snapshot_is_json_safe_and_carries_percentiles(self):
        registry = MetricsRegistry()
        registry.counter("repro_r_total", "r", labels=("op",)).inc(
            op="decide"
        )
        registry.gauge("repro_g", "g").set(4)
        h = registry.histogram("repro_h_ms", "h", buckets=(10.0, 20.0))
        for value in (1, 5, 12):
            h.observe(float(value))
        registry.register_provider("pool", lambda: {"requests": 3})
        snapshot = registry.snapshot()
        json.dumps(snapshot)  # must not raise
        assert snapshot["namespace"] == "repro"
        assert snapshot["counters"]["repro_r_total"] == [
            {"labels": {"op": "decide"}, "value": 1.0}
        ]
        (series,) = snapshot["histograms"]["repro_h_ms"]["series"]
        assert series["count"] == 3
        assert series["p50"] == pytest.approx(7.5)
        assert "p95" in series and "p99" in series
        assert snapshot["providers"]["pool"] == {"requests": 3}


class TestMergeSnapshots:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("repro_r_total", "r", labels=("op",)).inc(
            3, op="decide"
        )
        h = registry.histogram("repro_h_ms", "h", buckets=(10.0, 20.0))
        for value in (1, 5, 12):
            h.observe(float(value))
        return registry.snapshot()

    def test_counters_sum_and_histograms_merge_bucketwise(self):
        merged = merge_snapshots([self._snapshot(), self._snapshot()])
        assert merged["workers_merged"] == 2
        (sample,) = merged["counters"]["repro_r_total"]
        assert sample == {"labels": {"op": "decide"}, "value": 6.0}
        (series,) = merged["histograms"]["repro_h_ms"]["series"]
        assert series["count"] == 6
        assert series["counts"] == [4, 2]
        # Percentiles are re-estimated from merged counts, not averaged.
        assert series["p50"] == pytest.approx(7.5)

    def test_merge_tolerates_garbage_entries(self):
        merged = merge_snapshots(
            [self._snapshot(), None, "nope", {}]  # type: ignore[list-item]
        )
        assert merged["workers_merged"] == 4
        (sample,) = merged["counters"]["repro_r_total"]
        assert sample["value"] == 3.0

    def test_merged_snapshot_is_json_safe(self):
        json.dumps(merge_snapshots([self._snapshot(), self._snapshot()]))
