"""Tests for the JSON loader and the CLI."""

import json

import pytest

from repro.__main__ import main
from repro.constraints import ConstraintClass, FunctionalDependency
from repro.io import (
    SchemaFormatError,
    load_query,
    schema_from_dict,
    schema_to_dict,
)

UNIVERSITY = {
    "relations": {"Prof": 3, "Udirectory": 3},
    "attributes": {"Prof": ["id", "name", "salary"]},
    "methods": [
        {"name": "pr", "relation": "Prof", "inputs": [1]},
        {
            "name": "ud",
            "relation": "Udirectory",
            "inputs": [],
            "result_bound": 100,
        },
    ],
    "constraints": ["Prof(i,n,s) -> Udirectory(i,a,p)"],
}


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.json"
    path.write_text(json.dumps(UNIVERSITY))
    return str(path)


class TestLoader:
    def test_round_trip(self):
        schema = schema_from_dict(UNIVERSITY)
        assert schema.method("ud").result_bound == 100
        assert schema.method("pr").input_positions == frozenset({0})
        assert (
            schema.constraint_class()
            is ConstraintClass.BOUNDED_WIDTH_IDS
        )
        again = schema_to_dict(schema)
        assert again["relations"] == UNIVERSITY["relations"]
        assert again["methods"][1]["result_bound"] == 100

    def test_fd_constraint_detected(self):
        description = dict(UNIVERSITY)
        description["constraints"] = ["Udirectory: 1 -> 2"]
        schema = schema_from_dict(description)
        assert isinstance(
            schema.constraints[0], FunctionalDependency
        )

    def test_missing_relations(self):
        with pytest.raises(SchemaFormatError):
            schema_from_dict({"methods": []})

    def test_zero_based_inputs_rejected(self):
        description = dict(UNIVERSITY)
        description["methods"] = [
            {"name": "m", "relation": "Prof", "inputs": [0]}
        ]
        with pytest.raises(SchemaFormatError):
            schema_from_dict(description)

    def test_load_query_inline_and_file(self, tmp_path):
        q = load_query("Prof(i, n, s)")
        assert q.is_boolean()
        path = tmp_path / "q.txt"
        path.write_text("Q(n) :- Prof(i, n, 10000)")
        q2 = load_query(str(path))
        assert len(q2.free_variables) == 1


class TestCLI:
    def test_decide_yes(self, schema_file, capsys):
        code = main(["decide", schema_file, "Udirectory(i,a,p)"])
        assert code == 0
        assert "YES" in capsys.readouterr().out

    def test_decide_no(self, schema_file, capsys):
        code = main(["decide", schema_file, "Prof(i,n,10000)"])
        assert code == 1
        assert "NO" in capsys.readouterr().out

    def test_decide_finite(self, schema_file, capsys):
        code = main(["decide", "--finite", schema_file, "Udirectory(i,a,p)"])
        assert code == 0

    def test_plan(self, schema_file, capsys):
        code = main(["plan", schema_file, "Udirectory(i,a,p)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "<= ud <=" in out

    def test_plan_refused(self, schema_file, capsys):
        code = main(["plan", schema_file, "Prof(i,n,10000)"])
        assert code == 1

    def test_simplify(self, schema_file, capsys):
        code = main(["simplify", schema_file, "choice"])
        assert code == 0
        description = json.loads(capsys.readouterr().out)
        ud = next(m for m in description["methods"] if m["name"] == "ud")
        assert ud["result_bound"] == 1

    def test_classify(self, schema_file, capsys):
        code = main(["classify", schema_file])
        assert code == 0
        assert "bounded-width" in capsys.readouterr().out
