"""Tests for the JSON loader and the CLI."""

import json

import pytest

from repro.__main__ import main
from repro.constraints import ConstraintClass, FunctionalDependency
from repro.io import (
    SchemaFormatError,
    load_query,
    schema_from_dict,
    schema_to_dict,
)

UNIVERSITY = {
    "relations": {"Prof": 3, "Udirectory": 3},
    "attributes": {"Prof": ["id", "name", "salary"]},
    "methods": [
        {"name": "pr", "relation": "Prof", "inputs": [1]},
        {
            "name": "ud",
            "relation": "Udirectory",
            "inputs": [],
            "result_bound": 100,
        },
    ],
    "constraints": ["Prof(i,n,s) -> Udirectory(i,a,p)"],
}


@pytest.fixture
def schema_file(tmp_path):
    path = tmp_path / "schema.json"
    path.write_text(json.dumps(UNIVERSITY))
    return str(path)


class TestLoader:
    def test_round_trip(self):
        schema = schema_from_dict(UNIVERSITY)
        assert schema.method("ud").result_bound == 100
        assert schema.method("pr").input_positions == frozenset({0})
        assert (
            schema.constraint_class()
            is ConstraintClass.BOUNDED_WIDTH_IDS
        )
        again = schema_to_dict(schema)
        assert again["relations"] == UNIVERSITY["relations"]
        assert again["methods"][1]["result_bound"] == 100

    def test_fd_constraint_detected(self):
        description = dict(UNIVERSITY)
        description["constraints"] = ["Udirectory: 1 -> 2"]
        schema = schema_from_dict(description)
        assert isinstance(
            schema.constraints[0], FunctionalDependency
        )

    def test_missing_relations(self):
        with pytest.raises(SchemaFormatError):
            schema_from_dict({"methods": []})

    def test_zero_based_inputs_rejected(self):
        description = dict(UNIVERSITY)
        description["methods"] = [
            {"name": "m", "relation": "Prof", "inputs": [0]}
        ]
        with pytest.raises(SchemaFormatError):
            schema_from_dict(description)

    def test_load_query_inline_and_file(self, tmp_path):
        q = load_query("Prof(i, n, s)")
        assert q.is_boolean()
        path = tmp_path / "q.txt"
        path.write_text("Q(n) :- Prof(i, n, 10000)")
        q2 = load_query(str(path))
        assert len(q2.free_variables) == 1


class TestCLI:
    def test_decide_yes(self, schema_file, capsys):
        code = main(["decide", schema_file, "Udirectory(i,a,p)"])
        assert code == 0
        assert "YES" in capsys.readouterr().out

    def test_decide_no(self, schema_file, capsys):
        code = main(["decide", schema_file, "Prof(i,n,10000)"])
        assert code == 1
        assert "NO" in capsys.readouterr().out

    def test_decide_finite(self, schema_file, capsys):
        code = main(["decide", "--finite", schema_file, "Udirectory(i,a,p)"])
        assert code == 0

    def test_plan(self, schema_file, capsys):
        code = main(["plan", schema_file, "Udirectory(i,a,p)"])
        assert code == 0
        out = capsys.readouterr().out
        assert "<= ud <=" in out

    def test_plan_refused(self, schema_file, capsys):
        code = main(["plan", schema_file, "Prof(i,n,10000)"])
        assert code == 1

    def test_simplify(self, schema_file, capsys):
        code = main(["simplify", schema_file, "choice"])
        assert code == 0
        description = json.loads(capsys.readouterr().out)
        ud = next(m for m in description["methods"] if m["name"] == "ud")
        assert ud["result_bound"] == 1

    def test_classify(self, schema_file, capsys):
        code = main(["classify", schema_file])
        assert code == 0
        assert "bounded-width" in capsys.readouterr().out

    def test_max_rounds_default_is_the_shared_constant(self):
        from repro.__main__ import _build_parser
        from repro.answerability.deciders import (
            DEFAULT_CHASE_FACTS,
            DEFAULT_CHASE_ROUNDS,
        )

        from repro.containment.rewriting import DEFAULT_MAX_DISJUNCTS

        args = _build_parser().parse_args(["decide", "s.json", "R(x)"])
        assert args.max_rounds == DEFAULT_CHASE_ROUNDS
        assert args.max_facts == DEFAULT_CHASE_FACTS
        assert args.max_disjuncts == DEFAULT_MAX_DISJUNCTS
        assert args.no_subsumption is False

    def test_serve_parser_defaults_are_the_shared_constants(self):
        from repro.__main__ import _build_parser
        from repro.server import (
            DEFAULT_MAX_FINGERPRINTS,
            DEFAULT_MAX_PENDING,
            DEFAULT_POOL_SIZE,
            DEFAULT_PORT,
            DEFAULT_WORKERS,
        )

        args = _build_parser().parse_args(["serve"])
        assert args.schema is None
        assert args.host == "127.0.0.1"
        assert args.port == DEFAULT_PORT
        assert args.workers == DEFAULT_WORKERS
        assert args.pool_size == DEFAULT_POOL_SIZE
        assert args.max_fingerprints == DEFAULT_MAX_FINGERPRINTS
        assert args.max_pending == DEFAULT_MAX_PENDING
        assert args.no_subsumption is False


class TestCLIJson:
    def test_decide_json(self, schema_file, capsys):
        code = main(["decide", schema_file, "Udirectory(i,a,p)", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decision"] == "yes"
        assert payload["route"] == "linearization"
        assert payload["fingerprint"]

    def test_decide_json_no(self, schema_file, capsys):
        code = main(["decide", schema_file, "Prof(i,n,10000)", "--json"])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["decision"] == "no"

    def test_plan_json(self, schema_file, capsys):
        code = main(["plan", schema_file, "Udirectory(i,a,p)", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["answerable"] is True
        assert "<= ud <=" in payload["plan"]

    def test_plan_json_refused(self, schema_file, capsys):
        code = main(["plan", schema_file, "Prof(i,n,10000)", "--json"])
        assert code == 1
        assert json.loads(capsys.readouterr().out)["plan"] is None

    def test_classify_json(self, schema_file, capsys):
        code = main(["classify", schema_file, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["constraint_class"].startswith("bounded-width")
        assert payload["result_bounded_methods"] == ["ud"]

    def test_decide_json_budget_error_is_structured(
        self, schema_file, capsys
    ):
        # A starved rewriting budget must come back as exit code 2 with
        # a machine-readable error object, not a traceback.
        code = main(
            [
                "decide",
                schema_file,
                "Udirectory(i,a,p)",
                "--json",
                "--max-disjuncts",
                "1",
            ]
        )
        assert code == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["decision"] == "unknown"
        assert payload["error"]["type"] == "RewritingBudgetExceeded"
        assert payload["error"]["max_disjuncts"] == 1

    def test_decide_text_budget_error_line(self, schema_file, capsys):
        code = main(
            [
                "decide",
                schema_file,
                "Udirectory(i,a,p)",
                "--max-disjuncts",
                "1",
            ]
        )
        assert code == 2
        out = capsys.readouterr().out
        assert "UNKNOWN" in out
        assert "RewritingBudgetExceeded" in out


class TestCLIBatch:
    def _run(self, schema_file, lines, tmp_path, extra=()):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(lines) + "\n")
        return main(
            ["batch", schema_file, "--input", str(requests), *extra]
        )

    def test_batch_round_trip(self, schema_file, tmp_path, capsys):
        code = self._run(
            schema_file,
            [
                '"Udirectory(i,a,p)"',
                json.dumps({"query": "Prof(i,n,10000)", "id": 7}),
                json.dumps({"query": "Udirectory(x,y,z)", "id": "again"}),
            ],
            tmp_path,
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        payloads = [json.loads(line) for line in lines]
        assert [p["decision"] for p in payloads] == ["yes", "no", "yes"]
        assert payloads[1]["id"] == 7
        # Third line is alpha-equivalent to the first: a cache hit.
        assert payloads[2]["cached"] is True

    def test_batch_inline_schema(self, schema_file, tmp_path, capsys):
        inline = {
            "relations": {"Udirectory": 3},
            "methods": [
                {"name": "ud", "relation": "Udirectory", "inputs": []}
            ],
        }
        code = self._run(
            schema_file,
            [json.dumps({"query": "Udirectory(i,a,p)", "schema": inline})],
            tmp_path,
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["decision"] == "yes"
        assert payload["constraint_class"] == "no constraints"

    def test_batch_bad_line_keeps_streaming(
        self, schema_file, tmp_path, capsys
    ):
        code = self._run(
            schema_file,
            ["not-json", '"Udirectory(i,a,p)"'],
            tmp_path,
        )
        assert code == 1
        lines = capsys.readouterr().out.strip().splitlines()
        error = json.loads(lines[0])["error"]
        # Structured ErrorFrame: typed, with the offending line.
        assert error["type"] == "JSONDecodeError"
        assert error["detail"]["line"] == "not-json"
        assert json.loads(lines[1])["decision"] == "yes"

    def test_batch_error_echoes_request_id(
        self, schema_file, tmp_path, capsys
    ):
        code = self._run(
            schema_file,
            [json.dumps({"query": "Bad((", "id": 7})],
            tmp_path,
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["error"]["type"] == "ParseError"
        assert payload["id"] == 7

    def test_batch_plan_ping_and_stats_ops(
        self, schema_file, tmp_path, capsys
    ):
        code = self._run(
            schema_file,
            [
                json.dumps(
                    {"op": "plan", "query": "Udirectory(i,a,p)", "id": 1}
                ),
                json.dumps({"op": "ping", "id": 2}),
                json.dumps({"op": "stats"}),
            ],
            tmp_path,
        )
        assert code == 0
        plan, pong, stats = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert plan["answerable"] is True and plan["id"] == 1
        assert "<= ud <=" in plan["plan"]
        assert pong == {"op": "pong", "id": 2}
        assert stats["op"] == "stats"
        assert stats["pool"]["counters"]["requests"] == 1

    def test_batch_stats_line_on_stderr(
        self, schema_file, tmp_path, capsys
    ):
        code = self._run(
            schema_file,
            ['"Udirectory(i,a,p)"', '"Udirectory(x,y,z)"'],
            tmp_path,
            extra=["--stats"],
        )
        assert code == 0
        captured = capsys.readouterr()
        # stdout stays a pure response stream; stats go to stderr.
        for line in captured.out.strip().splitlines():
            assert "sessions" not in json.loads(line)
        stats = json.loads(captured.err.strip().splitlines()[-1])
        session = stats["sessions"][0]
        assert session["cache"]["hits"] == 1
        assert session["rewrite_engine"]["rewrites"] >= 1
