"""CI smoke: a real serve → SIGTERM → restart cycle over one cache dir.

Run directly (``PYTHONPATH=src python tests/cache/smoke_warm_restart.py``):
starts ``python -m repro serve --cache-dir``, decides a request mix
over two schema fingerprints, drains the server with SIGTERM, starts a
*fresh* server process on the same cache directory, and asserts

* the restarted server reports ``warmed > 0`` on its readiness line
  (the warm set came back from the store, no ``--warm`` manifest);
* every response after the restart is byte-identical to its
  pre-restart counterpart (minus timing/cache markers);
* the restarted server's ``op: stats`` shows durable decision-tier
  hits > 0 — the answers came from the store, not recompute.

Exit code 0 on success — the CI warm-restart step gates on it.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile

from repro.io import schema_to_dict
from repro.workloads import id_chain_workload, university_schema

REQUESTS = [
    {"query": "Q(n) :- Prof(i, n, 10000)", "id": "prof"},
    {"query": "Q() :- Udirectory(i, a, p)", "id": "udir"},
    {"query": "Q() :- R0(x)", "id": "chain", "schema": None},  # inline
]


def normalized(payload: dict) -> str:
    payload = dict(payload)
    payload.pop("elapsed_ms", None)
    payload.pop("cached", None)
    return json.dumps(payload, sort_keys=True)


def start_server(schema_path: str, cache_dir: str) -> tuple:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", schema_path,
            "--port", "0", "--cache-dir", cache_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    ready = json.loads(process.stdout.readline())["ready"]
    return process, ready


def rpc(port: int, frame: dict) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=60) as conn:
        stream = conn.makefile("rw")
        stream.write(json.dumps(frame) + "\n")
        stream.flush()
        return json.loads(stream.readline())


def drive(port: int, chain_schema: dict) -> list:
    responses = []
    for request in REQUESTS:
        frame = dict(request)
        if "schema" in frame:
            frame["schema"] = chain_schema
        responses.append(rpc(port, frame))
    return responses


def main() -> int:
    chain_schema = schema_to_dict(id_chain_workload(4).schema)
    with tempfile.TemporaryDirectory() as workdir:
        schema_path = os.path.join(workdir, "schema.json")
        with open(schema_path, "w") as handle:
            json.dump(schema_to_dict(university_schema()), handle)
        cache_dir = os.path.join(workdir, "cache")

        first, ready_first = start_server(schema_path, cache_dir)
        print(f"cold server up (warmed={ready_first['warmed']})")
        cold = drive(ready_first["port"], chain_schema)
        first.send_signal(signal.SIGTERM)
        assert first.wait(timeout=60) == 0, first.returncode
        print("cold server drained")

        second, ready_second = start_server(schema_path, cache_dir)
        try:
            warmed = ready_second["warmed"]
            assert warmed > 0, f"no warm set after restart: {ready_second}"
            print(f"warm server up (warmed={warmed})")

            warm = drive(ready_second["port"], chain_schema)
            for before, after in zip(cold, warm):
                assert normalized(before) == normalized(after), (
                    before, after,
                )
                assert after["cached"] is True, after

            stats = rpc(ready_second["port"], {"op": "stats"})["pool"]
            decision_tier = stats["store"]["tiers"]["decision"]
            assert decision_tier["hits"] > 0, stats["store"]
            durable_hits = sum(
                entry["cache"].get("durable_hits", 0)
                for entry in stats["sessions"]
            )
            assert durable_hits > 0, stats["sessions"]
            print(
                f"ok: {len(warm)} identical responses after restart, "
                f"decision hits={decision_tier['hits']}, "
                f"durable session hits={durable_hits}"
            )
        finally:
            second.send_signal(signal.SIGTERM)
            second.wait(timeout=60)
    return 0


if __name__ == "__main__":
    sys.exit(main())
