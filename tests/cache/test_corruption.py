"""Corruption end-to-end: a damaged store never damages an answer.

The fault-battery invariant (`tests.faults.chaos`) extended to the
persistence tier: whatever happens to the cache file — random bit
flips, truncation, total garbage, version drift — every decision made
through it is either **byte-identical to a fresh-session oracle** or a
typed startup error; never a wrong answer, never an unhandled
exception on the serving path.
"""

import json
import random

from repro.cache import open_directory, STORE_FILENAME
from repro.service import Session, compile_schema
from repro.workloads import (
    id_chain_workload,
    lookup_chain_workload,
    university_schema,
)


def normalized(payload: dict) -> str:
    payload = dict(payload)
    payload.pop("elapsed_ms", None)
    payload.pop("cached", None)
    return json.dumps(payload, sort_keys=True)


CORPUS = [
    (university_schema(), "Q(n) :- Prof(i, n, 10000)"),
    (university_schema(), "Q() :- Udirectory(i, a, p)"),
    (id_chain_workload(5).schema, "Q() :- R0(x)"),
    (lookup_chain_workload(3).schema, "Q() :- L2(x, y)"),
]


def oracle():
    return [
        normalized(Session(compile_schema(s)).decide(q).to_dict())
        for s, q in CORPUS
    ]


def decide_all(store):
    return [
        normalized(
            Session(compile_schema(s), store=store).decide(q).to_dict()
        )
        for s, q in CORPUS
    ]


class TestBitFlips:
    def test_random_bit_flips_never_change_a_decision(self, tmp_path):
        baseline = oracle()
        rng = random.Random(20180611)  # PODS 2018, deterministically
        for round_index in range(6):
            cache_dir = tmp_path / f"round{round_index}"
            store = open_directory(cache_dir)
            assert decide_all(store) == baseline  # populate
            store.close()

            path = cache_dir / STORE_FILENAME
            blob = bytearray(path.read_bytes())
            for _ in range(rng.randrange(1, 64)):
                position = rng.randrange(len(blob))
                blob[position] ^= 1 << rng.randrange(8)
            path.write_bytes(bytes(blob))
            for sidecar in ("-wal", "-shm"):
                damaged = cache_dir / (STORE_FILENAME + sidecar)
                if damaged.exists():
                    damaged.unlink()

            # The damaged store must still serve — every answer equal
            # to the oracle, whether entries survived, were rejected as
            # invalid, or the whole file was sidelined.
            reopened = open_directory(cache_dir)
            try:
                assert decide_all(reopened) == baseline
            finally:
                reopened.close()

    def test_truncated_store_serves_correctly(self, tmp_path):
        baseline = oracle()
        cache_dir = tmp_path / "cache"
        store = open_directory(cache_dir)
        decide_all(store)
        store.close()
        path = cache_dir / STORE_FILENAME
        path.write_bytes(path.read_bytes()[: 512])
        reopened = open_directory(cache_dir)
        try:
            assert decide_all(reopened) == baseline
        finally:
            reopened.close()

    def test_garbage_store_is_sidelined_and_serving_continues(
        self, tmp_path
    ):
        baseline = oracle()
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / STORE_FILENAME).write_bytes(
            b"\x00\xde\xad\xbe\xef" * 1024
        )
        store = open_directory(cache_dir)
        try:
            assert decide_all(store) == baseline
        finally:
            store.close()
        assert list(cache_dir.glob(f"{STORE_FILENAME}.corrupt-*"))


class TestVersionDrift:
    def test_other_version_entries_are_invalid_not_errors(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        store = open_directory(cache_dir)
        baseline = decide_all(store)
        store.close()

        # Re-stamp: pretend every persisted envelope came from another
        # library release by changing what *this* process considers the
        # current version.
        monkeypatch.setattr("repro.__version__", "0.0.0-older")
        reopened = open_directory(cache_dir)
        try:
            assert decide_all(reopened) == baseline
            tiers = reopened.stats()["tiers"]
            assert tiers["decision"]["hits"] == 0
            assert tiers["decision"]["invalid"] >= len(CORPUS)
        finally:
            reopened.close()
