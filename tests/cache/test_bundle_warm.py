"""Bundles, warm sources, parallel warmup, and store-resident warm sets.

Covers the warm path end to end: `write_bundle`/`load_bundle` round
trips, `load_warm_source` dispatching between legacy manifests and
bundles with every failure a typed `WarmupError`,
`SessionPool.warm_many` keeping its counters byte-identical to the
sequential loop, and `warm_from_store` re-admitting every schema a
store-bound pool ever compiled.
"""

import json

import pytest

from repro.cache import (
    ArtifactStore,
    MemoryKVStore,
    WarmupError,
    load_bundle,
    load_warm_set,
    load_warm_source,
    open_directory,
    write_bundle,
)
from repro.io import ReadyFrame, SchemaFormatError, schema_to_dict
from repro.server import SessionLimits, SessionPool
from repro.service import compile_schema
from repro.workloads import (
    id_chain_workload,
    lookup_chain_workload,
    university_schema,
)


def descriptions():
    return [
        schema_to_dict(university_schema()),
        schema_to_dict(id_chain_workload(4).schema),
        schema_to_dict(lookup_chain_workload(3).schema),
    ]


class TestBundleFormat:
    def test_write_then_load_round_trips(self, tmp_path):
        path = tmp_path / "warm.bundle"
        write_bundle(
            [university_schema(), descriptions()[1]], path
        )
        loaded = load_bundle(path)
        assert loaded[0] == schema_to_dict(university_schema())
        assert loaded[1] == descriptions()[1]

    def test_bundle_records_fingerprints(self, tmp_path):
        path = tmp_path / "warm.bundle"
        write_bundle([university_schema()], path)
        envelope = json.loads(path.read_bytes())
        payload = json.loads(envelope["payload"])
        assert payload["schemas"][0]["fingerprint"] == compile_schema(
            university_schema()
        ).fingerprint

    def test_invalid_schema_is_rejected_at_write_time(self, tmp_path):
        with pytest.raises(SchemaFormatError):
            write_bundle([{"relations": "nope"}], tmp_path / "bad.bundle")

    def test_corrupt_bundle_is_a_typed_error(self, tmp_path):
        path = tmp_path / "warm.bundle"
        write_bundle([university_schema()], path)
        blob = bytearray(path.read_bytes())
        # Flip a byte inside the payload: the digest check must fail.
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(WarmupError):
            load_warm_source(path)

    def test_version_drift_is_a_typed_error(self, tmp_path, monkeypatch):
        path = tmp_path / "warm.bundle"
        write_bundle([university_schema()], path)
        monkeypatch.setattr("repro.__version__", "0.0.0-older")
        with pytest.raises(WarmupError):
            load_bundle(path)


class TestWarmSourceDispatch:
    def test_manifest_and_bundle_load_the_same_schemas(self, tmp_path):
        wanted = descriptions()
        manifest = tmp_path / "warm.json"
        manifest.write_text(json.dumps({"schemas": wanted}))
        bundle = tmp_path / "warm.bundle"
        write_bundle(wanted, bundle)
        assert load_warm_source(manifest) == wanted
        assert load_warm_source(bundle) == wanted

    def test_missing_file_is_a_typed_error(self, tmp_path):
        with pytest.raises(WarmupError):
            load_warm_source(tmp_path / "absent.json")

    def test_bad_json_is_a_typed_error(self, tmp_path):
        broken = tmp_path / "broken.json"
        broken.write_text('{"schemas": [')
        with pytest.raises(WarmupError):
            load_warm_source(broken)

    def test_bad_manifest_entry_is_a_typed_error(self, tmp_path):
        manifest = tmp_path / "warm.json"
        manifest.write_text(json.dumps({"schemas": [{"relations": 3}]}))
        with pytest.raises(WarmupError) as excinfo:
            load_warm_source(manifest)
        # WarmupError IS a SchemaFormatError: legacy callers catching
        # the broad type keep working.
        assert isinstance(excinfo.value, SchemaFormatError)


class TestWarmMany:
    def _batch(self):
        wanted = descriptions()
        # Duplicates exercise the compile-once dedup, and a compiled
        # passthrough exercises the no-compile path.
        return [
            wanted[0],
            wanted[1],
            wanted[0],
            compile_schema(lookup_chain_workload(3).schema),
            wanted[2],
            wanted[1],
        ]

    def test_counters_match_the_sequential_loop_exactly(self):
        sequential = SessionPool(limits=SessionLimits())
        for schema in self._batch():
            sequential.warm(schema)
        parallel = SessionPool(limits=SessionLimits())
        warmed = parallel.warm_many(self._batch(), parallelism=4)
        assert len(warmed) == len(self._batch())
        assert parallel.stats()["counters"] == sequential.stats()["counters"]
        assert sorted(parallel.fingerprints()) == sorted(
            sequential.fingerprints()
        )

    def test_single_threaded_parallelism_is_equivalent(self):
        baseline = SessionPool(limits=SessionLimits())
        fingerprints = baseline.warm_many(self._batch(), parallelism=1)
        parallel = SessionPool(limits=SessionLimits())
        assert parallel.warm_many(self._batch(), parallelism=8) == (
            fingerprints
        )

    def test_empty_batch_is_a_no_op(self):
        pool = SessionPool(limits=SessionLimits())
        assert pool.warm_many([]) == []
        assert pool.stats()["counters"]["schemas_compiled"] == 0


class TestWarmSets:
    def test_store_bound_pool_records_compiled_schemas(self):
        store = ArtifactStore(MemoryKVStore())
        pool = SessionPool(limits=SessionLimits(), store=store)
        pool.warm(descriptions()[0])
        pool.warm(descriptions()[1])
        warm_set = load_warm_set(store)
        assert len(warm_set) == 2

    def test_warm_from_store_readmits_after_restart(self, tmp_path):
        store = open_directory(tmp_path / "cache")
        first = SessionPool(limits=SessionLimits(), store=store)
        for description in descriptions():
            first.warm(description)
        expected = sorted(first.fingerprints())
        store.close()

        reopened = open_directory(tmp_path / "cache")
        try:
            second = SessionPool(limits=SessionLimits(), store=reopened)
            assert second.fingerprints() == ()
            assert second.warm_from_store() == len(expected)
            assert sorted(second.fingerprints()) == expected
        finally:
            reopened.close()

    def test_damaged_warm_set_entries_are_skipped(self):
        store = ArtifactStore(MemoryKVStore())
        pool = SessionPool(limits=SessionLimits(), store=store)
        pool.warm(descriptions()[0])
        store.kv.put("warmset", "bogus", b"garbage")
        store.store("bundle", "warmset", "wrong-shape", ["not a schema"])
        fresh = SessionPool(limits=SessionLimits(), store=store)
        assert fresh.warm_from_store() == 1


class TestReadyFrameWarmError:
    def test_warm_error_round_trips_on_the_wire(self):
        frame = ReadyFrame(
            host="127.0.0.1",
            port=4242,
            pid=7,
            warmed=0,
            warm_error="bundle warm.bundle: not a valid bundle",
        )
        wire = frame.to_dict()
        assert wire["ready"]["warm_error"].startswith("bundle")
        parsed = ReadyFrame.from_dict(wire)
        assert parsed.warm_error == frame.warm_error

    def test_absent_warm_error_stays_off_the_wire(self):
        wire = ReadyFrame(host="h", port=1, pid=2).to_dict()
        assert "warm_error" not in wire["ready"]
        assert ReadyFrame.from_dict(wire).warm_error is None
