"""The equivalence gate: persisted artifacts decide identically.

Nothing loaded from the store may change an answer — not the decision,
not the route, not the reason, not the structured detail (chase
certificates, disjunct counts).  Tier-1 runs the paper/generator
corpus through a persist-then-reload cycle and a cross-*process* store
round trip; the randomized sweep (``slow`` marker, nightly) does the
same over seeded `random_id_workload` schemas.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cache import ArtifactStore, MemoryKVStore, open_directory
from repro.io import schema_to_dict
from repro.service import Session, compile_schema
from repro.workloads import (
    fd_determinacy_workload,
    id_chain_workload,
    lookup_chain_workload,
    random_id_workload,
    tgd_transfer_workload,
    uid_fd_workload,
    university_schema,
)


def normalized(payload: dict) -> str:
    payload = dict(payload)
    payload.pop("elapsed_ms", None)
    payload.pop("cached", None)
    return json.dumps(payload, sort_keys=True)


def corpus():
    """Mixed-fragment pairs: every Table-1 route is represented."""
    chain = lookup_chain_workload(3)
    return [
        (university_schema(ud_bound=100), "Udirectory(i, a, p)"),
        (university_schema(ud_bound=100), "Prof(i, n, 10000)"),
        (chain.schema, "L0(x, y), L1(x, z)"),
        (chain.schema, "L2(x, y)"),
        (fd_determinacy_workload(4).schema, fd_determinacy_workload(4).query),
        (uid_fd_workload(3).schema, uid_fd_workload(3).query),
        (tgd_transfer_workload(3).schema, tgd_transfer_workload(3).query),
        (id_chain_workload(6).schema, "R0(x)"),
    ]


def roundtrip_case(schema, query, tmp_path, label):
    """Fresh oracle vs a store-mediated rerun, across a real reopen."""
    compiled = compile_schema(schema)
    fresh = normalized(Session(compiled).decide(query).to_dict())

    cache_dir = tmp_path / label
    store = open_directory(cache_dir)
    writer = normalized(
        Session(compile_schema(schema), store=store).decide(query).to_dict()
    )
    store.close()

    reopened = open_directory(cache_dir)
    try:
        reader_session = Session(compile_schema(schema), store=reopened)
        loaded = normalized(reader_session.decide(query).to_dict())
        assert reader_session.durable_hits == 1, label
    finally:
        reopened.close()
    assert writer == fresh, label
    assert loaded == fresh, label


class TestCorpusGate:
    def test_persisted_equals_fresh_across_the_corpus(self, tmp_path):
        for index, (schema, query) in enumerate(corpus()):
            roundtrip_case(schema, query, tmp_path, f"case{index}")

    def test_plans_round_trip_identically(self, tmp_path):
        chain = lookup_chain_workload(3)
        compiled = compile_schema(chain.schema)
        query = "Q() :- L0(x, y), L1(x, z)"
        fresh = normalized(Session(compiled).plan(query).to_dict())
        store = open_directory(tmp_path / "plans")
        try:
            Session(compile_schema(chain.schema), store=store).plan(query)
            loaded = normalized(
                Session(compile_schema(chain.schema), store=store)
                .plan(query)
                .to_dict()
            )
        finally:
            store.close()
        assert loaded == fresh

    def test_memory_store_obeys_the_same_gate(self):
        store = ArtifactStore(MemoryKVStore())
        for schema, query in corpus():
            fresh = normalized(
                Session(compile_schema(schema)).decide(query).to_dict()
            )
            Session(compile_schema(schema), store=store).decide(query)
            loaded = normalized(
                Session(compile_schema(schema), store=store)
                .decide(query)
                .to_dict()
            )
            assert loaded == fresh


class TestCrossProcess:
    def test_store_written_by_another_process_serves_identically(
        self, tmp_path
    ):
        schema = university_schema()
        query = "Q(n) :- Prof(i, n, 10000)"
        fresh = normalized(
            Session(compile_schema(schema)).decide(query).to_dict()
        )

        schema_path = tmp_path / "schema.json"
        schema_path.write_text(json.dumps(schema_to_dict(schema)))
        cache_dir = tmp_path / "cache"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )

        def run_decide():
            result = subprocess.run(
                [
                    sys.executable, "-m", "repro", "decide",
                    str(schema_path), query,
                    "--cache-dir", str(cache_dir), "--json",
                ],
                capture_output=True, text=True, env=env, timeout=120,
            )
            assert result.returncode in (0, 1), result.stderr
            return json.loads(result.stdout)

        cold = run_decide()
        assert cold["cached"] is False
        warm = run_decide()  # a second, fresh process
        assert warm["cached"] is True
        assert normalized(warm) == normalized(cold) == fresh

        # And this process reads the store those processes wrote.
        store = open_directory(cache_dir)
        try:
            session = Session(compile_schema(schema), store=store)
            assert normalized(session.decide(query).to_dict()) == fresh
            assert session.durable_hits == 1
        finally:
            store.close()


@pytest.mark.slow
class TestRandomizedSweep:
    def test_random_workloads_agree_after_persistence(self, tmp_path):
        for seed in range(25):
            workload = random_id_workload(seed=seed)
            roundtrip_case(
                workload.schema, workload.query, tmp_path, f"seed{seed}"
            )

    def test_random_workloads_share_one_store(self, tmp_path):
        # Many fingerprints in one store file: namespacing by
        # fingerprint must keep them fully isolated.
        cache_dir = tmp_path / "shared"
        oracle = {}
        for seed in range(12):
            workload = random_id_workload(seed=seed)
            oracle[seed] = normalized(
                Session(compile_schema(workload.schema))
                .decide(workload.query)
                .to_dict()
            )
        store = open_directory(cache_dir)
        try:
            for seed in range(12):
                workload = random_id_workload(seed=seed)
                Session(
                    compile_schema(workload.schema), store=store
                ).decide(workload.query)
        finally:
            store.close()
        reopened = open_directory(cache_dir)
        try:
            for seed in range(12):
                workload = random_id_workload(seed=seed)
                session = Session(
                    compile_schema(workload.schema), store=reopened
                )
                assert (
                    normalized(session.decide(workload.query).to_dict())
                    == oracle[seed]
                ), seed
        finally:
            reopened.close()
