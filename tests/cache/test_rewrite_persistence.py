"""Persisted rewrite expansions: the `RewriteEngine` memo on disk.

An engine bound to a store persists each completed rewriting result —
the frontier size and the emitted disjuncts, in emission order — and a
*fresh* engine (new process) loads it instead of re-running the BFS.
The loaded disjuncts must be byte-identical to the freshly computed
ones (order included: plan extraction and response details depend on
it), and a persisted frontier larger than the caller's budget must
replay `RewritingBudgetExceeded` exactly as the live path would.
"""

import pytest

from repro.cache import ArtifactStore, MemoryKVStore, open_directory
from repro.cache import codec
from repro.containment.rewriting import (
    RewriteEngine,
    RewritingBudgetExceeded,
    canonical_state,
)
from repro.io import load_query
from repro.service import compile_schema
from repro.workloads import id_chain_workload, lookup_chain_workload

NAMESPACE = "rewrite:test:nosub"


def engine_for(schema, store=None, **kwargs):
    compiled = compile_schema(schema)
    engine = RewriteEngine(
        compiled.linearization().rules,
        matcher=compiled.matcher(),
        **kwargs,
    )
    if store is not None:
        engine.bind_store(store, NAMESPACE)
    return engine


class TestPersistedMemo:
    def test_fresh_engine_loads_instead_of_expanding(self):
        store = ArtifactStore(MemoryKVStore())
        schema = id_chain_workload(6).schema
        query = load_query("Q() :- R2__prime(x)")

        writer = engine_for(schema, store)
        fresh = writer.rewrite(query)
        stats = writer.stats()
        assert stats["persisted_writes"] == 1
        assert stats["persisted_loads"] == 0

        reader = engine_for(schema, store)
        loaded = reader.rewrite(query)
        stats = reader.stats()
        assert stats["persisted_loads"] == 1
        assert stats["expansions_built"] == 0
        assert repr(loaded) == repr(fresh)
        assert [d.atoms for d in loaded.disjuncts] == [
            d.atoms for d in fresh.disjuncts
        ]

    def test_disjunct_order_is_preserved_verbatim(self, tmp_path):
        store = open_directory(tmp_path / "cache")
        schema = lookup_chain_workload(4).schema
        query = load_query("Q() :- L3__prime(x, y)")
        fresh = engine_for(schema, store).rewrite(query)
        store.close()

        reopened = open_directory(tmp_path / "cache")
        try:
            loaded = engine_for(schema, reopened).rewrite(query)
            assert [d.atoms for d in loaded.disjuncts] == [
                d.atoms for d in fresh.disjuncts
            ]
        finally:
            reopened.close()

    def test_subsumption_results_round_trip(self):
        store = ArtifactStore(MemoryKVStore())
        schema = id_chain_workload(5).schema
        query = load_query("Q() :- R2__prime(x)")
        fresh = engine_for(schema, store, subsumption=True).rewrite(query)
        loaded = engine_for(schema, store, subsumption=True).rewrite(query)
        assert [d.atoms for d in loaded.disjuncts] == [
            d.atoms for d in fresh.disjuncts
        ]

    def test_persisted_frontier_replays_budget_errors(self):
        store = ArtifactStore(MemoryKVStore())
        schema = id_chain_workload(6).schema
        # Rewriting the primed top of the chain walks the whole
        # accessibility ladder: a frontier far over a budget of 1.
        query = load_query("Q() :- R5__prime(x)")
        engine_for(schema, store).rewrite(query)  # persist the frontier

        tight = engine_for(schema, store)
        with pytest.raises(RewritingBudgetExceeded):
            tight.rewrite(query, max_disjuncts=1)
        # The replay came from the persisted entry, not a fresh BFS.
        assert tight.stats()["persisted_loads"] == 1
        assert tight.stats()["expansions_built"] == 0

    def test_damaged_entry_is_a_miss_and_recomputed(self):
        store = ArtifactStore(MemoryKVStore())
        schema = id_chain_workload(4).schema
        query = load_query("Q() :- R2__prime(x)")
        fresh = engine_for(schema, store).rewrite(query)
        # Corrupt every persisted blob in the namespace.
        for key in list(store.kv.scan(NAMESPACE)):
            store.kv.put(NAMESPACE, key, b"\xff not an envelope")
        reader = engine_for(schema, store)
        recomputed = reader.rewrite(query)
        assert reader.stats()["persisted_loads"] == 0
        assert reader.stats()["expansions_built"] > 0
        assert [d.atoms for d in recomputed.disjuncts] == [
            d.atoms for d in fresh.disjuncts
        ]
        assert store.stats()["tiers"]["rewrite"]["invalid"] >= 1

    def test_malformed_payload_shapes_are_misses(self):
        store = ArtifactStore(MemoryKVStore())
        schema = id_chain_workload(4).schema
        query = load_query("Q() :- R2__prime(x)")
        baseline = engine_for(schema).rewrite(query)
        for payload in (
            ["not", "a", "dict"],
            {"frontier": "three", "disjuncts": []},
            {"frontier": 3},
            {"frontier": 3, "disjuncts": [["bad atom shape"]]},
        ):
            store = ArtifactStore(MemoryKVStore())
            reader = engine_for(schema, store)
            start = canonical_state(query.atoms)
            store.store(
                "rewrite", NAMESPACE, codec.state_key(start), payload
            )
            result = reader.rewrite(query)
            assert reader.stats()["persisted_loads"] == 0
            assert [d.atoms for d in result.disjuncts] == [
                d.atoms for d in baseline.disjuncts
            ]
