"""Codec tests: envelopes are strict-in, total-out; state wire forms
round-trip exactly.

The envelope contract is the whole invalidation story of the
persistence tier: *any* deviation — format version bump, different
library version, wrong artifact kind, digest mismatch, truncation,
garbage — decodes to ``None`` (a miss) and never raises.  The
`ArtifactStore` facade layered on top turns those outcomes into the
``hits``/``misses``/``invalid``/``writes`` counters serving exposes.
"""

import json

import pytest

import repro
import repro.cache.codec as codec
from repro.cache import (
    ArtifactStore,
    MemoryKVStore,
    decode_envelope,
    encode_envelope,
)
from repro.cache.codec import UnencodableValue
from repro.containment.rewriting import canonical_state
from repro.io import load_query
from repro.logic.atoms import Atom
from repro.logic.terms import Constant, Variable


class TestEnvelope:
    def test_roundtrip(self):
        payload = {"decision": "yes", "detail": {"disjuncts": 3}}
        blob = encode_envelope("decision", payload)
        assert decode_envelope(blob, "decision") == payload

    def test_kind_mismatch_is_a_miss(self):
        blob = encode_envelope("decision", {"x": 1})
        assert decode_envelope(blob, "rewrite") is None

    def test_format_version_mismatch_is_a_miss(self):
        envelope = json.loads(encode_envelope("decision", {"x": 1}))
        envelope["v"] = codec.FORMAT_VERSION + 1
        assert decode_envelope(
            json.dumps(envelope).encode(), "decision"
        ) is None

    def test_library_version_mismatch_is_a_miss(self):
        envelope = json.loads(encode_envelope("decision", {"x": 1}))
        envelope["lib"] = "0.0.0-somebody-else"
        assert decode_envelope(
            json.dumps(envelope).encode(), "decision"
        ) is None

    def test_current_library_version_is_stamped(self):
        envelope = json.loads(encode_envelope("decision", {"x": 1}))
        assert envelope["lib"] == repro.__version__

    def test_digest_catches_payload_tampering(self):
        envelope = json.loads(encode_envelope("decision", {"x": 1}))
        envelope["payload"] = json.dumps({"x": 2})
        assert decode_envelope(
            json.dumps(envelope).encode(), "decision"
        ) is None

    @pytest.mark.parametrize(
        "blob",
        [
            None,
            b"",
            b"\xff\xfe garbage",
            b"not json at all",
            b"[1, 2, 3]",  # JSON but not an envelope object
            b'{"v": 1}',  # missing fields
            encode_envelope("decision", {"x": 1})[:-7],  # truncated
        ],
    )
    def test_damage_is_a_miss_never_an_error(self, blob):
        assert decode_envelope(blob, "decision") is None


class TestStateWireForm:
    def _state(self, text):
        return canonical_state(load_query(text).atoms)

    def test_roundtrip_preserves_atoms_exactly(self):
        state = self._state("R(x, y), S(y, 'lit'), T(x, 3)")
        wire = codec.encode_state(state)
        json_safe = json.loads(json.dumps(wire))  # a real JSON trip
        assert codec.decode_state(json_safe) == state

    def test_state_key_is_stable_across_construction_order(self):
        left = self._state("R(x, y), S(y, z)")
        right = canonical_state(
            load_query("R(a, b), S(b, c)").atoms
        )
        assert codec.state_key(left) == codec.state_key(right)

    def test_distinct_states_get_distinct_keys(self):
        assert codec.state_key(self._state("R(x, y)")) != codec.state_key(
            self._state("R(x, x)")
        )

    def test_non_scalar_constant_is_unencodable(self):
        state = (Atom("R", (Variable("x"), Constant((1, 2)))),)
        with pytest.raises(UnencodableValue):
            codec.encode_state(state)

    def test_bool_constants_survive_the_trip(self):
        # bool is an int subclass: the tag order in the codec must keep
        # True decoding as True, not 1.
        state = (Atom("R", (Constant(True), Constant(1))),)
        decoded = codec.decode_state(
            json.loads(json.dumps(codec.encode_state(state)))
        )
        assert decoded[0].terms[0].value is True
        assert decoded[0].terms[1].value == 1

    @pytest.mark.parametrize(
        "wire",
        [
            "not a list",
            [["R"]],  # missing terms
            [["R", [["x", "y"]]]],  # unknown tag
            [["R", [["v", 3]]]],  # variable name must be a string
            [[3, [["v", "x"]]]],  # relation must be a string
        ],
    )
    def test_malformed_wire_raises_value_error(self, wire):
        with pytest.raises(ValueError):
            codec.decode_state(wire)


class TestArtifactStoreCounters:
    def test_hit_miss_invalid_write_accounting(self):
        store = ArtifactStore(MemoryKVStore())
        assert store.load("decision", "ns", "k") is None  # miss
        assert store.store("decision", "ns", "k", {"x": 1}) is True
        assert store.load("decision", "ns", "k") == {"x": 1}  # hit
        store.kv.put("ns", "bad", b"garbage")
        assert store.load("decision", "ns", "bad") is None  # invalid
        # Wrong tier on a valid blob is also invalid, not a crash.
        assert store.load("rewrite", "ns", "k") is None
        tiers = store.stats()["tiers"]
        assert tiers["decision"] == {
            "hits": 1, "misses": 1, "writes": 1, "invalid": 1,
        }
        assert tiers["rewrite"]["invalid"] == 1

    def test_unencodable_payload_is_skipped_not_raised(self):
        store = ArtifactStore(MemoryKVStore())
        assert store.store("rewrite", "ns", "k", {"x": {1, 2}}) is False
        assert store.load("rewrite", "ns", "k") is None
        assert store.stats()["tiers"]["rewrite"]["writes"] == 0
