"""Session-level persistence: the durable decision cache.

A `Session` bound to an `ArtifactStore` writes every clean decision
and plan through to the store and load-throughs on memory misses — so
a *fresh* session (new process, cold LRU) over the same store serves
the same responses without recomputing.  The durable key includes the
fingerprint, the canonical query, and every limit that can change the
answer; it deliberately excludes ``chase_parallelism`` (results are
identical for every setting, per its CLI contract).
"""

import json

from repro.cache import ArtifactStore, MemoryKVStore, open_directory
from repro.io import DecideResponse
from repro.service import Session, compile_schema
from repro.workloads import (
    id_chain_workload,
    lookup_chain_workload,
    university_schema,
)


def normalized(payload: dict) -> str:
    payload = dict(payload)
    payload.pop("elapsed_ms", None)
    payload.pop("cached", None)
    return json.dumps(payload, sort_keys=True)


class TestDurableDecide:
    def test_fresh_session_serves_from_store(self):
        store = ArtifactStore(MemoryKVStore())
        compiled = compile_schema(university_schema())
        query = "Q(n) :- Prof(i, n, 10000)"

        first = Session(compiled, store=store)
        cold = first.decide(query)
        assert cold.cached is False

        second = Session(compiled, store=store)
        warm = second.decide(query)
        assert warm.cached is True
        assert second.durable_hits == 1
        assert normalized(warm.to_dict()) == normalized(cold.to_dict())
        # The load-through populated the memory LRU: the next lookup
        # does not touch the store again.
        hits_before = store.stats()["tiers"]["decision"]["hits"]
        second.decide(query)
        assert store.stats()["tiers"]["decision"]["hits"] == hits_before

    def test_survives_store_reopen_on_disk(self, tmp_path):
        compiled = compile_schema(id_chain_workload(4).schema)
        store = open_directory(tmp_path / "cache")
        cold = Session(compiled, store=store).decide("R0(x)")
        store.close()

        reopened = open_directory(tmp_path / "cache")
        try:
            warm = Session(compiled, store=reopened).decide("R0(x)")
            assert warm.cached is True
            assert normalized(warm.to_dict()) == normalized(cold.to_dict())
        finally:
            reopened.close()

    def test_limits_partition_the_durable_space(self):
        # A decision computed under one disjunct budget must not be
        # served to a session running under another.
        store = ArtifactStore(MemoryKVStore())
        compiled = compile_schema(id_chain_workload(4).schema)
        Session(compiled, store=store).decide("R0(x)")
        other = Session(compiled, store=store, max_disjuncts=7)
        response = other.decide("R0(x)")
        assert response.cached is False
        assert other.durable_hits == 0

    def test_chase_parallelism_shares_durable_entries(self):
        store = ArtifactStore(MemoryKVStore())
        compiled = compile_schema(id_chain_workload(4).schema)
        Session(compiled, store=store).decide("R0(x)")
        parallel = Session(compiled, store=store, chase_parallelism=4)
        assert parallel.decide("R0(x)").cached is True
        assert parallel.durable_hits == 1

    def test_finite_and_classical_keys_differ(self):
        store = ArtifactStore(MemoryKVStore())
        compiled = compile_schema(university_schema())
        query = "Q() :- Prof(i, n, s)"
        Session(compiled, store=store).decide(query)
        fresh = Session(compiled, store=store)
        assert fresh.decide(query, finite=True).cached is False

    def test_budget_errors_are_never_persisted(self):
        store = ArtifactStore(MemoryKVStore())
        compiled = compile_schema(id_chain_workload(6).schema)
        constrained = Session(compiled, store=store, max_disjuncts=1)
        response = constrained.decide("R0(x)")
        assert response.error is not None
        assert store.stats()["tiers"].get("decision", {}).get(
            "writes", 0
        ) == 0
        # And a fresh session recomputes (and re-hits the limit).
        again = Session(compiled, store=store, max_disjuncts=1).decide(
            "R0(x)"
        )
        assert again.cached is False
        assert again.error is not None

    def test_cache_info_and_stats_report_the_store(self):
        store = ArtifactStore(MemoryKVStore())
        session = Session(
            compile_schema(university_schema()), store=store
        )
        assert session.cache_info()["durable_hits"] == 0
        assert session.stats()["store"]["tiers"] == {}
        bare = Session(compile_schema(university_schema()))
        assert "durable_hits" not in bare.cache_info()
        assert "store" not in bare.stats()


class TestDurablePlan:
    def test_plan_round_trips_through_the_store(self):
        store = ArtifactStore(MemoryKVStore())
        chain = lookup_chain_workload(3)
        compiled = compile_schema(chain.schema)
        query = "Q() :- L0(x, y), L1(y, z)"

        cold = Session(compiled, store=store).plan(query)
        warm_session = Session(compiled, store=store)
        warm = warm_session.plan(query)
        assert warm.cached is True
        assert warm_session.durable_hits == 1
        assert normalized(warm.to_dict()) == normalized(cold.to_dict())

    def test_fingerprint_mismatch_entries_are_rejected(self):
        # An entry stored under the wrong namespace content (e.g. a
        # hand-edited store) must not be served: the payload's own
        # fingerprint is checked against the session's.
        store = ArtifactStore(MemoryKVStore())
        compiled = compile_schema(university_schema())
        session = Session(compiled, store=store)
        foreign = session.decide("Q() :- Udirectory(i, a, p)").to_dict()
        foreign["fingerprint"] = "0" * 64
        forged_key = session._durable_key("decide", "forged")
        store.store(
            "decision",
            f"decision:{compiled.fingerprint}",
            forged_key,
            foreign,
        )
        fresh = Session(compiled, store=store)
        assert fresh._durable_load(
            forged_key, DecideResponse.from_dict
        ) is None
        assert fresh.durable_hits == 0
