"""KVStore contract tests: both backends honor one behavior.

Every test parametrized over ``backend`` runs identically against the
in-memory store and the SQLite store — the artifact tier must not be
able to observe which one it sits on.  SQLite-only tests cover the
durability and failure-contract properties a dict cannot have:
persistence across reopen, corrupt-file sidelining, and data-path
degradation (errors become misses, never exceptions).
"""

import sqlite3

import pytest

from repro.cache import CacheError, MemoryKVStore, SQLiteKVStore


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, tmp_path):
    if request.param == "memory":
        store = MemoryKVStore()
    else:
        store = SQLiteKVStore(tmp_path / "kv.sqlite")
    yield store
    store.close()


class TestContract:
    def test_get_put_delete_roundtrip(self, backend):
        assert backend.get("ns", "k") is None
        backend.put("ns", "k", b"value")
        assert backend.get("ns", "k") == b"value"
        backend.put("ns", "k", b"replaced")
        assert backend.get("ns", "k") == b"replaced"
        assert backend.delete("ns", "k") is True
        assert backend.delete("ns", "k") is False
        assert backend.get("ns", "k") is None

    def test_namespaces_isolate_keys(self, backend):
        backend.put("a", "k", b"1")
        backend.put("b", "k", b"2")
        assert backend.get("a", "k") == b"1"
        assert backend.get("b", "k") == b"2"
        assert set(backend.namespaces()) == {"a", "b"}
        backend.delete("a", "k")
        assert backend.get("b", "k") == b"2"

    def test_scan_filters_by_prefix(self, backend):
        for key in ("alpha", "alps", "beta"):
            backend.put("ns", key, b"x")
        assert sorted(backend.scan("ns")) == ["alpha", "alps", "beta"]
        assert sorted(backend.scan("ns", "al")) == ["alpha", "alps"]
        assert list(backend.scan("ns", "zz")) == []
        assert list(backend.scan("empty")) == []

    def test_expired_entries_behave_as_absent(self, backend, monkeypatch):
        import repro.cache.kv as kv_module

        now = [1000.0]
        monkeypatch.setattr(kv_module.time, "time", lambda: now[0])
        backend.put("ns", "ttl", b"x", ttl_s=5.0)
        backend.put("ns", "forever", b"y")
        assert backend.get("ns", "ttl") == b"x"
        now[0] += 10.0
        assert backend.get("ns", "ttl") is None
        assert list(backend.scan("ns")) == ["forever"]
        assert backend.get("ns", "forever") == b"y"


class TestSQLiteDurability:
    def test_values_survive_reopen(self, tmp_path):
        path = tmp_path / "kv.sqlite"
        first = SQLiteKVStore(path)
        first.put("ns", "k", b"persisted")
        first.close()
        second = SQLiteKVStore(path)
        try:
            assert second.get("ns", "k") == b"persisted"
        finally:
            second.close()

    def test_corrupt_file_is_sidelined_and_recreated(self, tmp_path):
        path = tmp_path / "kv.sqlite"
        path.write_bytes(b"this is not a sqlite database at all\x00\xff")
        store = SQLiteKVStore(path)
        try:
            # Fresh, usable, empty — the garbage was moved aside.
            assert store.get("ns", "k") is None
            store.put("ns", "k", b"fresh")
            assert store.get("ns", "k") == b"fresh"
        finally:
            store.close()
        sidelined = list(tmp_path.glob("kv.sqlite.corrupt-*"))
        assert len(sidelined) == 1
        assert sidelined[0].read_bytes().startswith(b"this is not")

    def test_unusable_path_raises_typed_error(self, tmp_path):
        # The parent "directory" is a plain file: the store can neither
        # be opened nor sidelined — construction fails with the typed
        # error the CLI turns into "cache disabled, serving cold".
        blocker = tmp_path / "blocker"
        blocker.write_text("occupied")
        with pytest.raises(CacheError):
            SQLiteKVStore(blocker / "kv.sqlite")

    def test_data_path_errors_degrade_to_misses(self, tmp_path):
        store = SQLiteKVStore(tmp_path / "kv.sqlite")
        store.put("ns", "k", b"x")
        # Sabotage the live connection: every later statement fails.
        store._conn.close()
        store._conn = sqlite3.connect(":memory:")  # no cache table
        assert store.get("ns", "k") is None
        store.put("ns", "k2", b"y")  # swallowed
        assert store.delete("ns", "k") is False
        assert list(store.scan("ns")) == []
        assert store.namespaces() == ()
        assert store.operational_errors >= 4
        assert store.describe()["operational_errors"] >= 4
        store.close()

    def test_closed_store_is_inert(self, tmp_path):
        store = SQLiteKVStore(tmp_path / "kv.sqlite")
        store.close()
        assert store.get("ns", "k") is None
        store.put("ns", "k", b"x")
        assert store.delete("ns", "k") is False
        assert list(store.scan("ns")) == []
        store.close()  # idempotent

    def test_cross_handle_visibility(self, tmp_path):
        # Two open handles on one file (the fleet's shape, in-process):
        # a write through one is immediately readable through the other.
        path = tmp_path / "kv.sqlite"
        writer = SQLiteKVStore(path)
        reader = SQLiteKVStore(path)
        try:
            writer.put("ns", "k", b"shared")
            assert reader.get("ns", "k") == b"shared"
        finally:
            writer.close()
            reader.close()
