"""Tests for the relational algebra."""

import pytest

from repro.logic import Constant
from repro.plans import (
    AlgebraError,
    ConstantRow,
    Difference,
    Join,
    Product,
    Projection,
    Selection,
    TableRef,
    Union,
    Unit,
)


def c(*values):
    return tuple(Constant(v) for v in values)


ENV = {
    "R": frozenset({c(1, "a"), c(2, "b"), c(3, "a")}),
    "S": frozenset({c("a"), c("z")}),
}


class TestEvaluation:
    def test_table_ref(self):
        assert TableRef("R", 2).evaluate(ENV) == ENV["R"]

    def test_unknown_table(self):
        with pytest.raises(AlgebraError):
            TableRef("X", 1).evaluate(ENV)

    def test_unit(self):
        assert Unit().evaluate(ENV) == frozenset({()})

    def test_constant_row(self):
        expr = ConstantRow((Constant(7),))
        assert expr.evaluate(ENV) == frozenset({c(7)})

    def test_selection_col_const(self):
        expr = Selection(TableRef("R", 2), ((1, Constant("a")),))
        assert expr.evaluate(ENV) == frozenset({c(1, "a"), c(3, "a")})

    def test_selection_col_col(self):
        env = {"T": frozenset({c(1, 1), c(1, 2)})}
        expr = Selection(TableRef("T", 2), ((0, 1),))
        assert expr.evaluate(env) == frozenset({c(1, 1)})

    def test_projection_reorder_duplicate(self):
        expr = Projection(TableRef("R", 2), (1, 1, 0))
        assert c("a", "a", 1) in expr.evaluate(ENV)

    def test_product(self):
        expr = Product(TableRef("S", 1), TableRef("S", 1))
        assert len(expr.evaluate(ENV)) == 4

    def test_join(self):
        expr = Join(TableRef("R", 2), TableRef("S", 1), ((1, 0),))
        assert expr.evaluate(ENV) == frozenset(
            {c(1, "a", "a"), c(3, "a", "a")}
        )

    def test_union(self):
        expr = Union((TableRef("S", 1), ConstantRow((Constant("y"),))))
        assert expr.evaluate(ENV) == frozenset({c("a"), c("z"), c("y")})

    def test_difference(self):
        expr = Difference(TableRef("S", 1), ConstantRow((Constant("a"),)))
        assert expr.evaluate(ENV) == frozenset({c("z")})


class TestValidation:
    def test_selection_range(self):
        with pytest.raises(AlgebraError):
            Selection(TableRef("R", 2), ((5, Constant(1)),))

    def test_projection_range(self):
        with pytest.raises(AlgebraError):
            Projection(TableRef("R", 2), (2,))

    def test_join_range(self):
        with pytest.raises(AlgebraError):
            Join(TableRef("R", 2), TableRef("S", 1), ((0, 3),))

    def test_union_arity(self):
        with pytest.raises(AlgebraError):
            Union((TableRef("R", 2), TableRef("S", 1)))

    def test_difference_arity(self):
        with pytest.raises(AlgebraError):
            Difference(TableRef("R", 2), TableRef("S", 1))


class TestMonotonicity:
    def test_monotone_tree(self):
        expr = Union((Projection(TableRef("R", 2), (0,)), TableRef("S", 1)))
        assert expr.is_monotone()

    def test_difference_not_monotone(self):
        expr = Projection(
            Difference(TableRef("S", 1), TableRef("S", 1)), (0,)
        )
        assert not expr.is_monotone()

    def test_tables_used(self):
        expr = Join(TableRef("R", 2), TableRef("S", 1), ((1, 0),))
        assert expr.tables_used() == frozenset({"R", "S"})
