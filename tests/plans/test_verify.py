"""Tests for symbolic plan verification."""

from repro.data import Instance
from repro.logic import Constant, atom, boolean_cq
from repro.plans import (
    AccessCommand,
    Plan,
    Projection,
    QueryCommand,
    TableRef,
    Unit,
)
from repro.plans.verify import verify_plan_symbolically
from repro.workloads.paperschemas import (
    query_q1_boolean,
    query_q2,
    university_instance,
    university_schema,
)


def q1_boolean_plan():
    """Dump directory, look professors up, test salary = 10000."""
    from repro.plans import Selection

    return Plan(
        (
            AccessCommand("T_dir", "ud", Unit()),
            AccessCommand(
                "T_prof", "pr", Projection(TableRef("T_dir", 3), (0,))
            ),
            QueryCommand(
                "T_out",
                Projection(
                    Selection(TableRef("T_prof", 3),
                              ((2, Constant(10000)),)),
                    (),
                ),
            ),
        ),
        "T_out",
    )


def q2_plan():
    return Plan(
        (
            AccessCommand("T", "ud", Unit()),
            QueryCommand("T0", Projection(TableRef("T", 3), ())),
        ),
        "T0",
    )


class TestExactMethods:
    def test_correct_plan_verified(self):
        schema = university_schema(ud_bound=None)
        decision = verify_plan_symbolically(
            q1_boolean_plan(), query_q1_boolean(), schema
        )
        assert decision.is_yes

    def test_wrong_query_rejected(self):
        schema = university_schema(ud_bound=None)
        # The Q1 plan does not answer Q2 (it misses non-professors? no —
        # it returns () only when a 10000-salary professor exists, which
        # is strictly stronger than "directory nonempty").
        decision = verify_plan_symbolically(
            q1_boolean_plan(), query_q2(), schema
        )
        assert decision.is_no

    def test_overreaching_plan_rejected(self):
        """A plan returning () whenever the directory is nonempty does
        not answer Q1 (it can return non-answers)."""
        schema = university_schema(ud_bound=None)
        decision = verify_plan_symbolically(
            q2_plan(), query_q1_boolean(), schema
        )
        assert decision.is_no


class TestBoundedMethods:
    def test_q2_plan_with_instances(self):
        schema = university_schema(ud_bound=2)
        decision = verify_plan_symbolically(
            q2_plan(),
            query_q2(),
            schema,
            instances=[Instance(), university_instance(4)],
        )
        assert decision.is_yes

    def test_q2_plan_without_instances_unknown(self):
        schema = university_schema(ud_bound=2)
        decision = verify_plan_symbolically(q2_plan(), query_q2(), schema)
        assert decision.is_unknown

    def test_selection_dependence_detected(self):
        """The Q1 plan passes the UCQ equivalence but fails under a
        stingy selection when ud is bounded."""
        schema = university_schema(ud_bound=1)
        decision = verify_plan_symbolically(
            q1_boolean_plan(),
            query_q1_boolean(),
            schema,
            instances=[university_instance(4)],
        )
        assert decision.is_no
