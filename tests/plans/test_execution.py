"""Tests for plan construction, execution, and the paper's Examples
1.2, 1.4, 2.1, and A.1."""

import pytest

from repro.accessibility import EagerSelection, StingySelection
from repro.data import Instance
from repro.logic import Constant, ground_atom
from repro.plans import (
    AccessCommand,
    Plan,
    PlanError,
    Projection,
    QueryCommand,
    Selection,
    TableRef,
    Unit,
    execute,
    plan_answers_query_on,
    possible_outputs,
)
from repro.schema import Schema
from repro.workloads.paperschemas import (
    query_q1,
    query_q2,
    university_instance,
    university_schema,
)


def example_1_2_plan() -> Plan:
    """Access ud to get ids, feed them to pr, filter salary = 10000."""
    return Plan(
        (
            AccessCommand("T_dir", "ud", Unit()),
            AccessCommand(
                "T_prof", "pr", Projection(TableRef("T_dir", 3), (0,))
            ),
            QueryCommand(
                "T_out",
                Projection(
                    Selection(
                        TableRef("T_prof", 3), ((2, Constant(10000)),)
                    ),
                    (1,),
                ),
            ),
        ),
        "T_out",
        name="PL_Q1",
    )


def example_2_1_plan() -> Plan:
    """T <= ud <= ∅;  T0 := π∅ T;  Return T0  (Example 2.1)."""
    return Plan(
        (
            AccessCommand("T", "ud", Unit()),
            QueryCommand("T0", Projection(TableRef("T", 3), ())),
        ),
        "T0",
        name="PL_Q2",
    )


class TestValidation:
    def test_duplicate_target(self):
        with pytest.raises(PlanError):
            Plan(
                (
                    QueryCommand("T", Unit()),
                    QueryCommand("T", Unit()),
                ),
                "T",
            )

    def test_missing_return(self):
        with pytest.raises(PlanError):
            Plan((QueryCommand("T", Unit()),), "Nope")

    def test_use_before_define(self):
        schema = university_schema()
        plan = Plan(
            (QueryCommand("T", Projection(TableRef("X", 2), (0,))),), "T"
        )
        with pytest.raises(PlanError):
            plan.validate(schema)

    def test_monotone_flag(self):
        assert example_1_2_plan().is_monotone()

    def test_methods_used(self):
        assert example_1_2_plan().methods_used() == frozenset({"ud", "pr"})


class TestExample12:
    """Example 1.2: the plan answers Q1 when ud has no result bound."""

    def test_plan_computes_q1_without_bound(self):
        schema = university_schema(ud_bound=None)
        instance = university_instance(6)
        output = execute(example_1_2_plan(), instance, schema)
        expected = {
            (Constant(f"name{i}"),) for i in range(6) if i % 2 == 0
        }
        assert output == frozenset(expected)

    def test_example_1_3_bound_breaks_the_plan(self):
        """Example 1.3: with a result bound on ud the plan can miss
        answers under an adversarial selection."""
        schema = university_schema(ud_bound=2)
        instance = university_instance(8)
        outputs = {
            execute(example_1_2_plan(), instance, schema, selection)
            for selection in (EagerSelection(), StingySelection())
        }
        full = execute(
            example_1_2_plan(), instance, university_schema(ud_bound=None)
        )
        # Some valid selection yields fewer answers than the true result.
        assert any(o != full for o in outputs) or len(full) <= 2

    def test_empirical_answerability_check(self):
        schema = university_schema(ud_bound=None)
        instances = [university_instance(n) for n in (1, 3, 5)]
        assert plan_answers_query_on(
            example_1_2_plan(), query_q1(), schema, instances,
            exhaustive=False,
        )


class TestExample14And21:
    """Examples 1.4/2.1: existence check is robust to result bounds."""

    def test_single_possible_output_nonempty(self):
        schema = university_schema(ud_bound=2)
        instance = university_instance(7)
        outputs = set(
            possible_outputs(example_2_1_plan(), instance, schema)
        )
        assert outputs == {frozenset({()})}

    def test_single_possible_output_empty(self):
        schema = university_schema(ud_bound=2)
        outputs = set(
            possible_outputs(example_2_1_plan(), Instance(), schema)
        )
        assert outputs == {frozenset()}

    def test_answers_q2_exhaustively(self):
        schema = university_schema(ud_bound=2)
        instances = [Instance(), university_instance(5)]
        assert plan_answers_query_on(
            example_2_1_plan(), query_q2(), schema, instances,
        )

    def test_q1_plan_fails_exhaustive_check_with_bound(self):
        schema = university_schema(ud_bound=1)
        instances = [university_instance(4)]
        assert not plan_answers_query_on(
            example_1_2_plan(), query_q1(), schema, instances,
            per_access_limit=8, total_limit=256,
        )


class TestSemantics:
    """Appendix A: idempotent vs non-idempotent execution."""

    def make_intersection_plan(self):
        """Example A.1: access mt twice, intersect (via join), project."""
        from repro.plans import Join

        return Plan(
            (
                AccessCommand("T1", "mt", Unit()),
                AccessCommand("T2", "mt", Unit()),
                QueryCommand(
                    "T0",
                    Projection(
                        Join(TableRef("T1", 1), TableRef("T2", 1), ((0, 0),)),
                        (),
                    ),
                ),
            ),
            "T0",
        )

    def schema_a1(self):
        schema = Schema()
        schema.add_relation("R", 1)
        schema.add_method("mt", "R", inputs=[], result_bound=5)
        return schema

    def test_idempotent_repeated_access_consistent(self):
        schema = self.schema_a1()
        instance = Instance(ground_atom("R", i) for i in range(12))
        plan = self.make_intersection_plan()
        # Under idempotent semantics T1 = T2, so the output is nonempty.
        for seed_selection in (EagerSelection(), StingySelection()):
            output = execute(plan, instance, schema, seed_selection)
            assert output == frozenset({()})

    def test_non_idempotent_may_disagree(self):
        from repro.accessibility import ExplicitSelection

        schema = self.schema_a1()
        instance = Instance(ground_atom("R", i) for i in range(12))
        plan = self.make_intersection_plan()
        # Force the two access commands to draw disjoint valid outputs.
        low = frozenset(ground_atom("R", i) for i in range(5))
        high = frozenset(ground_atom("R", i) for i in range(5, 10))
        selections = iter(
            [
                ExplicitSelection({("mt", ()): low}),
                ExplicitSelection({("mt", ()): high}),
            ]
        )
        output = execute(
            plan,
            instance,
            schema,
            semantics="non_idempotent",
            selection_factory=lambda: next(selections),
        )
        # Disjoint draws: the intersection plan returns empty although R
        # is nonempty — Example A.1's nondeterminism.
        assert output == frozenset()
