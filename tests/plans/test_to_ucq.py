"""Tests for monotone plan -> UCQ conversion."""

import pytest

from repro.data import Instance
from repro.logic import evaluate_ucq
from repro.plans import (
    AccessCommand,
    Difference,
    Plan,
    Projection,
    QueryCommand,
    Selection,
    TableRef,
    UCQConversionError,
    Union,
    Unit,
    execute,
    plan_to_ucq,
)
from repro.logic.terms import Constant
from repro.workloads.paperschemas import (
    university_instance,
    university_schema,
)


def q1_plan():
    return Plan(
        (
            AccessCommand("T_dir", "ud", Unit()),
            AccessCommand(
                "T_prof", "pr", Projection(TableRef("T_dir", 3), (0,))
            ),
            QueryCommand(
                "T_out",
                Projection(
                    Selection(TableRef("T_prof", 3), ((2, Constant(10000)),)),
                    (1,),
                ),
            ),
        ),
        "T_out",
        name="PLQ1",
    )


class TestConversion:
    def test_q1_plan_ucq_matches_execution(self):
        schema = university_schema(ud_bound=None)
        plan = q1_plan()
        ucq = plan_to_ucq(plan, schema)
        for n in (0, 1, 4, 7):
            instance = university_instance(n)
            assert evaluate_ucq(ucq, instance) == execute(
                plan, instance, schema
            )

    def test_boolean_plan(self):
        schema = university_schema(ud_bound=None)
        plan = Plan(
            (
                AccessCommand("T", "ud", Unit()),
                QueryCommand("T0", Projection(TableRef("T", 3), ())),
            ),
            "T0",
        )
        ucq = plan_to_ucq(plan, schema)
        assert ucq.is_boolean()
        assert evaluate_ucq(ucq, university_instance(2)) == frozenset({()})
        assert evaluate_ucq(ucq, Instance()) == frozenset()

    def test_union_plans(self):
        schema = university_schema(ud_bound=None)
        plan = Plan(
            (
                AccessCommand("T", "ud", Unit()),
                QueryCommand(
                    "T0",
                    Union(
                        (
                            Projection(TableRef("T", 3), (0,)),
                            Projection(TableRef("T", 3), (1,)),
                        )
                    ),
                ),
            ),
            "T0",
        )
        ucq = plan_to_ucq(plan, schema)
        assert len(ucq.disjuncts) == 2

    def test_difference_rejected(self):
        schema = university_schema(ud_bound=None)
        plan = Plan(
            (
                AccessCommand("T", "ud", Unit()),
                QueryCommand(
                    "T0",
                    Difference(
                        Projection(TableRef("T", 3), (0,)),
                        Projection(TableRef("T", 3), (1,)),
                    ),
                ),
            ),
            "T0",
        )
        with pytest.raises(UCQConversionError):
            plan_to_ucq(plan, schema)

    def test_access_binding_join_semantics(self):
        # The pr access joins Prof on the id coming from ud: check the
        # UCQ encodes the join (id shared between Udirectory and Prof).
        schema = university_schema(ud_bound=None)
        ucq = plan_to_ucq(q1_plan(), schema)
        disjunct = ucq.disjuncts[0]
        relations = sorted(a.relation for a in disjunct.atoms)
        assert relations == ["Prof", "Udirectory"]
        prof_atom = next(
            a for a in disjunct.atoms if a.relation == "Prof"
        )
        dir_atom = next(
            a for a in disjunct.atoms if a.relation == "Udirectory"
        )
        assert prof_atom.terms[0] == dir_atom.terms[0]  # shared id
        assert prof_atom.terms[2] == Constant(10000)
