"""Tests for the cached-plan transformation (Appendix A, Prop A.2)."""

import pytest

from repro.accessibility import ExplicitSelection
from repro.data import Instance
from repro.logic import ground_atom
from repro.plans import (
    AccessCommand,
    Join,
    Plan,
    PlanError,
    Projection,
    QueryCommand,
    TableRef,
    Unit,
    execute,
)
from repro.plans.caching import with_output_caching
from repro.schema import Schema


def schema_a1():
    schema = Schema()
    schema.add_relation("R", 1)
    schema.add_method("mt", "R", inputs=[], result_bound=5)
    return schema


def intersection_plan():
    """Example A.1: access mt twice, intersect, project to Boolean."""
    return Plan(
        (
            AccessCommand("T1", "mt", Unit()),
            AccessCommand("T2", "mt", Unit()),
            QueryCommand(
                "T0",
                Projection(
                    Join(TableRef("T1", 1), TableRef("T2", 1), ((0, 0),)),
                    (),
                ),
            ),
        ),
        "T0",
    )


def keyed_schema():
    schema = Schema()
    schema.add_relation("S", 2)
    schema.add_method("by_key", "S", inputs=[0], result_lower_bound=1)
    schema.add_method("dump", "S", inputs=[])
    return schema


class TestExampleA1:
    def test_uncached_plan_nondeterministic(self):
        schema = schema_a1()
        instance = Instance(ground_atom("R", i) for i in range(12))
        low = frozenset(ground_atom("R", i) for i in range(5))
        high = frozenset(ground_atom("R", i) for i in range(5, 10))
        selections = iter(
            [ExplicitSelection({("mt", ()): low}),
             ExplicitSelection({("mt", ()): high})]
        )
        output = execute(
            intersection_plan(),
            instance,
            schema,
            semantics="non_idempotent",
            selection_factory=lambda: next(selections),
        )
        assert output == frozenset()  # misses although R is nonempty

    def test_cached_plan_deterministic(self):
        """cached(PL) answers non-emptiness under disagreeing draws."""
        schema = schema_a1()
        instance = Instance(ground_atom("R", i) for i in range(12))
        cached = with_output_caching(intersection_plan(), schema)
        assert cached.is_monotone()
        low = frozenset(ground_atom("R", i) for i in range(5))
        high = frozenset(ground_atom("R", i) for i in range(5, 10))
        selections = iter(
            [ExplicitSelection({("mt", ()): low}),
             ExplicitSelection({("mt", ()): high})]
        )
        output = execute(
            cached,
            instance,
            schema,
            semantics="non_idempotent",
            selection_factory=lambda: next(selections),
        )
        # T2 now unions T1's cached output: the intersection is nonempty.
        assert output == frozenset({()})

    def test_cached_plan_same_under_idempotent(self):
        schema = schema_a1()
        instance = Instance(ground_atom("R", i) for i in range(12))
        plain = execute(intersection_plan(), instance, schema)
        cached = execute(
            with_output_caching(intersection_plan(), schema),
            instance,
            schema,
        )
        assert plain == cached == frozenset({()})


class TestKeyedCaching:
    def keyed_plan(self):
        """Dump keys, access by_key twice, compare outputs."""
        return Plan(
            (
                AccessCommand("T_dump", "dump", Unit()),
                AccessCommand(
                    "A1", "by_key", Projection(TableRef("T_dump", 2), (0,))
                ),
                AccessCommand(
                    "A2", "by_key", Projection(TableRef("T_dump", 2), (0,))
                ),
                QueryCommand(
                    "T0",
                    Projection(
                        Join(TableRef("A1", 2), TableRef("A2", 2),
                             ((0, 0), (1, 1))),
                        (),
                    ),
                ),
            ),
            "T0",
        )

    def test_replay_joins_on_binding(self):
        schema = keyed_schema()
        instance = Instance(
            [ground_atom("S", "k", 1), ground_atom("S", "k", 2)]
        )
        cached = with_output_caching(self.keyed_plan(), schema)
        cached.validate(schema)
        # Lower bound 1: selections may return {S(k,1)} then {S(k,2)};
        # with caching A2 ⊇ A1 so the join is nonempty.
        first = ExplicitSelection(
            {("by_key", (ground_atom("S", "k", 1).terms[0],)):
             frozenset([ground_atom("S", "k", 1)])}
        )
        second = ExplicitSelection(
            {("by_key", (ground_atom("S", "k", 1).terms[0],)):
             frozenset([ground_atom("S", "k", 2)])}
        )
        selections = iter([ExplicitSelection({}), first, second])
        output = execute(
            cached,
            instance,
            schema,
            semantics="non_idempotent",
            selection_factory=lambda: next(selections),
        )
        assert output == frozenset({()})

    def test_rejects_projected_outputs(self):
        schema = keyed_schema()
        plan = Plan(
            (
                AccessCommand(
                    "T", "dump", Unit(), output_positions=(1,)
                ),
            ),
            "T",
        )
        with pytest.raises(PlanError):
            with_output_caching(plan, schema)
