"""Round trips for the wire dataclasses in `repro.io`."""

import json

import pytest

from repro.io import DecideRequest, DecideResponse, PlanResponse, json_safe


class TestDecideRequest:
    def test_round_trip_full(self):
        request = DecideRequest(
            query="Q() :- R(x, y)",
            schema={"relations": {"R": 2}},
            id="req-1",
            finite=True,
        )
        again = DecideRequest.from_dict(request.to_dict())
        assert again == request

    def test_round_trip_minimal(self):
        request = DecideRequest(query="R(x, y)")
        payload = request.to_dict()
        assert payload == {"query": "R(x, y)"}
        assert DecideRequest.from_dict(payload) == request

    def test_bare_string_is_a_query(self):
        assert DecideRequest.from_dict("R(x)") == DecideRequest(query="R(x)")

    def test_missing_query_rejected(self):
        from repro.io import SchemaFormatError

        with pytest.raises(SchemaFormatError):
            DecideRequest.from_dict({"id": 3})


class TestDecideResponse:
    def test_round_trip(self):
        response = DecideResponse(
            query="Q() :- R(x)",
            decision="yes",
            reason="chase proved it",
            route="linearization",
            constraint_class="inclusion dependencies",
            fingerprint="abc123",
            cached=True,
            elapsed_ms=1.25,
            id=7,
            detail={"rounds": 3},
        )
        payload = json.loads(json.dumps(response.to_dict()))
        assert DecideResponse.from_dict(payload) == response

    def test_exit_codes(self):
        assert DecideResponse("q", "yes").exit_code == 0
        assert DecideResponse("q", "no").exit_code == 1
        assert DecideResponse("q", "unknown").exit_code == 2

    def test_predicates(self):
        assert DecideResponse("q", "yes").is_yes
        assert DecideResponse("q", "no").is_no
        assert DecideResponse("q", "unknown").is_unknown


class TestPlanResponse:
    def test_round_trip_with_plan(self):
        response = PlanResponse(
            query="Q() :- R(x)",
            answerable=True,
            plan="T0 <= m <= {};\nreturn T0",
            fingerprint="abc",
        )
        payload = json.loads(json.dumps(response.to_dict()))
        assert PlanResponse.from_dict(payload) == response

    def test_round_trip_refusal(self):
        response = PlanResponse(
            query="Q() :- R(x)", answerable=False, reason="not answerable"
        )
        assert (
            PlanResponse.from_dict(response.to_dict()) == response
        )


class TestJsonSafe:
    def test_primitives_pass_through(self):
        assert json_safe({"a": 1, "b": [True, None, "x"]}) == {
            "a": 1,
            "b": [True, None, "x"],
        }

    def test_objects_become_reprs(self):
        class Thing:
            def __repr__(self):
                return "<thing>"

        safe = json_safe({"cert": Thing()})
        assert safe == {"cert": "<thing>"}
        json.dumps(safe)  # must not raise
