"""Compiled schemas: fingerprints and build-once artifact caching."""

import pytest

from repro.answerability import (
    decide_monotone_answerability,
    decide_with_fds,
    decide_with_ids,
)
from repro.logic.atoms import atom
from repro.logic.queries import boolean_cq
from repro.service import (
    CompiledSchema,
    as_compiled,
    compile_schema,
    schema_fingerprint,
)
from repro.workloads import (
    fd_determinacy_workload,
    query_q1_boolean,
    query_q2,
    tgd_transfer_workload,
    university_schema,
)


class TestFingerprint:
    def test_deterministic(self):
        a = schema_fingerprint(university_schema())
        b = schema_fingerprint(university_schema())
        assert a == b

    def test_distinguishes_bounds(self):
        assert schema_fingerprint(
            university_schema(ud_bound=100)
        ) != schema_fingerprint(university_schema(ud_bound=None))

    def test_distinguishes_constraints(self):
        assert schema_fingerprint(
            university_schema(with_fd=True)
        ) != schema_fingerprint(university_schema(with_fd=False))

    def test_method_order_insensitive(self):
        from repro.schema.schema import Schema

        ab = Schema()
        ab.add_relation("R", 2)
        ab.add_method("a", "R", inputs=[0])
        ab.add_method("b", "R", inputs=[1])
        ba = Schema()
        ba.add_relation("R", 2)
        ba.add_method("b", "R", inputs=[1])
        ba.add_method("a", "R", inputs=[0])
        assert schema_fingerprint(ab) == schema_fingerprint(ba)


class TestArtifactCaching:
    def test_linearization_runs_once_across_queries(self):
        compiled = compile_schema(university_schema(ud_bound=100))
        queries = [
            query_q2(),
            query_q1_boolean(),
            boolean_cq([atom("Prof", "i", "n", "s")], name="Qall"),
        ]
        for query in queries:
            decide_monotone_answerability(compiled, query)
        assert compiled.stats.get("linearization") == 1
        # And the repeated artifact is the very same object.
        assert compiled.linearization() is compiled.linearization()

    def test_fd_simplification_runs_once_across_queries(self):
        workload = fd_determinacy_workload(4)
        compiled = compile_schema(workload.schema)
        for __ in range(5):
            decide_with_fds(compiled, workload.query)
        assert compiled.stats.get("simplification:fd") == 1
        assert compiled.stats.get("amondet:fd") == 1

    def test_choice_amondet_runs_once(self):
        workload = tgd_transfer_workload(3)
        compiled = compile_schema(workload.schema)
        for __ in range(4):
            decide_monotone_answerability(compiled, workload.query)
        assert compiled.stats.get("simplification:choice") == 1
        assert compiled.stats.get("amondet:choice") == 1

    def test_existence_check_cached_on_chase_route(self):
        compiled = compile_schema(university_schema(ud_bound=100))
        for __ in range(3):
            decide_with_ids(
                compiled, query_q2(), route="chase", max_rounds=10
            )
        assert compiled.stats.get("simplification:existence-check") == 1


class TestCoercion:
    def test_as_compiled_passthrough(self):
        compiled = compile_schema(university_schema())
        assert as_compiled(compiled) is compiled

    def test_as_compiled_wraps_schema(self):
        compiled = as_compiled(university_schema())
        assert isinstance(compiled, CompiledSchema)

    def test_unknown_simplification_kind(self):
        compiled = compile_schema(university_schema())
        with pytest.raises(ValueError):
            compiled.simplification("nope")

    def test_isolated_from_later_schema_mutation(self):
        from repro.constraints import fd

        schema = university_schema(ud_bound=100)
        compiled = compile_schema(schema)
        fingerprint = compiled.fingerprint
        constraint_count = len(compiled.schema.constraints)
        schema.add_constraint(fd("Udirectory", [0], 1))
        assert compiled.fingerprint == fingerprint
        assert len(compiled.schema.constraints) == constraint_count
        assert compiled.fingerprint != compile_schema(schema).fingerprint

    def test_classification_matches_schema(self):
        schema = university_schema(with_fd=True, with_ud2=True)
        compiled = compile_schema(schema)
        assert compiled.constraint_class is schema.constraint_class()
        assert compiled.has_result_bounds
