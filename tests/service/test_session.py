"""Sessions: caching, limits, batch agreement with the free functions."""

import pytest

from repro.answerability import decide_monotone_answerability
from repro.logic.atoms import atom
from repro.logic.queries import boolean_cq
from repro.service import Session, canonical_query_key, compile_schema
from repro.workloads import (
    example_6_1_schema,
    fd_determinacy_workload,
    id_width_workload,
    lookup_chain_workload,
    query_example_6_1,
    query_q1_boolean,
    query_q2,
    query_q3_boolean,
    tgd_transfer_workload,
    uid_fd_workload,
    university_schema,
)

#: One workload per Table-1 row family (schema, queries to decide).
TABLE1_CASES = [
    ("fds", fd_determinacy_workload(3)),
    ("fds-undet", fd_determinacy_workload(3, ask_undetermined=True)),
    ("ids", lookup_chain_workload(3, dump_bound=None)),
    ("ids-bounded", lookup_chain_workload(3, dump_bound=5)),
    ("bounded-width", id_width_workload(2)),
    ("uids-fds", uid_fd_workload(3)),
    ("uids-nofd", uid_fd_workload(3, with_fd=False)),
    ("tgds", tgd_transfer_workload(3)),
]


class TestCanonicalKey:
    def test_alpha_equivalent_queries_share_keys(self):
        q1 = boolean_cq([atom("R", "x", "y"), atom("S", "y")], name="A")
        q2 = boolean_cq([atom("R", "u", "v"), atom("S", "v")], name="B")
        assert canonical_query_key(q1) == canonical_query_key(q2)

    def test_different_join_shapes_differ(self):
        q1 = boolean_cq([atom("R", "x", "x")])
        q2 = boolean_cq([atom("R", "x", "y")])
        assert canonical_query_key(q1) != canonical_query_key(q2)

    def test_free_variables_distinguish(self):
        x = atom("R", "x", "y")
        boolean = boolean_cq([x])
        from repro.logic.queries import cq
        from repro.logic.terms import Variable

        non_boolean = cq([x], free=[Variable("x")])
        assert canonical_query_key(boolean) != canonical_query_key(
            non_boolean
        )


class TestDecide:
    def test_matches_legacy_on_university(self):
        schema = university_schema(ud_bound=100, with_ud2=True, with_fd=True)
        session = Session(schema)
        for query in (query_q1_boolean(), query_q2(), query_q3_boolean()):
            legacy = decide_monotone_answerability(schema, query)
            assert session.decide(query).decision == legacy.truth.value

    @pytest.mark.parametrize(
        "label,workload", TABLE1_CASES, ids=[c[0] for c in TABLE1_CASES]
    )
    def test_decide_many_agrees_with_legacy(self, label, workload):
        session = Session(compile_schema(workload.schema))
        responses = session.decide_many([workload.query] * 2)
        legacy = decide_monotone_answerability(
            workload.schema, workload.query
        )
        for response in responses:
            assert response.decision == legacy.truth.value
        if workload.expected_answerable is not None:
            assert responses[0].is_yes == workload.expected_answerable

    def test_accepts_query_text(self):
        session = Session(university_schema(ud_bound=100))
        assert session.decide("Udirectory(i, a, p)").is_yes

    def test_response_is_wire_ready(self):
        import json

        session = Session(university_schema(ud_bound=100))
        payload = session.decide(query_q2()).to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["decision"] == "yes"
        assert payload["fingerprint"] == session.fingerprint


class TestCache:
    def test_repeat_hits_cache(self):
        session = Session(university_schema(ud_bound=100))
        first = session.decide(query_q2())
        second = session.decide(query_q2())
        assert not first.cached
        assert second.cached
        assert second.decision == first.decision
        assert session.cache_info()["hits"] == 1

    def test_alpha_variant_hits_cache(self):
        session = Session(university_schema(ud_bound=100))
        session.decide("Udirectory(i, a, p)")
        response = session.decide("Udirectory(x, y, z)")
        assert response.cached

    def test_eviction_respects_capacity(self):
        session = Session(
            university_schema(ud_bound=100), cache_size=1
        )
        session.decide(query_q2())
        session.decide(query_q1_boolean())  # evicts q2
        assert session.cache_info()["size"] == 1
        assert not session.decide(query_q2()).cached

    def test_zero_capacity_disables_caching(self):
        session = Session(university_schema(ud_bound=100), cache_size=0)
        session.decide(query_q2())
        assert not session.decide(query_q2()).cached

    def test_caller_mutation_cannot_poison_the_cache(self):
        session = Session(university_schema(ud_bound=100))
        first = session.decide(query_q2())
        first.id = "request-1"
        first.detail["annotation"] = "mine"
        second = session.decide(query_q2())
        assert second.id is None
        assert "annotation" not in second.detail
        second.detail["annotation"] = "other"
        assert "annotation" not in session.decide(query_q2()).detail

    def test_clear_cache(self):
        session = Session(university_schema(ud_bound=100))
        session.decide(query_q2())
        session.clear_cache()
        assert session.cache_info()["size"] == 0


class TestLimitsAndExplain:
    def test_max_rounds_limits_semidecidable_routes(self):
        # Example 6.1 decides YES via the choice-simplification chase in
        # a few rounds; max_rounds=1 must stop short with UNKNOWN.
        schema = example_6_1_schema()
        strict = Session(schema, max_rounds=1)
        relaxed = Session(schema)
        assert strict.decide(query_example_6_1()).is_unknown
        assert relaxed.decide(query_example_6_1()).is_yes

    def test_max_facts_is_threaded(self):
        schema = example_6_1_schema()
        strict = Session(schema, max_facts=2)
        assert strict.decide(query_example_6_1()).is_unknown

    def test_explain_reports_diagnostics(self):
        session = Session(university_schema(ud_bound=100), max_rounds=7)
        report = session.explain(query_q2())
        assert report["decision"] == "yes"
        assert report["limits"]["max_rounds"] == 7
        assert report["compile_stats"].get("linearization") == 1
        assert report["cache"]["misses"] >= 1

    def test_explain_reports_rewrite_engine_stats(self):
        # The ID route decides through the compiled schema's engine, so
        # explain must surface its cache counters.
        session = Session(university_schema(ud_bound=100))
        report = session.explain(query_q2())
        assert report["rewrite_engine"]["rewrites"] >= 1
        assert report["limits"]["max_disjuncts"] > 0

    def test_stats_shows_cross_query_engine_reuse(self):
        from repro.workloads import id_chain_workload

        session = Session(id_chain_workload(5).schema)
        for i in range(6):
            assert session.decide(f"R{i}(x)").is_yes
        engine = session.stats()["rewrite_engine"]
        assert engine["rewrites"] == 6
        assert engine["expansions_reused"] > 0

    def test_stats_shows_matcher_cache_traffic(self):
        # The ID route probes every rewriting disjunct through the
        # compiled schema's matcher; a batch of queries must show plan
        # reuse in the session stats.
        from repro.workloads import id_chain_workload

        session = Session(id_chain_workload(5).schema)
        for i in range(6):
            assert session.decide(f"R{i}(x)").is_yes
        matching = session.stats()["matching"]
        assert matching["strategy"] == "planned"
        assert matching["plans_compiled"] >= 1
        assert matching["plan_hits"] > 0
        assert session.explain("R0(x)")["matching"]["plan_hits"] > 0

    def test_rewriting_budget_surfaces_structured_error(self):
        from repro.workloads import id_chain_workload

        session = Session(id_chain_workload(4).schema, max_disjuncts=2)
        response = session.decide("R4(x)")
        assert response.is_unknown
        assert response.error["type"] == "RewritingBudgetExceeded"
        assert response.error["max_disjuncts"] == 2
        payload = response.to_dict()
        assert payload["error"]["type"] == "RewritingBudgetExceeded"
        # Promoted to the top level exactly once, not repeated in detail.
        assert "error" not in payload.get("detail", {})
        from repro.io import DecideResponse

        assert DecideResponse.from_dict(payload).error == payload["error"]

    def test_budget_failures_are_not_cached_as_decisions(self):
        # A request that failed under tight limits must not
        # short-circuit a later request with looser limits: structured
        # budget errors bypass the decision LRU entirely.
        from repro.workloads import id_chain_workload

        session = Session(id_chain_workload(4).schema, max_disjuncts=2)
        first = session.decide("R4(x)")
        assert first.is_unknown
        assert first.error["type"] == "RewritingBudgetExceeded"
        first.error["note"] = "mine"  # callers can't poison anything
        second = session.decide("R4(x)")
        assert not second.cached
        assert "note" not in second.error
        # Loosening the limits now succeeds instead of replaying the
        # stale budget failure from the cache.
        session.max_disjuncts = 50_000
        third = session.decide("R4(x)")
        assert not third.cached
        assert third.is_yes
        # ... and the successful decision *is* cached.
        assert session.decide("R4(x)").cached

    def test_plan_threads_the_rewriting_budget(self):
        # The ID-route plan gate must run under the session's budget,
        # not the module default (a starved gate degrades to the chase
        # route instead of spending the full 50k-disjunct allowance).
        from repro.answerability.plangen import generate_static_plan
        from repro.workloads import lookup_chain_workload

        workload = lookup_chain_workload(2, dump_bound=None)
        assert (
            generate_static_plan(
                workload.schema, workload.query, max_disjuncts=50_000
            )
            is not None
        )
        session = Session(workload.schema, max_disjuncts=1)
        assert session.plan(workload.query).answerable


class TestPlan:
    def test_plan_for_answerable_query(self):
        session = Session(university_schema(ud_bound=100))
        response = session.plan(query_q2())
        assert response.answerable
        assert "<= ud <=" in response.plan
        assert session.plan(query_q2()).cached

    def test_plan_refused_for_unanswerable_query(self):
        session = Session(university_schema(ud_bound=100))
        response = session.plan(query_q1_boolean())
        assert not response.answerable
        assert response.plan is None

    def test_plan_honors_session_limits(self):
        # The Example 6.1 certificate needs several chase rounds; a
        # one-round session must refuse where the default extracts.
        schema = example_6_1_schema()
        assert Session(schema).plan(query_example_6_1()).answerable
        strict = Session(schema, max_rounds=1)
        assert not strict.plan(query_example_6_1()).answerable

    def test_plan_refused_for_non_boolean_query(self):
        from repro.workloads import query_q1

        session = Session(university_schema(ud_bound=100))
        response = session.plan(query_q1())
        assert not response.answerable
        assert "Boolean" in response.reason


class TestFinite:
    def test_finite_variant_cached_separately(self):
        schema = university_schema(ud_bound=100)
        session = Session(schema)
        unrestricted = session.decide(query_q2())
        finite = session.decide(query_q2(), finite=True)
        assert unrestricted.decision == finite.decision
        # Distinct cache keys: the second finite call is the hit.
        assert not finite.cached
        assert session.decide(query_q2(), finite=True).cached
