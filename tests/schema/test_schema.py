"""Tests for relations, access methods, and schemas."""

import pytest

from repro.constraints import ConstraintClass, fd, tgd
from repro.schema import AccessMethod, Relation, Schema, SchemaError
from repro.workloads.paperschemas import university_schema


class TestRelation:
    def test_attributes_checked(self):
        with pytest.raises(ValueError):
            Relation("R", 2, ("only_one",))

    def test_attribute_name_fallback(self):
        assert Relation("R", 2).attribute_name(0) == "#1"
        assert Relation("R", 2, ("a", "b")).attribute_name(1) == "b"


class TestAccessMethod:
    def relation(self):
        return Relation("R", 3)

    def test_positions_validated(self):
        with pytest.raises(ValueError):
            AccessMethod("m", self.relation(), frozenset({5}))

    def test_both_bounds_rejected(self):
        with pytest.raises(ValueError):
            AccessMethod("m", self.relation(), frozenset(), 2, 3)

    def test_bound_positive(self):
        with pytest.raises(ValueError):
            AccessMethod("m", self.relation(), frozenset(), 0)

    def test_kinds(self):
        rel = self.relation()
        free = AccessMethod("f", rel, frozenset())
        assert free.is_input_free() and not free.is_boolean()
        boolean = AccessMethod("b", rel, frozenset({0, 1, 2}))
        assert boolean.is_boolean()

    def test_output_positions(self):
        method = AccessMethod("m", self.relation(), frozenset({1}))
        assert method.output_positions == (0, 2)

    def test_bound_conversions(self):
        method = AccessMethod("m", self.relation(), frozenset(), 7)
        assert method.is_result_bounded()
        lower = method.with_lower_bound(7)
        assert lower.has_lower_bound_only()
        assert lower.effective_bound() == 7
        exact = method.with_result_bound(None)
        assert exact.effective_bound() is None


class TestSchema:
    def test_university_schema_builds(self):
        schema = university_schema(with_ud2=True, with_fd=True)
        assert {r.name for r in schema.relations} == {"Prof", "Udirectory"}
        assert schema.method("ud").result_bound == 100
        assert schema.method("ud2").result_bound == 1
        assert len(schema.constraints) == 2

    def test_unknown_relation_in_method(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.add_method("m", "Nope", inputs=[])

    def test_constraint_unknown_relation(self):
        schema = Schema()
        schema.add_relation("R", 1)
        with pytest.raises(SchemaError):
            schema.add_constraint(tgd("R(x) -> S(x)"))

    def test_duplicate_method(self):
        schema = Schema()
        schema.add_relation("R", 1)
        schema.add_method("m", "R")
        with pytest.raises(SchemaError):
            schema.add_method("m", "R")

    def test_methods_on(self):
        schema = university_schema(with_ud2=True)
        assert {m.name for m in schema.methods_on("Udirectory")} == {
            "ud", "ud2"
        }

    def test_result_bounded_methods(self):
        schema = university_schema()
        assert {m.name for m in schema.result_bounded_methods()} == {"ud"}
        assert schema.has_result_bounds()

    def test_constraint_class(self):
        schema = university_schema()
        assert schema.constraint_class() is ConstraintClass.BOUNDED_WIDTH_IDS
        schema2 = university_schema(with_fd=True)
        # τ is a UID (width 1) and φ an FD.
        assert schema2.constraint_class() is ConstraintClass.UIDS_AND_FDS

    def test_replace_methods(self):
        schema = university_schema()
        stripped = schema.replace_methods([])
        assert not stripped.methods
        assert len(stripped.constraints) == len(schema.constraints)

    def test_satisfied_by(self):
        from repro.workloads.paperschemas import university_instance

        schema = university_schema(with_fd=True)
        assert schema.satisfied_by(university_instance())
