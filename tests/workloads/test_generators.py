"""Tests for the workload generators: structure + decider ground truth."""

import pytest

from repro.answerability import decide_monotone_answerability
from repro.constraints import ConstraintClass
from repro.workloads import (
    directory_instance,
    fd_determinacy_workload,
    id_width_workload,
    lookup_chain_workload,
    random_id_workload,
    tgd_transfer_workload,
    uid_fd_workload,
)


class TestStructure:
    def test_lookup_chain_shape(self):
        wl = lookup_chain_workload(3, dump_bound=7)
        assert len(wl.schema.relations) == 4
        assert wl.schema.method("dump").result_bound == 7
        assert len(wl.query.atoms) == 3
        assert (
            wl.schema.constraint_class()
            is ConstraintClass.BOUNDED_WIDTH_IDS
        )

    def test_fd_workload_shape(self):
        wl = fd_determinacy_workload(3, bound=4)
        assert wl.schema.relation("R").arity == 5
        assert len(wl.schema.constraints) == 3
        assert wl.schema.constraint_class() is ConstraintClass.FDS

    def test_uid_fd_class(self):
        assert (
            uid_fd_workload(2).schema.constraint_class()
            is ConstraintClass.UIDS_AND_FDS
        )

    def test_tgd_class(self):
        fragment = tgd_transfer_workload(2).schema.constraint_class()
        assert fragment in (
            ConstraintClass.FRONTIER_GUARDED_TGDS,
            ConstraintClass.GUARDED_TGDS,
        )

    def test_random_reproducible(self):
        a = random_id_workload(11)
        b = random_id_workload(11)
        assert repr(a.schema) == repr(b.schema)
        assert repr(a.query) == repr(b.query)

    def test_directory_instance(self):
        inst = directory_instance(5, lookups=2)
        assert len(inst.facts_of("Dir")) == 5
        assert len(inst.facts_of("L0")) == 5
        assert len(inst.facts_of("L1")) == 5


@pytest.mark.parametrize(
    "workload",
    [
        lookup_chain_workload(1, dump_bound=None),
        lookup_chain_workload(1, dump_bound=5),
        lookup_chain_workload(3, dump_bound=None),
        lookup_chain_workload(3, dump_bound=5),
        id_width_workload(1),
        id_width_workload(2),
        id_width_workload(2, bounded=False),
        fd_determinacy_workload(1),
        fd_determinacy_workload(3),
        fd_determinacy_workload(2, ask_undetermined=True),
        fd_determinacy_workload(2, bound=50),
        uid_fd_workload(1, with_fd=True),
        uid_fd_workload(1, with_fd=False),
        uid_fd_workload(3, with_fd=True),
        tgd_transfer_workload(1),
        tgd_transfer_workload(3),
    ],
    ids=lambda wl: wl.name,
)
def test_ground_truth(workload):
    """Every generated family decides to its constructed ground truth."""
    result = decide_monotone_answerability(workload.schema, workload.query)
    assert not result.is_unknown, workload.name
    assert result.is_yes == workload.expected_answerable, workload.name
