"""Tests for the simulated web services."""

import pytest

from repro.accessibility import accessible_part
from repro.answerability import UniversalPlan
from repro.data import Instance
from repro.logic import Constant, atom, boolean_cq, ground_atom
from repro.schema import Schema
from repro.workloads import (
    RateLimitExceeded,
    WebService,
    chemistry_service,
    movie_service,
)


def tiny_service(policy="first", rate_limit=None, bound=2):
    schema = Schema()
    schema.add_relation("R", 2)
    schema.add_method("all", "R", inputs=[], result_bound=bound)
    schema.add_method("by_key", "R", inputs=[0])
    data = Instance(ground_atom("R", i, f"v{i}") for i in range(5))
    return schema, WebService(
        schema, data, policy=policy, rate_limit=rate_limit
    )


class TestService:
    def test_bound_enforced(self):
        __, service = tiny_service()
        assert len(service.call("all")) == 2

    def test_exact_method_returns_all_matching(self):
        __, service = tiny_service()
        assert service.call("by_key", 3) == [(3, "v3")]

    def test_memoized_idempotent(self):
        __, service = tiny_service(policy="random")
        assert service.call("all") == service.call("all")

    def test_policies_differ(self):
        __, first = tiny_service(policy="first")
        __, adv = tiny_service(policy="adversarial")
        assert first.call("all") != adv.call("all")

    def test_rate_limit(self):
        __, service = tiny_service(rate_limit=2)
        service.call("by_key", 0)
        service.call("by_key", 1)
        with pytest.raises(RateLimitExceeded):
            service.call("by_key", 2)

    def test_call_log(self):
        __, service = tiny_service()
        service.call("all")
        service.call("by_key", 0)
        assert service.total_calls() == 2
        assert service.truncated_calls() == 1  # the bounded dump

    def test_selection_adapter(self):
        schema, service = tiny_service()
        part = accessible_part(service.data, schema, service.selection())
        # dump returns 2 rows; by_key on those ids returns them again.
        assert len(part.part) == 2


class TestProviders:
    def test_chemistry_schema_decides(self):
        from repro.answerability import decide_monotone_answerability

        schema, service = chemistry_service(30, lookup_cap=3)
        # "Is some compound with this formula present?" — existence
        # check: answerable despite the cap.
        q = boolean_cq(
            [atom("Compound", "i", Constant("C1H1"), "m")], name="Qf"
        )
        assert decide_monotone_answerability(schema, q).is_yes

    def test_movie_fd_mechanism(self):
        """The rating class is FD-determined by the id, so a bound-1
        by-id access answers rating queries; the year class is not."""
        from repro.answerability import decide_monotone_answerability

        schema, service = movie_service(20, listing_cap=5)
        rating_q = boolean_cq(
            [atom("Title", Constant(7), "y", Constant(7 % 10))],
            name="Qrating",
        )
        year_q = boolean_cq(
            [atom("Title", Constant(7), Constant("old"), "r")],
            name="Qyear",
        )
        assert decide_monotone_answerability(schema, rating_q).is_yes
        assert decide_monotone_answerability(schema, year_q).is_no

    def test_universal_plan_against_service(self):
        schema, service = movie_service(25, listing_cap=5)
        rating_q = boolean_cq(
            [atom("Title", Constant(7), "y", Constant(7 % 10))],
            name="Qrating",
        )
        plan = UniversalPlan(schema, rating_q)
        run = plan.run(service.data, service.selection())
        from repro.logic import holds

        assert bool(run.answers) == holds(rating_q, service.data)
