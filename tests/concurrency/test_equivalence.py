"""Concurrency equivalence: parallel serving must change nothing.

The serving layer's entire safety story rests on three claims the seed
suite never exercised under threads: `CompiledSchema` artifacts freeze
correctly under concurrent first use, `Session`'s decision cache and
the `Matcher`/`RewriteEngine` caches are thread-safe, and a
`SessionPool` routes concurrent mixed-fingerprint traffic to the same
answers a serial loop produces.

Every test here decides the same workload sequentially (the ground
truth) and concurrently (threads over shared state), then compares
*normalized* response payloads — `to_dict()` minus ``elapsed_ms`` and
``cached``, the only fields that legitimately depend on timing and on
which pooled session served the request.  Everything else — decision,
reason, route, constraint class, fingerprint, detail (including chase
certificates), structured errors — must be byte-identical.

A seeded tier-1 sample runs on every push; the randomized sweep
carries the ``slow`` marker and runs nightly.
"""

import json
import random
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.io import DecideRequest, schema_to_dict
from repro.server import SessionPool
from repro.service import Session, compile_schema
from repro.workloads import (
    fd_determinacy_workload,
    id_chain_workload,
    lookup_chain_workload,
    random_id_workload,
    tgd_transfer_workload,
    uid_fd_workload,
    university_schema,
)

THREADS = 8


def normalized(payload: dict) -> str:
    """The byte form compared across serial/concurrent runs."""
    payload = dict(payload)
    payload.pop("elapsed_ms", None)
    payload.pop("cached", None)
    return json.dumps(payload, sort_keys=True)


def hammer(threads: int, work):
    """Run ``work(index)`` on `threads` threads, first call gated on a
    barrier so cold caches race for real; re-raise any failure."""
    barrier = threading.Barrier(threads)

    def task(index: int):
        barrier.wait()
        return work(index)

    with ThreadPoolExecutor(max_workers=threads) as executor:
        futures = [executor.submit(task, i) for i in range(threads)]
        return [future.result() for future in futures]


def corpus():
    """Mixed-fragment workloads: every Table-1 route is represented."""
    chain = lookup_chain_workload(3)
    return [
        (university_schema(ud_bound=100), "Udirectory(i, a, p)"),
        (university_schema(ud_bound=100), "Prof(i, n, 10000)"),
        (chain.schema, "L0(x, y), L1(x, z)"),
        (chain.schema, "L2(x, y)"),
        (fd_determinacy_workload(4).schema, fd_determinacy_workload(4).query),
        (uid_fd_workload(3).schema, uid_fd_workload(3).query),
        (tgd_transfer_workload(3).schema, tgd_transfer_workload(3).query),
        (id_chain_workload(6).schema, "R0(x)"),
    ]


class TestSharedSession:
    def test_threads_on_one_session_match_sequential(self):
        for schema, query in corpus():
            compiled = compile_schema(schema)
            baseline = normalized(Session(compiled).decide(query).to_dict())
            shared = Session(compiled)

            def work(index, shared=shared, query=query):
                return [
                    normalized(shared.decide(query).to_dict())
                    for __ in range(3)
                ]

            for responses in hammer(THREADS, work):
                assert all(r == baseline for r in responses)

    def test_decision_cache_eviction_race_stays_consistent(self):
        # A tiny LRU hammered with more distinct queries than it holds:
        # every thread races insert against eviction on every call.
        schema = id_chain_workload(7).schema
        queries = [f"R{i}(x)" for i in range(8)]
        compiled = compile_schema(schema)
        baselines = {
            q: normalized(Session(compiled).decide(q).to_dict())
            for q in queries
        }
        shared = Session(compiled, cache_size=2)

        def work(index):
            ordered = queries[index:] + queries[:index]
            return all(
                normalized(shared.decide(q).to_dict()) == baselines[q]
                for __ in range(3)
                for q in ordered
            )

        assert all(hammer(THREADS, work))

    def test_cold_compiled_schema_thundering_herd_builds_once(self):
        schema = uid_fd_workload(3).schema
        query = uid_fd_workload(3).query
        compiled = compile_schema(schema)
        session = Session(compiled)
        results = hammer(
            THREADS, lambda i: normalized(session.decide(query).to_dict())
        )
        assert len(set(results)) == 1
        # Every frozen artifact was built exactly once despite the herd.
        assert all(count == 1 for count in compiled.stats.values()), (
            compiled.stats
        )


class TestSharedCompiledSchema:
    def test_private_sessions_over_one_compiled_schema(self):
        for schema, query in corpus():
            compiled = compile_schema(schema)
            baseline = normalized(Session(compiled).decide(query).to_dict())
            results = hammer(
                THREADS,
                lambda i: normalized(
                    Session(compiled).decide(query).to_dict()
                ),
            )
            assert set(results) == {baseline}


class TestSharedPool:
    def _requests(self):
        return [
            DecideRequest(query=str(query) if isinstance(query, str)
                          else ", ".join(
                              f"{a.relation}({', '.join(map(str, a.terms))})"
                              for a in query.atoms),
                          schema=schema_to_dict(schema))
            for schema, query in corpus()
        ]

    def test_concurrent_mixed_fingerprints_match_sequential(self):
        requests = self._requests()
        serial = [
            normalized(SessionPool(pool_size=1).process(r).to_dict())
            for r in requests
        ]
        pool = SessionPool(pool_size=2)

        def work(index):
            # Each thread walks the mixed-fingerprint list from its own
            # offset, so different fingerprints collide at every step.
            ordered = requests[index:] + requests[:index]
            return {
                id(request): normalized(pool.process(request).to_dict())
                for request in ordered
            }

        expected = {
            id(request): serial[i] for i, request in enumerate(requests)
        }
        for result in hammer(THREADS, work):
            assert result == expected

    def test_pool_under_eviction_pressure_stays_correct(self):
        requests = self._requests()
        serial = [
            normalized(SessionPool(pool_size=1).process(r).to_dict())
            for r in requests
        ]
        # Fewer live fingerprints than distinct schemas: constant
        # eviction and recompilation under concurrency.
        pool = SessionPool(pool_size=1, max_fingerprints=2)

        def work(index):
            ordered = requests[index:] + requests[:index]
            return [
                normalized(pool.process(request).to_dict())
                for request in ordered
            ]

        expected = {
            normalized(SessionPool(pool_size=1).process(r).to_dict())
            for r in requests
        }
        assert set(serial) == expected
        for result in hammer(THREADS, work):
            assert set(result) == expected
        assert pool.stats()["counters"]["evictions"] > 0


@pytest.mark.slow
class TestRandomizedSweep:
    def test_random_id_schemas_concurrent_equals_sequential(self):
        rng = random.Random(2026)
        for __ in range(40):
            seed = rng.randrange(10_000)
            workload = random_id_workload(seed)
            query = ", ".join(
                f"{a.relation}({', '.join(map(str, a.terms))})"
                for a in workload.query.atoms
            )
            compiled = compile_schema(workload.schema)
            baseline = normalized(
                Session(compiled).decide(query).to_dict()
            )
            shared = Session(compiled)
            results = hammer(
                THREADS,
                lambda i: normalized(shared.decide(query).to_dict()),
            )
            assert set(results) == {baseline}, f"seed {seed} diverged"

    def test_random_mixed_pool_traffic_sweep(self):
        rng = random.Random(4091)
        workloads = [random_id_workload(rng.randrange(10_000))
                     for __ in range(12)]
        requests = [
            DecideRequest(
                query=", ".join(
                    f"{a.relation}({', '.join(map(str, a.terms))})"
                    for a in w.query.atoms
                ),
                schema=schema_to_dict(w.schema),
            )
            for w in workloads
        ]
        serial = {
            id(r): normalized(SessionPool(pool_size=1).process(r).to_dict())
            for r in requests
        }
        pool = SessionPool(pool_size=3, max_fingerprints=6)

        def work(index):
            local = random.Random(index)
            mine = local.sample(requests, len(requests)) * 3
            return all(
                normalized(pool.process(r).to_dict()) == serial[id(r)]
                for r in mine
            )

        assert all(hammer(THREADS, work))
