"""Schema JSON round-trips: `schema_from_dict(schema_to_dict(s)) ≡ s`.

Covers every paper workload in `repro.workloads.paperschemas` plus the
generator families, checking relations, attributes, methods (inputs and
bounds), and constraints — including named constraints, whose ``[name]``
label `schema_to_dict` emits and `parse_constraint` reads back.
"""

import pytest

from repro.io import parse_constraint, schema_from_dict, schema_to_dict
from repro.workloads import (
    example_6_1_schema,
    example_8_1_story,
    fd_determinacy_workload,
    id_width_workload,
    lookup_chain_workload,
    tgd_transfer_workload,
    uid_fd_workload,
    university_schema,
)

PAPER_SCHEMAS = [
    ("university-plain", lambda: university_schema()),
    ("university-unbounded", lambda: university_schema(ud_bound=None)),
    (
        "university-full",
        lambda: university_schema(
            ud_bound=100, with_ud2=True, with_fd=True
        ),
    ),
    ("example-6-1", example_6_1_schema),
    ("example-8-1", lambda: example_8_1_story().schema),
]

GENERATED_SCHEMAS = [
    ("lookup-chain", lambda: lookup_chain_workload(3, dump_bound=7).schema),
    ("id-width", lambda: id_width_workload(3).schema),
    ("fd-determinacy", lambda: fd_determinacy_workload(3).schema),
    ("uid-fd", lambda: uid_fd_workload(3).schema),
    ("tgd-transfer", lambda: tgd_transfer_workload(3).schema),
]


def assert_schemas_equivalent(original, rebuilt):
    assert {r.name: r.arity for r in rebuilt.relations} == {
        r.name: r.arity for r in original.relations
    }
    assert {r.name: r.attributes for r in rebuilt.relations} == {
        r.name: r.attributes for r in original.relations
    }
    original_methods = {m.name: m for m in original.methods}
    rebuilt_methods = {m.name: m for m in rebuilt.methods}
    assert rebuilt_methods.keys() == original_methods.keys()
    for name, method in original_methods.items():
        other = rebuilt_methods[name]
        assert other.relation.name == method.relation.name
        assert other.input_positions == method.input_positions
        assert other.result_bound == method.result_bound
        assert other.result_lower_bound == method.result_lower_bound
    assert sorted(repr(c) for c in rebuilt.constraints) == sorted(
        repr(c) for c in original.constraints
    )


@pytest.mark.parametrize(
    "label,build",
    PAPER_SCHEMAS + GENERATED_SCHEMAS,
    ids=[c[0] for c in PAPER_SCHEMAS + GENERATED_SCHEMAS],
)
def test_round_trip(label, build):
    schema = build()
    rebuilt = schema_from_dict(schema_to_dict(schema))
    assert_schemas_equivalent(schema, rebuilt)


@pytest.mark.parametrize(
    "label,build",
    PAPER_SCHEMAS + GENERATED_SCHEMAS,
    ids=[c[0] for c in PAPER_SCHEMAS + GENERATED_SCHEMAS],
)
def test_dict_form_is_a_fixpoint(label, build):
    description = schema_to_dict(build())
    assert schema_to_dict(schema_from_dict(description)) == description


@pytest.mark.parametrize(
    "label,build",
    PAPER_SCHEMAS + GENERATED_SCHEMAS,
    ids=[c[0] for c in PAPER_SCHEMAS + GENERATED_SCHEMAS],
)
def test_fingerprint_survives_round_trip(label, build):
    from repro.service import schema_fingerprint

    schema = build()
    rebuilt = schema_from_dict(schema_to_dict(schema))
    assert schema_fingerprint(rebuilt) == schema_fingerprint(schema)


class TestParseConstraint:
    def test_named_tgd(self):
        parsed = parse_constraint(
            "[tau] Prof(i, n, s) -> exists a, p. Udirectory(i, a, p)"
        )
        assert parsed.name == "tau"
        assert repr(parsed) == (
            "[tau] Prof(i, n, s) -> exists a, p. Udirectory(i, a, p)"
        )

    def test_named_fd(self):
        parsed = parse_constraint("[phi] Udirectory: 1 -> 2")
        assert parsed.name == "phi"
        assert parsed.relation == "Udirectory"
        assert parsed.determiner == frozenset({0})
        assert parsed.determined == 1

    def test_unterminated_label_rejected(self):
        from repro.io import SchemaFormatError

        with pytest.raises(SchemaFormatError):
            parse_constraint("[oops R(x) -> S(x)")


class TestReadyFrame:
    """The worker readiness handshake: one JSON line on stdout that
    supervisors and the fleet dispatcher parse for ephemeral ports."""

    def test_roundtrip(self):
        from repro.io import ReadyFrame

        frame = ReadyFrame(
            host="127.0.0.1", port=8765, pid=42, role="fleet",
            workers=4, warmed=3,
        )
        import json as jsonlib

        line = jsonlib.dumps(frame.to_dict())
        parsed = ReadyFrame.from_line(line)
        assert parsed == frame

    def test_defaults_omit_optional_fields(self):
        from repro.io import ReadyFrame

        payload = ReadyFrame(host="h", port=1, pid=2).to_dict()
        assert "workers" not in payload["ready"]
        assert payload["ready"]["role"] == "serve"

    def test_from_line_ignores_non_ready_output(self):
        from repro.io import ReadyFrame

        assert ReadyFrame.from_line("") is None
        assert ReadyFrame.from_line("serving on 127.0.0.1:80") is None
        assert ReadyFrame.from_line('{"op": "pong"}') is None
        assert ReadyFrame.from_line('{"ready": "not-an-object"}') is None


class TestWarmManifest:
    """``--warm`` manifests: schema paths or inline schema objects."""

    def test_inline_schemas_and_bare_array(self, tmp_path):
        import json as jsonlib

        from repro.io import load_warm_manifest

        inline = {
            "relations": {"R": 1},
            "methods": [{"name": "dump", "relation": "R", "inputs": []}],
        }
        nested = tmp_path / "manifest.json"
        nested.write_text(jsonlib.dumps({"schemas": [inline]}))
        bare = tmp_path / "bare.json"
        bare.write_text(jsonlib.dumps([inline]))
        assert load_warm_manifest(str(nested)) == [inline]
        assert load_warm_manifest(str(bare)) == [inline]

    def test_path_entries_resolve_relative_to_the_manifest(self, tmp_path):
        import json as jsonlib

        from repro.io import load_warm_manifest

        schema = {
            "relations": {"R": 1},
            "methods": [{"name": "dump", "relation": "R", "inputs": []}],
        }
        (tmp_path / "schema.json").write_text(jsonlib.dumps(schema))
        manifest = tmp_path / "manifest.json"
        manifest.write_text(jsonlib.dumps({"schemas": ["schema.json"]}))
        [loaded] = load_warm_manifest(str(manifest))
        assert loaded["relations"] == {"R": 1}

    def test_malformed_manifests_are_rejected_eagerly(self, tmp_path):
        import json as jsonlib

        from repro.io import SchemaFormatError, load_warm_manifest

        bad_shape = tmp_path / "bad.json"
        bad_shape.write_text(jsonlib.dumps({"not-schemas": []}))
        with pytest.raises(SchemaFormatError):
            load_warm_manifest(str(bad_shape))
        bad_schema = tmp_path / "worse.json"
        bad_schema.write_text(
            jsonlib.dumps({"schemas": [{"relations": "nope"}]})
        )
        with pytest.raises(SchemaFormatError):
            load_warm_manifest(str(bad_schema))
