"""Tests for structural analysis: position graphs, semi-width, classes."""

from repro.constraints import (
    ConstraintClass,
    classify,
    fd,
    has_acyclic_position_graph,
    inclusion_dependency,
    is_weakly_acyclic,
    position_graph,
    semi_width,
    tgd,
)


class TestPositionGraph:
    def test_edges_follow_exported_variables(self):
        rule = tgd("R(x, y) -> S(y, z)")
        graph = position_graph([rule])
        assert graph.has_edge(("R", 1), ("S", 0))
        assert not graph.has_edge(("R", 0), ("S", 0))

    def test_acyclicity(self):
        chain = [tgd("R(x, y) -> S(y, z)"), tgd("S(x, y) -> T(x, y)")]
        assert has_acyclic_position_graph(chain)
        # A single shift R(x,y)->R(y,z) only has the edge (R,1)->(R,0),
        # which is acyclic; a swap creates a genuine 2-cycle.
        shift = [tgd("R(x, y) -> R(y, z)")]
        assert has_acyclic_position_graph(shift)
        swap = [tgd("R(x, y) -> R(y, x)")]
        assert not has_acyclic_position_graph(swap)


class TestWeakAcyclicity:
    def test_full_tgds_weakly_acyclic(self):
        assert is_weakly_acyclic([tgd("R(x, y) -> S(y, x)")])

    def test_self_feeding_existential_not(self):
        assert not is_weakly_acyclic([tgd("R(x, y) -> R(y, z)")])

    def test_existential_into_other_relation_ok(self):
        assert is_weakly_acyclic([tgd("R(x, y) -> S(y, z)")])


class TestSemiWidth:
    def test_pure_acyclic_has_semi_width_zero(self):
        rules = [tgd("R(x, y) -> S(y, z)"), tgd("S(x, y) -> T(x, y)")]
        assert semi_width(rules) == 0

    def test_cyclic_width_counts(self):
        rules = [tgd("R(x, y) -> R(y, x)")]  # swap: cyclic, width 2
        assert semi_width(rules) == 2

    def test_shift_is_acyclic(self):
        rules = [tgd("R(x, y) -> R(y, z)")]  # acyclic position graph
        assert semi_width(rules) == 0

    def test_mixed(self):
        rules = [
            # Two shifts that close a position cycle, each width 1.
            tgd("R(x, y) -> R(y, z)"),
            tgd("R(x, y) -> R(w, x)"),
            # Wide but acyclic rule.
            tgd("R(x, y) -> S(x, y, w)"),
        ]
        assert semi_width(rules) == 1


class TestClassification:
    def test_empty(self):
        assert classify([]).fragment is ConstraintClass.NONE

    def test_fds_only(self):
        assert classify([fd("R", [0], 1)]).fragment is ConstraintClass.FDS

    def test_bounded_width_ids(self):
        rules = [inclusion_dependency("R", (0,), "S", (0,), 2, 2)]
        assert classify(rules).fragment is ConstraintClass.BOUNDED_WIDTH_IDS

    def test_wide_ids(self):
        rules = [inclusion_dependency("R", (0, 1, 2), "S", (0, 1, 2), 3, 3)]
        assert (
            classify(rules, width_bound=2).fragment is ConstraintClass.IDS
        )

    def test_uids_and_fds(self):
        rules = [
            inclusion_dependency("R", (0,), "S", (0,), 2, 2),
            fd("R", [0], 1),
        ]
        assert classify(rules).fragment is ConstraintClass.UIDS_AND_FDS

    def test_full_tgds(self):
        assert (
            classify([tgd("R(x), S(x) -> T(x)")]).fragment
            is ConstraintClass.FULL_TGDS
        )

    def test_frontier_guarded(self):
        rules = [tgd("R(x, z), S(z, y) -> T(x, w)")]
        assert classify(rules).fragment is ConstraintClass.FRONTIER_GUARDED_TGDS

    def test_arbitrary_tgds(self):
        rules = [tgd("R(x), S(y) -> T(x, y, w)")]
        assert classify(rules).fragment is ConstraintClass.EQUALITY_FREE

    def test_guarded(self):
        rules = [tgd("R(x, y), S(x) -> T(x, y, w)")]
        assert classify(rules).fragment is ConstraintClass.GUARDED_TGDS
