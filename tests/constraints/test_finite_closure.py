"""Tests for the finite closure of UIDs + FDs (CKV cycle rule, Thm 7.4)."""

from repro.constraints import (
    FunctionalDependency,
    fd,
    finite_closure,
    inclusion_dependency,
)
from repro.data import Instance
from repro.logic import ground_atom


def emp_mgr_case():
    """The classic example: R(emp, mgr) with R[emp] ⊆ R[mgr] (every
    employee is a manager) and the unary FD emp → mgr.

    Cardinalities squeeze in finite models: |emp-vals| ≤ |mgr-vals| from
    the UID and |mgr-vals| ≤ |emp-vals| from the FD, so both reverse.
    """
    uid = inclusion_dependency("R", (0,), "R", (1,), 2, 2)
    dependency = fd("R", [0], 1)
    return [uid], [dependency], {"R": 2}


class TestCycleRule:
    def test_reversal_inferred(self):
        uids, fds, arities = emp_mgr_case()
        closure = finite_closure(uids, fds, arities)
        # Reverse UID R[mgr] ⊆ R[emp]:
        assert ((("R", 1), ("R", 0))) in closure.uids
        # Reverse FD mgr -> emp:
        assert fd("R", [1], 0) in closure.fds

    def test_reversal_semantically_valid_on_finite_instances(self):
        """Every finite instance satisfying the premises satisfies the
        inferred dependencies (spot-check on generated instances)."""
        uids, fds, arities = emp_mgr_case()
        closure = finite_closure(uids, fds, arities)
        reverse_uid = next(
            u
            for u in closure.uid_tgds(arities)
            if u.body[0].relation == "R"
        )
        # A finite model: everyone managed in a cycle.
        cycle = Instance(
            [ground_atom("R", i, (i + 1) % 4) for i in range(4)]
        )
        assert uids[0].satisfied_by(cycle)
        assert fds[0].satisfied_by(cycle)
        for tgds in closure.uid_tgds(arities):
            assert tgds.satisfied_by(cycle)
        for dependency in closure.fds:
            assert dependency.satisfied_by(cycle)

    def test_premise_violating_instance_exists(self):
        """Sanity: the reversed UID does NOT follow unrestrictedly — an
        infinite-model-style counterexample truncated to finite violates
        the premises, not the logic (the chain 0→1→2 breaks the UID)."""
        uids, fds, __ = emp_mgr_case()
        chain = Instance(
            [ground_atom("R", 0, 1), ground_atom("R", 1, 2)]
        )
        assert not uids[0].satisfied_by(chain)  # 2 is not an employee

    def test_no_cycle_no_inference(self):
        # UID mgr ⊆ emp with FD emp → mgr: inequalities point the same
        # way, no squeeze, nothing inferred.
        uid = inclusion_dependency("R", (1,), "R", (0,), 2, 2)
        dependency = fd("R", [0], 1)
        closure = finite_closure([uid], [dependency], {"R": 2})
        assert ((("R", 0), ("R", 1))) not in closure.uids
        assert fd("R", [1], 0) not in closure.fds
        # Witness: the counterexample from the analysis.
        witness = Instance(
            [ground_atom("R", "e1", "m"), ground_atom("R", "m", "m")]
        )
        assert uid.satisfied_by(witness)
        assert dependency.satisfied_by(witness)
        reverse = inclusion_dependency("R", (0,), "R", (1,), 2, 2)
        assert not reverse.satisfied_by(witness)

    def test_two_relation_cycle(self):
        # A[0] ⊆ B[0], FD in B: 0 -> 1, B[1] ⊆ A[0], FD in A: trivial...
        # build a 2-step inequality cycle: A[0]⊆B[0] and FD B:0->... use
        # UID B[0] ⊆ A[0] to close directly.
        uids = [
            inclusion_dependency("A", (0,), "B", (0,), 1, 2),
            inclusion_dependency("B", (0,), "A", (0,), 2, 1),
        ]
        closure = finite_closure(uids, [], {"A": 1, "B": 2})
        # Pure UID 2-cycle: already closed, nothing new to add beyond
        # transitivity; check it does not crash and keeps both.
        assert ((("A", 0), ("B", 0))) in closure.uids
        assert ((("B", 0), ("A", 0))) in closure.uids

    def test_input_fds_preserved(self):
        uids, fds, arities = emp_mgr_case()
        closure = finite_closure(uids, fds, arities)
        assert fds[0] in closure.fds
