"""Tests for TGDs and their syntactic classes."""

import pytest

from repro.constraints import TGD, id_profile, inclusion_dependency, tgd
from repro.data import Instance
from repro.logic import Variable, atom, ground_atom


class TestParsingAndStructure:
    def test_exported_variables(self):
        rule = tgd("R(x, y) -> S(y, z)")
        assert rule.exported_variables() == (Variable("y"),)
        assert rule.existential_variables() == (Variable("z"),)
        assert rule.width == 1

    def test_full(self):
        assert tgd("R(x, y) -> S(y, x)").is_full()
        assert not tgd("R(x) -> S(x, z)").is_full()

    def test_linear(self):
        assert tgd("R(x) -> S(x)").is_linear()
        assert not tgd("R(x), T(x) -> S(x)").is_linear()

    def test_guarded(self):
        assert tgd("R(x, y), S(x) -> T(y)").is_guarded()
        assert not tgd("R(x), S(y) -> T(x, y)").is_guarded()

    def test_frontier_guarded(self):
        # Not guarded (no atom has both x and y) but frontier {x} is.
        rule = tgd("R(x, z), S(z, y) -> T(x)")
        assert not rule.is_guarded()
        assert rule.is_frontier_guarded()

    def test_inclusion_dependency_detection(self):
        assert tgd("R(x, y) -> S(y, z)").is_inclusion_dependency()
        assert not tgd("R(x, x) -> S(x)").is_inclusion_dependency()
        assert not tgd("R(x, y), T(x) -> S(x)").is_inclusion_dependency()
        assert tgd("R(x, y) -> S(y, z)").width == 1
        assert tgd("R(x, y) -> S(y, x)").width == 2

    def test_uid(self):
        assert tgd("R(x, y) -> S(y, z)").is_unary_inclusion_dependency()
        assert not tgd("R(x, y) -> S(y, x)").is_unary_inclusion_dependency()

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            TGD((), (atom("R", "x"),))


class TestSemantics:
    def test_satisfied(self):
        rule = tgd("R(x) -> S(x)")
        good = Instance([ground_atom("R", 1), ground_atom("S", 1)])
        bad = Instance([ground_atom("R", 1)])
        assert rule.satisfied_by(good)
        assert not rule.satisfied_by(bad)

    def test_existential_satisfaction(self):
        rule = tgd("R(x) -> S(x, z)")
        good = Instance([ground_atom("R", 1), ground_atom("S", 1, 99)])
        assert rule.satisfied_by(good)

    def test_active_trigger(self):
        rule = tgd("R(x) -> S(x)")
        inst = Instance([ground_atom("R", 1), ground_atom("R", 2),
                         ground_atom("S", 1)])
        active = [
            t for t in rule.triggers(inst)
            if rule.is_active_trigger(t, inst)
        ]
        assert len(active) == 1


class TestInclusionDependencyBuilder:
    def test_round_trip(self):
        rule = inclusion_dependency("R", (0, 2), "S", (1, 0), 3, 2)
        assert rule.is_inclusion_dependency()
        assert rule.width == 2
        assert id_profile(rule) == ("R", (0, 2), "S", (1, 0))

    def test_semantics(self):
        # R[0] ⊆ S[1]
        rule = inclusion_dependency("R", (0,), "S", (1,), 2, 2)
        good = Instance([ground_atom("R", "a", "b"), ground_atom("S", "x", "a")])
        bad = Instance([ground_atom("R", "a", "b"), ground_atom("S", "a", "x")])
        assert rule.satisfied_by(good)
        assert not rule.satisfied_by(bad)

    def test_validation(self):
        with pytest.raises(ValueError):
            inclusion_dependency("R", (0, 0), "S", (0, 1), 2, 2)
        with pytest.raises(ValueError):
            inclusion_dependency("R", (0,), "S", (5,), 2, 2)

    def test_id_profile_rejects_non_id(self):
        with pytest.raises(ValueError):
            id_profile(tgd("R(x), S(x) -> T(x)"))
