"""Tests for UID implication closure (Cosmadakis–Kanellakis–Vardi)."""

from repro.constraints import (
    inclusion_dependency,
    uid_as_positions,
    uid_closure,
    uid_closure_tgds,
)
from repro.constraints.implication import implies_uid


class TestUIDClosure:
    def test_transitivity(self):
        uids = {
            (("R", 0), ("S", 0)),
            (("S", 0), ("T", 1)),
        }
        closed = uid_closure(uids)
        assert (("R", 0), ("T", 1)) in closed

    def test_no_reflexive_output(self):
        uids = {(("R", 0), ("S", 0)), (("S", 0), ("R", 0))}
        closed = uid_closure(uids)
        assert (("R", 0), ("R", 0)) not in closed
        assert (("R", 0), ("S", 0)) in closed

    def test_long_chain(self):
        uids = {((f"R{i}", 0), (f"R{i+1}", 0)) for i in range(10)}
        closed = uid_closure(uids)
        assert (("R0", 0), ("R10", 0)) in closed
        assert (("R10", 0), ("R0", 0)) not in closed

    def test_implies(self):
        uids = [(("R", 0), ("S", 0)), (("S", 0), ("T", 0))]
        assert implies_uid(uids, (("R", 0), ("T", 0)))
        assert implies_uid(uids, (("R", 0), ("R", 0)))  # trivial
        assert not implies_uid(uids, (("T", 0), ("R", 0)))


class TestTGDRoundTrip:
    def test_positions_roundtrip(self):
        uid = inclusion_dependency("R", (1,), "S", (0,), 2, 2)
        assert uid_as_positions(uid) == (("R", 1), ("S", 0))

    def test_closure_tgds(self):
        uids = [
            inclusion_dependency("R", (0,), "S", (0,), 1, 1),
            inclusion_dependency("S", (0,), "T", (0,), 1, 1),
        ]
        closed = uid_closure_tgds(uids, {"R": 1, "S": 1, "T": 1})
        profiles = {uid_as_positions(u) for u in closed}
        assert (("R", 0), ("T", 0)) in profiles
        assert len(profiles) == 3
