"""Tests for FDs, FD implication, and DetBy."""

import pytest

from repro.constraints import (
    FunctionalDependency,
    det_by,
    fd,
    fd_closure,
    implied_unary_fds,
    implies_fd,
    minimal_keys,
    parse_fd,
)
from repro.data import Instance
from repro.logic import ground_atom


class TestFDSemantics:
    def test_satisfied(self):
        dependency = fd("R", [0], 1)
        good = Instance([ground_atom("R", 1, "a"), ground_atom("R", 2, "a")])
        bad = Instance([ground_atom("R", 1, "a"), ground_atom("R", 1, "b")])
        assert dependency.satisfied_by(good)
        assert not dependency.satisfied_by(bad)

    def test_composite_determiner(self):
        dependency = fd("R", [0, 1], 2)
        good = Instance(
            [ground_atom("R", 1, 2, "x"), ground_atom("R", 1, 3, "y")]
        )
        assert dependency.satisfied_by(good)
        bad = Instance(
            [ground_atom("R", 1, 2, "x"), ground_atom("R", 1, 2, "y")]
        )
        assert not dependency.satisfied_by(bad)

    def test_trivial(self):
        assert fd("R", [0, 1], 0).is_trivial()
        assert not fd("R", [0], 1).is_trivial()

    def test_parse_one_based(self):
        dependency = parse_fd("R: 1, 2 -> 3")
        assert dependency == fd("R", [0, 1], 2)

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            parse_fd("R 1 -> 2")
        with pytest.raises(ValueError):
            parse_fd("R: 0 -> 1")


class TestImplication:
    def test_closure_transitive(self):
        fds = [fd("R", [0], 1), fd("R", [1], 2)]
        assert fd_closure([0], fds, "R") == frozenset({0, 1, 2})

    def test_closure_respects_relation(self):
        fds = [fd("S", [0], 1)]
        assert fd_closure([0], fds, "R") == frozenset({0})

    def test_implies(self):
        fds = [fd("R", [0], 1), fd("R", [1], 2)]
        assert implies_fd(fds, fd("R", [0], 2))
        assert not implies_fd(fds, fd("R", [2], 0))

    def test_det_by_includes_input(self):
        assert det_by([], "R", [0, 2]) == frozenset({0, 2})

    def test_det_by_example_1_5(self):
        # Udirectory(id, addr, phone) with id -> addr: DetBy({id}) = {id, addr}.
        phi = fd("Udirectory", [0], 1)
        assert det_by([phi], "Udirectory", [0]) == frozenset({0, 1})

    def test_implied_unary(self):
        fds = [fd("R", [0], 1), fd("R", [1], 2)]
        unary = set(implied_unary_fds(fds, "R", 3))
        assert fd("R", [0], 2) in unary
        assert fd("R", [0], 1) in unary
        assert fd("R", [2], 0) not in unary

    def test_minimal_keys(self):
        fds = [fd("R", [0], 1), fd("R", [0], 2)]
        assert minimal_keys(fds, "R", 3) == [frozenset({0})]
        # No FDs: the only key is all positions.
        assert minimal_keys([], "R", 2) == [frozenset({0, 1})]
