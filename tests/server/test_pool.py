"""Unit tests for the per-fingerprint `SessionPool`."""

import pytest

from repro.io import DecideRequest, schema_from_dict
from repro.server import SessionLimits, SessionPool
from repro.service import compile_schema
from repro.workloads import lookup_chain_workload, university_schema

UNIVERSITY = {
    "relations": {"Prof": 3, "Udirectory": 3},
    "methods": [
        {"name": "pr", "relation": "Prof", "inputs": [1]},
        {
            "name": "ud",
            "relation": "Udirectory",
            "inputs": [],
            "result_bound": 100,
        },
    ],
    "constraints": ["Prof(i,n,s) -> Udirectory(i,a,p)"],
}


def reordered(description: dict) -> dict:
    """The same schema, spelled differently (methods reversed)."""
    spelled = dict(description)
    spelled["methods"] = list(reversed(description["methods"]))
    return spelled


class TestRouting:
    def test_default_schema_serves_schemaless_requests(self):
        pool = SessionPool(university_schema(ud_bound=100))
        response = pool.process(DecideRequest(query="Udirectory(i,a,p)"))
        assert response.is_yes

    def test_no_default_and_no_schema_is_an_error(self):
        pool = SessionPool()
        with pytest.raises(ValueError, match="no default"):
            pool.process(DecideRequest(query="R(x)"))

    def test_same_spelling_shares_a_session(self):
        pool = SessionPool()
        first = pool.session(UNIVERSITY)
        second = pool.session(UNIVERSITY)
        assert first.compiled is second.compiled
        assert pool.stats()["counters"]["schemas_compiled"] == 1
        assert pool.stats()["counters"]["text_key_hits"] == 1

    def test_reordered_spelling_shares_the_compiled_schema(self):
        pool = SessionPool(pool_size=1)
        first = pool.session(UNIVERSITY)
        second = pool.session(reordered(UNIVERSITY))
        # Different spelling, same content fingerprint: recompiled once
        # to discover the fingerprint, then routed to the same entry.
        assert first.compiled is second.compiled
        assert first is second
        assert len(pool.fingerprints()) == 1

    def test_inline_spelling_of_the_default_routes_to_it(self):
        pool = SessionPool(schema_from_dict(UNIVERSITY), pool_size=1)
        session = pool.session(UNIVERSITY)
        assert session is pool.session(None)
        # The default is pinned, not an LRU entry.
        stats = pool.stats()
        assert stats["fingerprints"] == 1

    def test_inline_default_spelling_is_cached_after_first_sight(self):
        pool = SessionPool(schema_from_dict(UNIVERSITY), pool_size=1)
        pool.session(UNIVERSITY)  # learns the spelling
        compiled_before = pool.stats()["counters"]["schemas_compiled"]
        for __ in range(3):
            assert pool.session(UNIVERSITY) is pool.session(None)
        stats = pool.stats()["counters"]
        # The hot path: no re-parse/re-fingerprint per request.
        assert stats["schemas_compiled"] == compiled_before
        assert stats["text_key_hits"] >= 3

    def test_text_key_map_is_bounded(self):
        pool = SessionPool(pool_size=1, max_fingerprints=2)
        # Many distinct spellings of one hot fingerprint: constraints
        # reordered (json.dumps sorts dict keys, not list items).
        base = {
            "relations": {"R": 1, "S": 1},
            "methods": [{"name": "m", "relation": "R", "inputs": []}],
            "constraints": ["R(x) -> S(x)", "S(x) -> R(x)"],
        }
        flipped = dict(base)
        flipped["constraints"] = list(reversed(base["constraints"]))
        for spelling in (base, flipped):
            pool.session(spelling)
        assert len(pool.fingerprints()) == 1
        assert len(pool._text_keys) <= pool._max_text_keys

    def test_compiled_schema_accepted_directly(self):
        compiled = compile_schema(schema_from_dict(UNIVERSITY))
        pool = SessionPool()
        assert pool.session(compiled).compiled is compiled


class TestPooling:
    def test_round_robin_grows_to_pool_size_then_cycles(self):
        pool = SessionPool(pool_size=3)
        sessions = [pool.session(UNIVERSITY) for __ in range(7)]
        distinct = {id(s) for s in sessions}
        assert len(distinct) == 3
        # All share the one compiled schema (and thus matcher/engine).
        assert len({id(s.compiled) for s in sessions}) == 1
        assert pool.stats()["counters"]["sessions_created"] == 3

    def test_pool_size_one_is_a_single_session(self):
        pool = SessionPool(pool_size=1)
        assert pool.session(UNIVERSITY) is pool.session(UNIVERSITY)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            SessionPool(pool_size=0)
        with pytest.raises(ValueError):
            SessionPool(max_fingerprints=0)


class TestEviction:
    def _schemas(self, count: int):
        return [
            {
                "relations": {f"R{i}": 1},
                "methods": [
                    {"name": f"m{i}", "relation": f"R{i}", "inputs": []}
                ],
            }
            for i in range(count)
        ]

    def test_lru_evicts_the_coldest_fingerprint(self):
        pool = SessionPool(max_fingerprints=2, pool_size=1)
        a, b, c = self._schemas(3)
        pool.session(a)
        pool.session(b)
        pool.session(a)  # refresh a: b is now coldest
        pool.session(c)  # evicts b
        fingerprints = pool.fingerprints()
        assert len(fingerprints) == 2
        assert pool.stats()["counters"]["evictions"] == 1
        # b returns: recompiled (its text key was dropped with it).
        compiled_before = pool.stats()["counters"]["schemas_compiled"]
        pool.session(b)
        assert (
            pool.stats()["counters"]["schemas_compiled"]
            == compiled_before + 1
        )

    def test_default_is_never_evicted(self):
        pool = SessionPool(
            university_schema(ud_bound=100),
            max_fingerprints=1,
            pool_size=1,
        )
        for description in self._schemas(3):
            pool.session(description)
        response = pool.process(DecideRequest(query="Udirectory(i,a,p)"))
        assert response.is_yes


class TestProcess:
    def test_decide_and_plan_and_id_stamping(self):
        pool = SessionPool(university_schema(ud_bound=100))
        decided = pool.process(
            DecideRequest(query="Udirectory(i,a,p)", id=7)
        )
        assert decided.is_yes and decided.id == 7
        planned = pool.process(
            DecideRequest(query="Udirectory(i,a,p)", op="plan", id="p")
        )
        assert planned.answerable and planned.id == "p"
        assert "<= ud <=" in planned.plan

    def test_cached_response_does_not_leak_ids(self):
        pool = SessionPool(university_schema(ud_bound=100), pool_size=1)
        pool.process(DecideRequest(query="Udirectory(i,a,p)", id="one"))
        again = pool.process(DecideRequest(query="Udirectory(x,y,z)"))
        assert again.cached is True
        assert again.id is None

    def test_non_session_ops_are_rejected(self):
        pool = SessionPool(university_schema(ud_bound=100))
        with pytest.raises(ValueError, match="not a session operation"):
            pool.process(DecideRequest(op="stats"))

    def test_limits_reach_the_sessions(self):
        pool = SessionPool(
            university_schema(ud_bound=100),
            limits=SessionLimits(max_disjuncts=1),
        )
        response = pool.process(DecideRequest(query="Udirectory(i,a,p)"))
        assert response.is_unknown
        assert response.error["type"] == "RewritingBudgetExceeded"

    def test_budget_for_takes_the_tighter_deadline(self):
        schema = university_schema(ud_bound=100)
        unbounded = SessionPool(schema)
        assert unbounded.budget_for(DecideRequest(query="Q()")) is None
        assert (
            unbounded.budget_for(
                DecideRequest(query="Q()", deadline_ms=40.0)
            ).deadline_ms
            == 40.0
        )
        capped = SessionPool(
            schema, limits=SessionLimits(deadline_ms=25.0)
        )
        assert (
            capped.budget_for(DecideRequest(query="Q()")).deadline_ms
            == 25.0
        )
        # min(request, pool) wins in both directions.
        assert (
            capped.budget_for(
                DecideRequest(query="Q()", deadline_ms=10.0)
            ).deadline_ms
            == 10.0
        )
        assert (
            capped.budget_for(
                DecideRequest(query="Q()", deadline_ms=60_000.0)
            ).deadline_ms
            == 25.0
        )
        assert capped.stats()["limits"]["deadline_ms"] == 25.0

    def test_subsumption_opt_out_reaches_the_engine(self):
        chain = lookup_chain_workload(3).schema
        on = SessionPool(chain, limits=SessionLimits(subsumption=True))
        off = SessionPool(chain, limits=SessionLimits(subsumption=False))
        query = "L0(x, y)"
        assert (
            on.process(DecideRequest(query=query)).decision
            == off.process(DecideRequest(query=query)).decision
        )
        assert on.session(None).subsumption is True
        assert off.session(None).subsumption is False


class TestStats:
    def test_aggregation_shape_and_counts(self):
        pool = SessionPool(
            university_schema(ud_bound=100), pool_size=2
        )
        for __ in range(4):
            pool.process(DecideRequest(query="Udirectory(i,a,p)"))
        stats = pool.stats()
        assert stats["pool_size"] == 2
        assert stats["counters"]["requests"] == 4
        [entry] = stats["sessions"]
        assert entry["requests"] == 4
        assert entry["sessions"] == 2
        cache = entry["cache"]
        # 4 requests over 2 round-robin sessions: each decides once,
        # then hits its own cache.
        assert cache["misses"] == 2
        assert cache["hits"] == 2
        assert entry["rewrite_engine"]["rewrites"] >= 1
        assert entry["matching"]["checks"] >= 1


def schema_dict(arity: int = 2) -> dict:
    """A tiny schema; distinct ``arity`` -> distinct fingerprint."""
    return {
        "relations": {"L0": arity},
        "methods": [{"name": "dump", "relation": "L0", "inputs": []}],
        "constraints": [],
    }


class TestWarm:
    """`warm()` — manifest-driven precompilation (the fleet's
    ``--warm`` path rides on this)."""

    def test_warm_compiles_and_registers_without_a_request(self):
        pool = SessionPool(None)
        schema = schema_dict()
        fingerprint = pool.warm(schema)
        stats = pool.stats()
        assert stats["counters"]["warmed"] == 1
        assert stats["counters"]["schemas_compiled"] == 1
        assert stats["counters"]["sessions_created"] == 1
        assert stats["counters"]["requests"] == 0
        assert stats["per_fingerprint"] == {}  # warmth is not heat
        assert fingerprint in pool.fingerprints()

    def test_first_request_on_a_warmed_schema_compiles_nothing(self):
        pool = SessionPool(None)
        schema = schema_dict()
        fingerprint = pool.warm(schema)
        response = pool.process(
            DecideRequest(query="L0(x, y)", schema=schema)
        )
        assert response.fingerprint == fingerprint
        stats = pool.stats()
        assert stats["counters"]["schemas_compiled"] == 1  # unchanged
        assert stats["counters"]["text_key_hits"] == 1

    def test_rewarming_is_cheap(self):
        pool = SessionPool(None)
        schema = schema_dict()
        assert pool.warm(schema) == pool.warm(schema)
        stats = pool.stats()
        assert stats["counters"]["warmed"] == 2
        assert stats["counters"]["schemas_compiled"] == 1

    def test_warming_none_is_rejected(self):
        pool = SessionPool(university_schema(ud_bound=100))
        with pytest.raises(ValueError):
            pool.warm(None)


class TestShardHeat:
    """`stats()["per_fingerprint"]` — the bounded per-fingerprint
    hit/request breakdown the fleet dispatcher aggregates as shard
    heat."""

    def test_requests_and_cache_hits_per_fingerprint(self):
        pool = SessionPool(
            university_schema(ud_bound=100), pool_size=1
        )
        for __ in range(3):
            pool.process(DecideRequest(query="Udirectory(i,a,p)"))
        heat = pool.stats()["per_fingerprint"]
        [(fingerprint, entry)] = heat.items()
        assert entry["requests"] == 3
        assert entry["cache_hits"] == 2  # first decides, rest hit

    def test_hot_fingerprints_sort_last(self):
        pool = SessionPool(university_schema(ud_bound=100))
        chain = schema_dict()
        pool.process(DecideRequest(query="Udirectory(i,a,p)"))
        pool.process(DecideRequest(query="L0(x, y)", schema=chain))
        pool.process(DecideRequest(query="Udirectory(i,a,p)"))
        heat = pool.stats()["per_fingerprint"]
        assert len(heat) == 2
        hottest = list(heat)[-1]
        assert heat[hottest]["requests"] == 2

    def test_heat_survives_fingerprint_eviction(self):
        pool = SessionPool(None, max_fingerprints=1)
        first = schema_dict()
        second = schema_dict(arity=3)
        pool.process(DecideRequest(query="L0(x, y)", schema=first))
        pool.process(
            DecideRequest(query="L0(x, y, z)", schema=second)
        )
        stats = pool.stats()
        assert stats["counters"]["evictions"] == 1
        assert stats["fingerprints"] == 1
        # the evicted shard's heat is still visible
        assert len(stats["per_fingerprint"]) == 2

    def test_heat_table_is_bounded(self):
        pool = SessionPool(None, max_fingerprints=1)
        for arity in range(2, 14):
            query = "L0(" + ", ".join(f"x{i}" for i in range(arity)) + ")"
            pool.process(
                DecideRequest(query=query, schema=schema_dict(arity=arity))
            )
        heat = pool.stats()["per_fingerprint"]
        assert len(heat) == 8  # 8 * max_fingerprints
