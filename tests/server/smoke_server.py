"""CI smoke: a live server under concurrent mixed-fingerprint load.

Run directly (``PYTHONPATH=src python tests/server/smoke_server.py``):
starts a real `DecideServer` on an ephemeral port, fires 50 concurrent
requests across three schema fingerprints (plus malformed frames and
introspection probes) from 10 concurrent TCP connections, asserts
every response, and shuts the server down cleanly.  Exit code 0 on
success — the CI server-smoke step gates on it.
"""

import asyncio
import json
import sys

from repro.io import schema_to_dict
from repro.server import DecideServer, SessionPool
from repro.workloads import (
    id_chain_workload,
    lookup_chain_workload,
    university_schema,
)

CONNECTIONS = 10
REQUESTS_PER_CONNECTION = 5  # 50 decide requests total


def request_mix():
    """Five requests per connection, spanning three fingerprints."""
    chain = schema_to_dict(lookup_chain_workload(3).schema)
    ids = schema_to_dict(id_chain_workload(4).schema)
    return [
        ({"query": "Udirectory(i,a,p)", "id": "default-yes"}, "yes"),
        ({"query": "Prof(i,n,10000)", "id": "default-no"}, "no"),
        ({"query": "L0(x, y)", "schema": chain, "id": "chain"}, "yes"),
        ({"query": "R0(x)", "schema": ids, "id": "ids"}, "yes"),
        ({"query": "Udirectory(x,y,z)", "id": "alpha"}, "yes"),
    ]


async def drive_connection(host: str, port: int, index: int) -> int:
    reader, writer = await asyncio.open_connection(host, port)
    mix = request_mix()
    # Stagger the order per connection so fingerprints interleave.
    mix = mix[index % len(mix):] + mix[: index % len(mix)]
    frames = [frame for frame, __ in mix]
    frames.append({"op": "ping", "id": "alive"})
    frames.append("not-json")  # must come back structured, not fatal
    for frame in frames:
        text = frame if isinstance(frame, str) else json.dumps(frame)
        writer.write(text.encode("utf-8") + b"\n")
    await writer.drain()
    decided = 0
    for position, expectation in enumerate(
        [decision for __, decision in mix] + ["pong", "error"]
    ):
        line = await asyncio.wait_for(reader.readline(), timeout=60)
        payload = json.loads(line)
        if expectation == "pong":
            assert payload == {"op": "pong", "id": "alive"}, payload
        elif expectation == "error":
            assert payload["error"]["type"] == "JSONDecodeError", payload
        else:
            assert payload["decision"] == expectation, (
                f"connection {index} frame {position}: {payload}"
            )
            decided += 1
    writer.close()
    await writer.wait_closed()
    return decided


async def main() -> int:
    pool = SessionPool(
        university_schema(ud_bound=100), pool_size=2
    )
    server = await DecideServer(pool, port=0, workers=4).start()
    host, port = server.address
    print(f"smoke server on {host}:{port}")
    try:
        decided = await asyncio.gather(
            *(
                drive_connection(host, port, index)
                for index in range(CONNECTIONS)
            )
        )
        total = sum(decided)
        assert total == CONNECTIONS * REQUESTS_PER_CONNECTION, total

        # Introspection: the pool saw all three fingerprints.
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "stats"}\n')
        await writer.drain()
        stats = json.loads(await reader.readline())
        writer.close()
        await writer.wait_closed()
        fingerprints = stats["pool"]["fingerprints"]
        assert fingerprints == 3, stats["pool"]
        assert stats["server"]["errors"] == CONNECTIONS
        assert stats["server"]["connections_open"] == 1  # just us
        print(
            f"ok: {total} decisions over {fingerprints} fingerprints, "
            f"{stats['server']['connections']} connections"
        )
    finally:
        await server.close()
    # Clean shutdown: the listener is gone and the port refuses.
    try:
        await asyncio.open_connection(host, port)
    except OSError:
        print("ok: clean shutdown, listener closed")
        return 0
    print("FAIL: server still accepting after close", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
