"""Tests for the stdlib WSGI adapter (app called directly, no httpd)."""

import io
import json

from repro.server import SessionPool, make_wsgi_app
from repro.workloads import university_schema


def call(app, method="GET", path="/", body=None):
    """Invoke the WSGI app; return (status, payload)."""
    raw = b"" if body is None else json.dumps(body).encode("utf-8")
    environ = {
        "REQUEST_METHOD": method,
        "PATH_INFO": path,
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    chunks = b"".join(app(environ, start_response))
    assert captured["headers"]["Content-Type"] == "application/json"
    assert int(captured["headers"]["Content-Length"]) == len(chunks)
    return captured["status"], json.loads(chunks)


def app():
    return make_wsgi_app(SessionPool(university_schema(ud_bound=100)))


class TestRoutes:
    def test_decide(self):
        status, payload = call(
            app(), "POST", "/decide", {"query": "Udirectory(i,a,p)"}
        )
        assert status == "200 OK"
        assert payload["decision"] == "yes"

    def test_decide_at_root_and_plan_op(self):
        application = app()
        status, payload = call(
            application,
            "POST",
            "/",
            {"op": "plan", "query": "Udirectory(i,a,p)", "id": 3},
        )
        assert status == "200 OK"
        assert payload["answerable"] is True and payload["id"] == 3

    def test_stats_and_healthz(self):
        application = app()
        call(application, "POST", "/", {"query": "Udirectory(i,a,p)"})
        status, payload = call(application, "GET", "/stats")
        assert status == "200 OK"
        assert payload["pool"]["counters"]["requests"] == 1
        status, payload = call(application, "GET", "/healthz")
        assert status == "200 OK" and payload == {"ok": True}

    def test_ping_op(self):
        status, payload = call(
            app(), "POST", "/", {"op": "ping", "id": "x"}
        )
        assert status == "200 OK"
        assert payload == {"op": "pong", "id": "x"}


class TestErrors:
    def test_unknown_route_is_structured_404(self):
        status, payload = call(app(), "GET", "/nope")
        assert status == "404 Not Found"
        assert payload["error"]["type"] == "NotFound"

    def test_malformed_body_is_structured_400(self):
        application = app()
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/",
            "CONTENT_LENGTH": "9",
            "wsgi.input": io.BytesIO(b"not-json!"),
        }
        captured = {}
        body = b"".join(
            application(
                environ,
                lambda s, h: captured.update(status=s),
            )
        )
        assert captured["status"] == "400 Bad Request"
        assert json.loads(body)["error"]["type"] == "JSONDecodeError"

    def test_decision_error_is_structured_400(self):
        status, payload = call(
            app(), "POST", "/", {"query": "Bad((", "id": 9}
        )
        assert status == "400 Bad Request"
        assert payload["error"]["type"] == "ParseError"
        assert payload["id"] == 9

    def test_internal_failure_is_500_not_400(self):
        class ExplodingPool:
            def process(self, request):
                raise RuntimeError("decider blew up")

        application = make_wsgi_app(ExplodingPool())
        status, payload = call(
            application, "POST", "/", {"query": "R(x)", "id": 5}
        )
        assert status == "500 Internal Server Error"
        assert payload["error"]["type"] == "RuntimeError"
        assert payload["id"] == 5

    def test_oversized_body_is_413(self):
        application = app()
        environ = {
            "REQUEST_METHOD": "POST",
            "PATH_INFO": "/",
            "CONTENT_LENGTH": str((1 << 20) + 1),
            "wsgi.input": io.BytesIO(b""),
        }
        captured = {}
        body = b"".join(
            application(environ, lambda s, h: captured.update(status=s))
        )
        assert captured["status"] == "413 Payload Too Large"
        assert json.loads(body)["error"]["type"] == "FrameTooLong"

    def test_wrong_method_is_structured_404(self):
        application = app()
        for method, path in [
            ("GET", "/decide"),
            ("POST", "/healthz"),
            ("POST", "/stats"),
            ("DELETE", "/"),
        ]:
            status, payload = call(application, method, path)
            assert status == "404 Not Found", (method, path)
            assert payload["error"]["type"] == "NotFound"

    def test_agrees_with_tcp_protocol_payloads(self):
        # The WSGI and TCP front ends share SessionPool.process, so
        # their response payloads are identical modulo timing fields.
        pool = SessionPool(university_schema(ud_bound=100), pool_size=1)
        application = make_wsgi_app(pool)
        __, via_wsgi = call(
            application, "POST", "/", {"query": "Udirectory(i,a,p)"}
        )
        from repro.io import DecideRequest

        direct = pool.process(
            DecideRequest(query="Udirectory(a,b,c)")
        ).to_dict()
        for payload in (via_wsgi, direct):
            payload.pop("elapsed_ms", None)
            payload.pop("cached", None)
            payload.pop("query", None)
        assert via_wsgi == direct


def call_with_headers(app, body):
    """Like `call` but also returns the response headers."""
    raw = json.dumps(body).encode("utf-8")
    environ = {
        "REQUEST_METHOD": "POST",
        "PATH_INFO": "/",
        "CONTENT_LENGTH": str(len(raw)),
        "wsgi.input": io.BytesIO(raw),
    }
    captured = {}

    def start_response(status, headers):
        captured["status"] = status
        captured["headers"] = dict(headers)

    chunks = b"".join(app(environ, start_response))
    return captured["status"], captured["headers"], json.loads(chunks)


class TestRetryableErrors:
    """Resource exhaustion maps to 503 + Retry-After, never 4xx/500."""

    def test_deadline_exceeded_is_503_with_retry_after(self):
        from repro.server import SessionLimits
        from repro.workloads import lookup_chain_workload

        pool = SessionPool(
            lookup_chain_workload(6).schema,
            limits=SessionLimits(deadline_ms=5.0),
        )
        application = make_wsgi_app(pool)
        status, headers, payload = call_with_headers(
            application,
            {"query": repr(lookup_chain_workload(6).query), "id": 7},
        )
        assert status == "503 Service Unavailable"
        assert headers["Retry-After"] == "1"  # floor when no hint
        assert payload["error"]["type"] == "DeadlineExceeded"
        assert payload["error"]["retryable"] is True
        assert payload["id"] == 7

    def test_overloaded_hint_rounds_up_to_whole_seconds(self):
        from repro.runtime import Overloaded

        class SheddingPool:
            def process(self, request, **kwargs):
                raise Overloaded("full up", retry_after_ms=1800.0)

        status, headers, payload = call_with_headers(
            make_wsgi_app(SheddingPool()), {"query": "R(x)", "id": 8}
        )
        assert status == "503 Service Unavailable"
        assert headers["Retry-After"] == "2"  # ceil(1800ms)
        assert payload["error"]["type"] == "Overloaded"
        assert payload["error"]["retryable"] is True
        assert payload["error"]["retry_after_ms"] == 1800.0
        assert payload["id"] == 8
