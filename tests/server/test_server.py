"""Integration tests for the asyncio JSON-lines `DecideServer`.

Each test runs a real server on an ephemeral port inside
``asyncio.run`` and talks to it over TCP — the full wire path,
including framing, executor hand-off, backpressure, and error frames.
"""

import asyncio
import json

from repro.server import DecideServer, SessionPool
from repro.workloads import university_schema

INLINE_CHAIN = {
    "relations": {"Dir": 1, "L0": 2},
    "methods": [
        {"name": "dump", "relation": "Dir", "inputs": []},
        {"name": "by_id", "relation": "L0", "inputs": [1]},
    ],
    "constraints": ["L0(x, p) -> Dir(x)"],
}


def run(coroutine):
    return asyncio.run(coroutine)


async def started_server(**kwargs) -> DecideServer:
    pool = kwargs.pop("pool", None)
    if pool is None:
        pool = SessionPool(university_schema(ud_bound=100))
    server = DecideServer(pool, port=0, **kwargs)
    return await server.start()


async def exchange(server: DecideServer, frames: list) -> list:
    """Send all frames on one connection; collect one reply per frame."""
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    for frame in frames:
        text = frame if isinstance(frame, str) else json.dumps(frame)
        writer.write(text.encode("utf-8") + b"\n")
    await writer.drain()
    replies = []
    for __ in frames:
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        replies.append(json.loads(line))
    writer.close()
    await writer.wait_closed()
    return replies


class TestProtocol:
    def test_decide_plan_ping_stats_on_one_connection(self):
        async def scenario():
            server = await started_server()
            try:
                return await exchange(
                    server,
                    [
                        '"Udirectory(i,a,p)"',
                        {"query": "Prof(i,n,10000)", "id": 7},
                        {"op": "plan", "query": "Udirectory(i,a,p)"},
                        {"op": "ping", "id": "p"},
                        {"op": "stats"},
                    ],
                )
            finally:
                await server.close()

        decided, negative, plan, pong, stats = run(scenario())
        assert decided["decision"] == "yes"
        assert negative["decision"] == "no" and negative["id"] == 7
        assert plan["answerable"] is True and "<= ud <=" in plan["plan"]
        assert pong == {"op": "pong", "id": "p"}
        assert stats["op"] == "stats"
        assert stats["server"]["responses"] >= 4
        assert stats["pool"]["sessions"][0]["requests"] == 3

    def test_responses_line_up_with_requests_in_order(self):
        async def scenario():
            server = await started_server()
            try:
                queries = [
                    "Udirectory(i,a,p)",
                    "Prof(i,n,10000)",
                    "Udirectory(i,a,p)",
                    "Prof(a,b,c)",
                ]
                return await exchange(
                    server,
                    [{"query": q, "id": i} for i, q in enumerate(queries)],
                )
            finally:
                await server.close()

        replies = run(scenario())
        assert [r["id"] for r in replies] == [0, 1, 2, 3]
        assert [r["decision"] for r in replies] == [
            "yes", "no", "yes", "no",
        ]

    def test_inline_schema_routes_by_fingerprint(self):
        async def scenario():
            # pool_size=1: the repeat Dir query must hit the same
            # session's decision cache to come back cached=True.
            pool = SessionPool(
                university_schema(ud_bound=100), pool_size=1
            )
            server = await started_server(pool=pool)
            try:
                replies = await exchange(
                    server,
                    [
                        {"query": "Dir(x)", "schema": INLINE_CHAIN},
                        {"query": "Udirectory(i,a,p)"},
                        {"query": "Dir(y)", "schema": INLINE_CHAIN},
                    ],
                )
                return replies, pool.stats()
            finally:
                await server.close()

        (first, default, second), stats = run(scenario())
        assert first["decision"] == "yes"
        assert default["decision"] == "yes"
        assert second["cached"] is True  # alpha-equivalent, same pool
        assert first["fingerprint"] != default["fingerprint"]
        assert stats["counters"]["text_key_hits"] == 1


class TestErrors:
    def test_malformed_frames_keep_the_connection_alive(self):
        async def scenario():
            server = await started_server()
            try:
                return await exchange(
                    server,
                    [
                        "not-json",
                        {"op": "wat"},
                        {"query": 17},
                        {"query": "Bad(("},
                        {"query": "Udirectory(i,a,p)"},
                    ],
                )
            finally:
                await server.close()

        bad_json, bad_op, bad_query, bad_parse, good = run(scenario())
        assert bad_json["error"]["type"] == "JSONDecodeError"
        assert "not-json" in bad_json["error"]["detail"]["line"]
        assert bad_op["error"]["type"] == "SchemaFormatError"
        assert bad_query["error"]["type"] == "SchemaFormatError"
        # The query parses at decision time, inside the executor.
        assert bad_parse["error"]["type"] == "ParseError"
        assert good["decision"] == "yes"

    def test_decision_errors_echo_the_request_id(self):
        async def scenario():
            server = await started_server()
            try:
                return await exchange(
                    server, [{"query": "Bad((", "id": 41}]
                )
            finally:
                await server.close()

        [reply] = run(scenario())
        assert reply["error"]["type"] == "ParseError"
        assert reply["id"] == 41

    def test_oversized_frame_gets_a_structured_error(self):
        async def scenario():
            server = await started_server()
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)

                async def send() -> None:
                    # The server replies and hangs up mid-send; the
                    # tail of the write may die with a reset.
                    try:
                        writer.write(b'"' + b"x" * (2 << 20) + b'"\n')
                        await writer.drain()
                    except (ConnectionResetError, BrokenPipeError):
                        pass

                sending = asyncio.ensure_future(send())
                line = await asyncio.wait_for(
                    reader.readline(), timeout=30
                )
                await sending
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass
                return json.loads(line)
            finally:
                await server.close()

        reply = run(scenario())
        assert reply["error"]["type"] == "FrameTooLong"


class TestConcurrency:
    def test_concurrent_connections_mixed_fingerprints(self):
        async def scenario():
            pool = SessionPool(
                university_schema(ud_bound=100), pool_size=2
            )
            server = await started_server(pool=pool, workers=4)
            try:
                frames = [
                    {"query": "Udirectory(i,a,p)", "id": "u"},
                    {"query": "Dir(x)", "schema": INLINE_CHAIN, "id": "c"},
                    {"query": "Prof(i,n,10000)", "id": "n"},
                ]
                replies = await asyncio.gather(
                    *(exchange(server, frames) for __ in range(8))
                )
                return replies
            finally:
                await server.close()

        for connection in run(scenario()):
            by_id = {reply["id"]: reply for reply in connection}
            assert by_id["u"]["decision"] == "yes"
            assert by_id["c"]["decision"] == "yes"
            assert by_id["n"]["decision"] == "no"

    def test_tiny_backpressure_gate_still_serves_everything(self):
        async def scenario():
            server = await started_server(workers=2, max_pending=1)
            try:
                frames = [
                    {"query": "Udirectory(i,a,p)", "id": i}
                    for i in range(5)
                ]
                return await asyncio.gather(
                    *(exchange(server, frames) for __ in range(4))
                )
            finally:
                await server.close()

        for connection in run(scenario()):
            assert [r["decision"] for r in connection] == ["yes"] * 5


class TestLifecycle:
    def test_close_is_clean_and_idempotent(self):
        async def scenario():
            server = await started_server()
            [reply] = await exchange(
                server, [{"query": "Udirectory(i,a,p)"}]
            )
            await server.close()
            await server.close()
            return reply, server

        reply, server = run(scenario())
        assert reply["decision"] == "yes"
        assert "stopped" in repr(server)

    def test_start_is_idempotent(self):
        async def scenario():
            server = await started_server()
            try:
                address = server.address
                again = await server.start()
                return address, again.address
            finally:
                await server.close()

        first, second = run(scenario())
        assert first == second

    def test_bad_configuration_rejected(self):
        pool = SessionPool(university_schema(ud_bound=100))
        for kwargs in ({"workers": 0}, {"max_pending": 0}):
            try:
                DecideServer(pool, **kwargs)
            except ValueError:
                continue
            raise AssertionError(f"accepted {kwargs}")
