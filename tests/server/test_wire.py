"""Wire-protocol property tests: round-trip fuzzing of the codecs.

Every frame crossing a process boundary — requests, decide/plan
responses, error frames — must survive ``to_dict`` → JSON → ``from_dict``
unchanged, over randomly generated schemas and queries, and every
malformed frame must come back as a *typed* codec error (so transports
can answer with a structured `ErrorFrame` instead of a stack trace).

A seeded tier-1 sample runs on every push; the wide sweeps carry the
``slow`` marker and run nightly.
"""

import json
import random

import pytest

from repro.io import (
    DecideRequest,
    DecideResponse,
    ErrorFrame,
    PlanResponse,
    SchemaFormatError,
    schema_from_dict,
    schema_to_dict,
)
from repro.server import SessionPool
from repro.service import schema_fingerprint
from repro.workloads import random_id_workload


def query_text(query) -> str:
    """The parser syntax for a Boolean CQ body."""
    return ", ".join(
        f"{a.relation}({', '.join(str(t) for t in a.terms)})"
        for a in query.atoms
    )


def random_request(rng: random.Random, description: dict, query) -> DecideRequest:
    op = rng.choice(["decide", "decide", "decide", "plan", "stats", "ping"])
    return DecideRequest(
        query=query_text(query) if op in ("decide", "plan") else "",
        schema=description if rng.random() < 0.5 else None,
        id=rng.choice([None, rng.randrange(1000), f"req-{rng.random()}"]),
        finite=rng.random() < 0.2,
        op=op,
        deadline_ms=rng.choice([None, None, 1.0, 250.0, 60_000.0]),
    )


def assert_request_round_trips(request: DecideRequest) -> None:
    wire = json.loads(json.dumps(request.to_dict()))
    assert DecideRequest.from_dict(wire) == request


class TestRequestRoundTrip:
    def test_bare_string_form(self):
        request = DecideRequest.from_dict("R(x, y)")
        assert request == DecideRequest(query="R(x, y)")
        assert_request_round_trips(request)

    def test_random_requests_round_trip(self):
        rng = random.Random(7)
        for seed in range(20):
            workload = random_id_workload(seed)
            description = schema_to_dict(workload.schema)
            request = random_request(rng, description, workload.query)
            assert_request_round_trips(request)
            # The inline schema also round-trips to the same fingerprint.
            if request.schema is not None:
                rebuilt = schema_from_dict(
                    json.loads(json.dumps(request.schema))
                )
                assert schema_fingerprint(rebuilt) == schema_fingerprint(
                    workload.schema
                )

    @pytest.mark.slow
    def test_random_requests_round_trip_sweep(self):
        rng = random.Random(11)
        for seed in range(300):
            workload = random_id_workload(
                seed, relations=rng.randint(2, 7), ids=rng.randint(1, 8)
            )
            assert_request_round_trips(
                random_request(
                    rng, schema_to_dict(workload.schema), workload.query
                )
            )


class TestResponseRoundTrip:
    def _decide_responses(self, seeds):
        """Real responses, decided over random schemas through a pool."""
        pool = SessionPool(pool_size=1)
        for seed in seeds:
            workload = random_id_workload(seed)
            request = DecideRequest(
                query=query_text(workload.query),
                schema=schema_to_dict(workload.schema),
                id=seed,
            )
            yield pool.process(request)

    def test_real_decide_responses_round_trip(self):
        for response in self._decide_responses(range(12)):
            wire = json.loads(json.dumps(response.to_dict()))
            rebuilt = DecideResponse.from_dict(wire)
            assert rebuilt.to_dict() == response.to_dict()
            assert rebuilt.decision == response.decision
            assert rebuilt.id == response.id

    @pytest.mark.slow
    def test_real_decide_responses_round_trip_sweep(self):
        for response in self._decide_responses(range(150)):
            wire = json.loads(json.dumps(response.to_dict()))
            assert DecideResponse.from_dict(wire).to_dict() == (
                response.to_dict()
            )

    def test_plan_response_round_trips_with_id(self):
        response = PlanResponse(
            query="Q",
            answerable=True,
            plan="T <= m <= T",
            fingerprint="f" * 64,
            id="plan-1",
        )
        wire = json.loads(json.dumps(response.to_dict()))
        assert PlanResponse.from_dict(wire) == response

    def test_synthetic_decide_response_fields_survive(self):
        response = DecideResponse(
            query="Q",
            decision="unknown",
            reason="budget",
            route="linearization",
            constraint_class="ids",
            fingerprint="a" * 64,
            cached=True,
            elapsed_ms=1.25,
            id=9,
            detail={"rounds": 3, "nested": {"k": [1, 2]}},
            error={"type": "RewritingBudgetExceeded", "max_disjuncts": 1},
        )
        wire = json.loads(json.dumps(response.to_dict()))
        assert DecideResponse.from_dict(wire) == response


class TestErrorFrameRoundTrip:
    def test_from_exception_and_round_trip(self):
        frame = ErrorFrame.from_exception(
            SchemaFormatError("bad schema"), id=4, line="{...}"
        )
        wire = json.loads(json.dumps(frame.to_dict()))
        assert ErrorFrame.from_dict(wire) == frame
        assert wire["error"]["type"] == "SchemaFormatError"
        assert wire["error"]["detail"]["line"] == "{...}"

    def test_retry_contract_fields_round_trip(self):
        from repro.runtime import DeadlineExceeded, Overloaded

        # from_exception lifts retryable / retry_after_ms off the error.
        frame = ErrorFrame.from_exception(
            Overloaded("busy", retry_after_ms=125.0), id="r1"
        )
        wire = json.loads(json.dumps(frame.to_dict()))
        assert wire["error"]["retryable"] is True
        assert wire["error"]["retry_after_ms"] == 125.0
        assert ErrorFrame.from_dict(wire) == frame

        frame = ErrorFrame.from_exception(
            DeadlineExceeded("late", deadline_ms=5.0, elapsed_ms=6.0)
        )
        wire = json.loads(json.dumps(frame.to_dict()))
        assert wire["error"]["retryable"] is True
        assert "retry_after_ms" not in wire["error"]  # no hint, no key
        assert ErrorFrame.from_dict(wire) == frame

        # Non-retryable errors say so explicitly on the wire.
        wire = ErrorFrame.from_exception(ValueError("bad")).to_dict()
        assert wire["error"]["retryable"] is False

    def test_pre_retry_contract_frames_still_parse(self):
        # Frames emitted before retryable/retry_after_ms existed carry
        # neither key; they must parse as non-retryable.
        legacy = {"error": {"type": "ParseError", "message": "nope"}}
        frame = ErrorFrame.from_dict(legacy)
        assert frame.type == "ParseError"
        assert frame.retryable is False
        assert frame.retry_after_ms is None

    def test_error_frames_never_collide_with_responses(self):
        # The discriminator: an ErrorFrame has no "decision" and a
        # DecideResponse always does, even when it carries an error.
        frame = ErrorFrame("ParseError", "nope").to_dict()
        assert "decision" not in frame
        response = DecideResponse(
            query="Q", decision="unknown", error={"type": "X"}
        ).to_dict()
        assert "decision" in response


MALFORMED = [
    17,
    None,
    ["R(x)"],
    {"op": "wat", "query": "R(x)"},
    {"op": "decide"},
    {"op": "plan", "query": ""},
    {"query": 17},
    {"query": ["R(x)"]},
    {"query": "R(x)", "schema": "not-a-dict"},
    {"query": "R(x)", "schema": ["x"]},
    {"query": "R(x)", "id": [1]},
    {"query": "R(x)", "id": {"k": 1}},
    {"query": "R(x)", "deadline_ms": 0},
    {"query": "R(x)", "deadline_ms": -5},
    {"query": "R(x)", "deadline_ms": True},
    {"query": "R(x)", "deadline_ms": "fast"},
]


class TestMalformedFrames:
    @pytest.mark.parametrize("payload", MALFORMED, ids=repr)
    def test_malformed_frame_raises_the_typed_codec_error(self, payload):
        with pytest.raises(SchemaFormatError):
            DecideRequest.from_dict(payload)

    def test_introspection_ops_need_no_query(self):
        for op in ("stats", "ping"):
            request = DecideRequest.from_dict({"op": op})
            assert request.op == op and request.query == ""

    def test_random_json_junk_never_escapes_the_typed_error(self):
        rng = random.Random(23)

        def junk(depth=0):
            kinds = ["int", "str", "list", "dict", "none", "bool"]
            kind = rng.choice(kinds if depth < 2 else kinds[:2])
            if kind == "int":
                return rng.randrange(-1000, 1000)
            if kind == "str":
                return "".join(
                    rng.choice("abc(){}:,\"' \\")
                    for __ in range(rng.randrange(12))
                )
            if kind == "none":
                return None
            if kind == "bool":
                return rng.random() < 0.5
            if kind == "list":
                return [junk(depth + 1) for __ in range(rng.randrange(3))]
            return {
                rng.choice(
                    ["query", "schema", "id", "op", "finite", "x"]
                ): junk(depth + 1)
                for __ in range(rng.randrange(4))
            }

        parsed = 0
        for __ in range(500):
            payload = junk()
            try:
                DecideRequest.from_dict(payload)
                parsed += 1
            except SchemaFormatError:
                pass  # the only acceptable failure mode
        assert parsed > 0  # some junk is legitimately well-formed
