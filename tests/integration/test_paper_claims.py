"""Integration tests: the paper's cross-cutting claims, end to end.

Each test exercises several modules together to check an actual theorem
statement on concrete families — the library-level counterpart of the
paper's proofs.
"""

import pytest

from repro.answerability import (
    UniversalPlan,
    choice_simplification,
    decide_monotone_answerability,
    decide_with_choice_simplification,
    decide_with_fds,
    decide_with_ids,
    elim_ub,
    existence_check_simplification,
    fd_simplification,
    find_amondet_counterexample,
    generate_static_plan,
)
from repro.accessibility import EagerSelection, RandomSelection, StingySelection
from repro.data import Instance
from repro.logic import evaluate_cq, evaluate_ucq, holds
from repro.plans import plan_answers_query_on, plan_to_ucq
from repro.workloads import (
    fd_determinacy_workload,
    lookup_chain_workload,
    tgd_transfer_workload,
    uid_fd_workload,
)
from repro.workloads.generators import directory_instance
from repro.workloads.paperschemas import (
    query_q1_boolean,
    query_q2,
    university_instance,
    university_schema,
)


class TestProp33ElimUB:
    """Result upper bounds never matter (Prop 3.3)."""

    @pytest.mark.parametrize(
        "workload",
        [
            lookup_chain_workload(2, dump_bound=5),
            fd_determinacy_workload(2, bound=3),
            uid_fd_workload(2),
            tgd_transfer_workload(2),
        ],
        ids=lambda wl: wl.name,
    )
    def test_elim_ub_preserves_decision(self, workload):
        direct = decide_monotone_answerability(workload.schema, workload.query)
        relaxed = decide_monotone_answerability(
            elim_ub(workload.schema), workload.query
        )
        assert direct.truth == relaxed.truth


class TestThm42ExistenceCheck:
    """For IDs, deciding on the existence-check simplification agrees."""

    @pytest.mark.parametrize("bound", [2, 50])
    @pytest.mark.parametrize("size", [1, 2])
    def test_equivalence(self, size, bound):
        workload = lookup_chain_workload(size, dump_bound=bound)
        direct = decide_with_ids(workload.schema, workload.query)
        simplified = existence_check_simplification(workload.schema).schema
        assert not simplified.has_result_bounds()
        via = decide_with_ids(simplified, workload.query)
        assert direct.truth == via.truth


class TestThm45FD:
    """For FDs, deciding on the FD simplification agrees."""

    @pytest.mark.parametrize("determined", [1, 2])
    @pytest.mark.parametrize("ask_undetermined", [False, True])
    def test_equivalence(self, determined, ask_undetermined):
        workload = fd_determinacy_workload(
            determined, ask_undetermined=ask_undetermined
        )
        direct = decide_with_fds(workload.schema, workload.query)
        simplified = fd_simplification(elim_ub(workload.schema)).schema
        assert not simplified.has_result_bounds()
        via = decide_with_fds(simplified, workload.query)
        assert direct.truth == via.truth
        assert direct.is_yes == workload.expected_answerable


class TestThm63ChoiceInvariance:
    """For TGD classes the bound's value is irrelevant (choice simpl)."""

    @pytest.mark.parametrize("bound", [1, 3, 77])
    def test_bound_invariance_tgds(self, bound):
        workload = tgd_transfer_workload(2)
        schema = workload.schema.replace_methods(
            [
                m.with_result_bound(bound) if m.is_result_bounded() else m
                for m in workload.schema.methods
            ]
        )
        result = decide_with_choice_simplification(schema, workload.query)
        assert result.is_yes


class TestThm31PlansIffAMonDet:
    """YES decisions yield working plans; NO decisions yield verified
    counterexamples (the two sides of Thm 3.1)."""

    def test_yes_side(self):
        workload = lookup_chain_workload(1, dump_bound=None)
        assert decide_monotone_answerability(
            workload.schema, workload.query
        ).is_yes
        plan = generate_static_plan(workload.schema, workload.query)
        instances = [
            Instance(),
            directory_instance(3),
            directory_instance(6, seed=2),
        ]
        assert plan_answers_query_on(
            plan, workload.query, workload.schema, instances,
            exhaustive=False,
        )

    def test_no_side(self):
        schema = university_schema(ud_bound=2)
        query = query_q1_boolean()
        assert decide_monotone_answerability(schema, query).is_no
        counterexample = find_amondet_counterexample(schema, query)
        assert counterexample is not None
        assert counterexample.verify(schema, query)

    def test_universal_plan_on_all_yes_workloads(self):
        cases = [
            (lookup_chain_workload(1, dump_bound=None), directory_instance(4)),
            (tgd_transfer_workload(1), None),
        ]
        for workload, instance in cases:
            if instance is None:
                continue
            assert decide_monotone_answerability(
                workload.schema, workload.query
            ).is_yes
            plan = UniversalPlan(workload.schema, workload.query)
            for selection in (
                EagerSelection(), StingySelection(), RandomSelection(3),
            ):
                assert plan.holds(instance, selection) == holds(
                    workload.query, instance
                )


class TestProp22PlanToUCQ:
    """Monotone plans convert to UCQs equivalent on Σ-instances under
    eager access — the device behind finite controllability (Prop 2.2)."""

    def test_extracted_plan_ucq_equivalence(self):
        schema = university_schema(ud_bound=None)
        query = query_q2()
        plan = generate_static_plan(schema, query)
        ucq = plan_to_ucq(plan, schema)
        for n in (0, 2, 5):
            instance = university_instance(n)
            assert schema.satisfied_by(instance)
            expected = evaluate_cq(query, instance)
            assert evaluate_ucq(ucq, instance) == expected


class TestSimplificationHierarchy:
    """Choice is weaker than existence-check/FD but applies more widely
    (§6): on ID schemas all three give the same verdict."""

    @pytest.mark.parametrize("bound", [3, 40])
    def test_all_simplifications_agree_on_ids(self, bound):
        workload = lookup_chain_workload(2, dump_bound=bound)
        schema = workload.schema
        query = workload.query
        direct = decide_monotone_answerability(schema, query).truth

        choice = choice_simplification(schema).schema
        via_choice = decide_monotone_answerability(choice, query).truth

        existence = existence_check_simplification(schema).schema
        via_existence = decide_monotone_answerability(
            existence, query
        ).truth

        assert direct == via_choice == via_existence
