"""Edge cases across the stack: nullary relations, empty schemas,
self-referential constraints, and random cross-validation sweeps."""

import pytest

from repro.answerability import (
    decide_monotone_answerability,
    decide_with_ids,
    existence_check_simplification,
)
from repro.chase import ChaseOutcome, chase
from repro.constraints import tgd
from repro.data import Instance
from repro.logic import Atom, Constant, atom, boolean_cq, holds
from repro.schema import Schema
from repro.workloads.generators import random_id_workload


class TestNullaryRelations:
    """Arity-0 relations arise from the existence-check simplification
    of input-free bounded methods; they must work end to end."""

    def test_nullary_facts(self):
        instance = Instance([Atom("Flag", ())])
        assert Atom("Flag", ()) in instance
        assert holds(boolean_cq([Atom("Flag", ())]), instance)
        assert not holds(boolean_cq([Atom("Other", ())]), instance)

    def test_nullary_in_chase(self):
        rule = tgd("R(x) -> Go()")
        result = chase(Instance([atom("R", Constant(1))]), [rule])
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert Atom("Go", ()) in result.instance

    def test_existence_check_view_of_input_free_method(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("dump", "R", inputs=[], result_bound=3)
        simplified = existence_check_simplification(schema)
        view = simplified.rewrites["dump"].view_relation
        assert view.arity == 0
        q = boolean_cq([atom("R", "x", "y")])
        assert decide_with_ids(simplified.schema, q).is_yes


class TestDegenerateSchemas:
    def test_no_methods_only_trivial_queries(self):
        schema = Schema()
        schema.add_relation("R", 1)
        q = boolean_cq([atom("R", "x")])
        assert decide_monotone_answerability(schema, q).is_no

    def test_boolean_method_needs_constants(self):
        schema = Schema()
        schema.add_relation("R", 1)
        schema.add_method("chk", "R", inputs=[0])
        # Without constants nothing is accessible.
        assert decide_monotone_answerability(
            schema, boolean_cq([atom("R", "x")])
        ).is_no
        # With a constant the membership test answers the query.
        assert decide_monotone_answerability(
            schema, boolean_cq([atom("R", Constant("a"))])
        ).is_yes

    def test_self_referential_id(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", inputs=[0])
        schema.add_constraint(tgd("R(x, y) -> R(y, x)"))
        q = boolean_cq([atom("R", Constant(1), "y")])
        decision = decide_monotone_answerability(schema, q)
        assert not decision.is_unknown

    def test_query_with_repeated_constant(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", inputs=[0])
        q = boolean_cq([atom("R", Constant("a"), Constant("a"))])
        assert decide_monotone_answerability(schema, q).is_yes


class TestRandomSweeps:
    """Statistical cross-validation beyond the benchmark sweep."""

    @pytest.mark.parametrize("seed", range(8))
    def test_linearization_chase_agreement(self, seed):
        workload = random_id_workload(seed, relations=4, ids=4, methods=3)
        lin = decide_with_ids(
            workload.schema, workload.query, route="linearization"
        )
        assert not lin.is_unknown
        cha = decide_with_ids(
            workload.schema, workload.query, route="chase", max_rounds=10
        )
        if not cha.is_unknown:
            assert lin.truth == cha.truth

    @pytest.mark.parametrize("seed", range(4))
    def test_yes_implies_universal_plan_correct(self, seed):
        from repro.accessibility import RandomSelection, StingySelection
        from repro.answerability import UniversalPlan
        from repro.answerability.counterexamples import (
            candidate_instances_for,
        )

        workload = random_id_workload(
            seed, relations=3, ids=3, methods=3, bound=2
        )
        decision = decide_with_ids(workload.schema, workload.query)
        if not decision.is_yes:
            return
        plan = UniversalPlan(workload.schema, workload.query)
        for instance in candidate_instances_for(
            workload.schema, workload.query
        )[:2]:
            expected = holds(workload.query, instance)
            for selection in (StingySelection(), RandomSelection(seed)):
                run = plan.run(instance, selection)
                if run.definitive:
                    assert bool(run.answers) == expected
