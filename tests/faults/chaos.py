"""The chaos transport: seeded fault injection against a live server.

A chaos run drives a real `DecideServer` over real TCP connections,
interleaving well-formed requests with injected faults — malformed
JSON, truncated frames, oversized frames, mid-frame disconnects,
byte-at-a-time slow writes, deadline expiries — according to a
``random.Random(seed)`` plan (deterministic, no external
dependencies).  Used by the property tests in ``test_faults.py`` and
the CI smoke in ``smoke_chaos.py``.

The invariant the consumers assert (`verify`): every accepted request
resolves to either a **correct decision** (it matches a fresh-session
oracle) or a **structured error frame** of a known type — never a
wrong answer, never a hang (every read is deadline-bounded), and the
server survives every fault with its caches unpoisoned.
"""

import asyncio
import json
import random

#: Error types a fault may legitimately surface (the full taxonomy is
#: documented in DESIGN.md §wire protocol).
KNOWN_ERROR_TYPES = {
    "JSONDecodeError",
    "SchemaFormatError",
    "ParseError",
    "ValueError",
    "FrameTooLong",
    "DeadlineExceeded",
    "Overloaded",
}

#: Read timeout for every reply: a hang is a test failure, not a stall.
REPLY_TIMEOUT = 30.0

FAULTS = (
    "valid",
    "malformed_json",
    "truncated_frame",
    "oversized_frame",
    "disconnect_mid_frame",
    "slow_write",
    "deadline_expiry",
    "empty_line_then_valid",
)


async def _read_reply(reader):
    line = await asyncio.wait_for(reader.readline(), timeout=REPLY_TIMEOUT)
    if not line:
        return None
    return json.loads(line)


async def _close(writer):
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass


async def run_action(host, port, action, rng, queries, slow_request):
    """Execute one chaos action on a fresh connection.

    Returns ``(action, query_or_None, reply_or_None)``; a None reply
    means the action legitimately forfeits its response (the client
    disconnected first, or the frame could never be parsed as a
    request).
    """
    reader, writer = await asyncio.open_connection(host, port)
    query = None
    reply = None
    try:
        if action == "valid":
            query = rng.choice(queries)
            writer.write(
                json.dumps({"query": query, "id": 1}).encode() + b"\n"
            )
            await writer.drain()
            reply = await _read_reply(reader)
        elif action == "malformed_json":
            junk = rng.choice(
                [b"{not json", b'{"query": ', b"\x00\xff\xfe garbage", b"]["]
            )
            writer.write(junk + b"\n")
            # The connection must survive: a valid frame still answers.
            query = rng.choice(queries)
            writer.write(
                json.dumps({"query": query, "id": 2}).encode() + b"\n"
            )
            await writer.drain()
            error = await _read_reply(reader)
            assert error is not None and "error" in error, error
            reply = await _read_reply(reader)
        elif action == "truncated_frame":
            query = None
            half = json.dumps({"query": rng.choice(queries)}).encode()
            writer.write(half[: max(1, len(half) // 2)])
            await writer.drain()
            # Disconnect with the frame unterminated: the server must
            # drop it without stalling (no newline ⇒ no request).
        elif action == "oversized_frame":
            writer.write(b'{"query": "' + b"x" * (1 << 20) + b'"}\n')
            await writer.drain()
            reply = await _read_reply(reader)
            assert reply is not None and "error" in reply, reply
            assert reply["error"]["type"] == "FrameTooLong"
            reply = None  # the connection is closed by contract
        elif action == "disconnect_mid_frame":
            writer.write(b'{"query": "Udir')
            await writer.drain()
        elif action == "slow_write":
            query = rng.choice(queries)
            frame = json.dumps({"query": query, "id": 3}).encode() + b"\n"
            step = max(1, len(frame) // 5)
            for start in range(0, len(frame), step):
                writer.write(frame[start : start + step])
                await writer.drain()
                await asyncio.sleep(0.01)
            reply = await _read_reply(reader)
        elif action == "deadline_expiry":
            frame = dict(slow_request)
            frame["deadline_ms"] = rng.choice([1, 2, 5])
            frame["id"] = 4
            writer.write(json.dumps(frame).encode() + b"\n")
            await writer.drain()
            reply = await _read_reply(reader)
        elif action == "empty_line_then_valid":
            query = rng.choice(queries)
            writer.write(b"\n   \n")
            writer.write(json.dumps({"query": query}).encode() + b"\n")
            await writer.drain()
            reply = await _read_reply(reader)
        else:  # pragma: no cover - plan bug
            raise AssertionError(f"unknown action {action}")
    finally:
        await _close(writer)
    return (action, query, reply)


async def run_chaos(host, port, *, seed, rounds, queries, slow_request):
    """One seeded chaos session; returns the list of action records."""
    rng = random.Random(seed)
    records = []
    for __ in range(rounds):
        action = rng.choice(FAULTS)
        records.append(
            await run_action(host, port, action, rng, queries, slow_request)
        )
    return records


def verify(records, oracle):
    """Check the chaos invariant; returns a list of violation strings.

    ``oracle`` maps query text to the fresh-session decision.  A reply
    must be either a decision frame agreeing with the oracle or an
    error frame of a known type; anything else is a violation.
    """
    violations = []
    for action, query, reply in records:
        if reply is None:
            continue  # legitimately forfeited (disconnect faults)
        if "error" in reply and "decision" not in reply:
            error = reply["error"]
            if error.get("type") not in KNOWN_ERROR_TYPES:
                violations.append(
                    f"{action}: unknown error type {error.get('type')!r}"
                )
            if error["type"] in ("DeadlineExceeded", "Overloaded") and not (
                error.get("retryable") is True
            ):
                violations.append(
                    f"{action}: {error['type']} must be retryable"
                )
        elif "decision" in reply:
            if query is not None and reply["decision"] != oracle[query]:
                violations.append(
                    f"{action}: WRONG ANSWER {reply['decision']!r} for "
                    f"{query!r} (oracle {oracle[query]!r})"
                )
        else:
            violations.append(f"{action}: unclassifiable reply {reply}")
    return violations
