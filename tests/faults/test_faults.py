"""Fault-injection property tests: the resilience invariant.

Every injected fault — malformed/truncated/oversized frames,
disconnects, deadline expiries, overload — must yield either a correct
decision or a structured, typed error frame.  Never a wrong answer,
never a hung connection (every read is timeout-bounded), and never a
poisoned cache: after the storm, the *same* pool must decide exactly
like a fresh one.

Deterministic: all randomness is ``random.Random(seed)``.
"""

import asyncio
import json

from repro.io import schema_to_dict
from repro.runtime import Budget, DeadlineExceeded
from repro.server import DecideServer, SessionLimits, SessionPool
from repro.service import Session
from repro.workloads import lookup_chain_workload, university_schema

from .chaos import run_chaos, verify

QUERIES = [
    "Udirectory(i, a, p)",
    "Prof(i, n, 10000)",
    "Q(n) :- Prof(i, n, s)",
    "Q() :- Udirectory(i, a, p), Prof(i, n, s)",
]


def oracle_decisions():
    session = Session(university_schema(ud_bound=100))
    return {q: session.decide(q).decision for q in QUERIES}


def slow_request():
    """A request frame whose decision takes ~seconds uncapped: the
    deadline-expiry fault aborts it mid-flight."""
    workload = lookup_chain_workload(6)
    return {
        "schema": schema_to_dict(workload.schema),
        "query": repr(workload.query),
    }


def run(coroutine):
    return asyncio.run(coroutine)


async def started_server(**kwargs):
    pool = kwargs.pop("pool", None)
    if pool is None:
        pool = SessionPool(university_schema(ud_bound=100))
    server = DecideServer(pool, port=0, **kwargs)
    return await server.start()


async def decide_once(server, frame):
    host, port = server.address
    reader, writer = await asyncio.open_connection(host, port)
    text = frame if isinstance(frame, str) else json.dumps(frame)
    writer.write(text.encode() + b"\n")
    await writer.drain()
    line = await asyncio.wait_for(reader.readline(), timeout=30)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionResetError, BrokenPipeError):
        pass
    return json.loads(line)


class TestChaosBattery:
    def test_seeded_chaos_rounds_yield_decisions_or_typed_errors(self):
        oracle = oracle_decisions()
        slow = slow_request()

        async def scenario(seed):
            server = await started_server()
            try:
                records = await run_chaos(
                    *server.address,
                    seed=seed,
                    rounds=16,
                    queries=QUERIES,
                    slow_request=slow,
                )
                violations = verify(records, oracle)
                assert not violations, violations
                # The battered pool is unpoisoned: it still agrees
                # with the oracle on every query.
                for query in QUERIES:
                    reply = await decide_once(server, {"query": query})
                    assert reply["decision"] == oracle[query], query
            finally:
                await server.close()

        for seed in (0, 1, 2):
            run(scenario(seed))


class TestDeadlines:
    def test_deadline_expiry_is_a_retryable_error_frame(self):
        slow = slow_request()

        async def scenario():
            server = await started_server()
            try:
                frame = dict(slow, deadline_ms=5, id="d1")
                reply = await decide_once(server, frame)
                assert reply["error"]["type"] == "DeadlineExceeded"
                assert reply["error"]["retryable"] is True
                assert reply["id"] == "d1"
                return await server._process_line(b'{"op": "stats"}')
            finally:
                await server.close()

        stats = run(scenario())
        assert stats["server"]["deadline_exceeded"] == 1

    def test_aborted_request_does_not_poison_the_pool(self):
        # After a deadline abort, the same pool (same sessions, same
        # compiled artifacts, same memo caches) must decide the same
        # request identically to a fresh pool.
        slow = slow_request()

        async def scenario():
            server = await started_server()
            try:
                first = await decide_once(
                    server, dict(slow, deadline_ms=5)
                )
                assert first["error"]["type"] == "DeadlineExceeded"
                settled = await decide_once(server, dict(slow))
                return settled
            finally:
                await server.close()

        settled = run(scenario())
        fresh = Session(lookup_chain_workload(6).schema).decide(
            lookup_chain_workload(6).query
        )
        assert settled["decision"] == fresh.decision
        assert settled["cached"] is False  # aborts were never cached

    def test_pool_deadline_caps_the_request_deadline(self):
        limits = SessionLimits(deadline_ms=5.0)
        pool = SessionPool(
            lookup_chain_workload(6).schema, limits=limits
        )
        from repro.io import DecideRequest

        # The client asks for more time than the server allows: the
        # effective budget is the tighter (server) deadline.
        budget = pool.budget_for(
            DecideRequest(query="Q()", deadline_ms=60_000.0)
        )
        assert budget.deadline_ms == 5.0
        try:
            pool.process(
                DecideRequest(query=repr(lookup_chain_workload(6).query))
            )
            raise AssertionError("expected DeadlineExceeded")
        except DeadlineExceeded as error:
            assert error.retryable is True

    def test_cancelled_budget_aborts_before_any_work(self):
        budget = Budget()
        budget.cancel("drain")
        session = Session(university_schema(ud_bound=100))
        try:
            session.decide("Udirectory(i, a, p)", budget=budget)
            raise AssertionError("expected DeadlineExceeded")
        except DeadlineExceeded as error:
            assert error.as_detail()["reason"] == "drain"
        # The abort left no cache entry behind.
        assert session.cache_info()["size"] == 0
        # Cache hits are still served under an exhausted budget.
        assert session.decide("Udirectory(i, a, p)").is_yes
        assert session.decide(
            "Udirectory(i, a, p)", budget=budget
        ).cached


class TestQuotas:
    def test_rate_limited_client_is_shed_with_retry_hint(self):
        async def scenario():
            # Refill is negligible over the test's lifetime: the shed
            # count is exactly (requests - burst).
            server = await started_server(
                client_rate=0.1, client_burst=2.0
            )
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                replies = []
                for i in range(5):
                    writer.write(
                        json.dumps(
                            {"query": QUERIES[0], "id": i}
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=30
                    )
                    replies.append(json.loads(line))
                writer.close()
                await writer.wait_closed()
                return replies, dict(server._counters)
            finally:
                await server.close()

        replies, counters = run(scenario())
        decisions = [r for r in replies if "decision" in r]
        shed = [r for r in replies if "error" in r]
        assert len(decisions) == 2  # the burst allowance
        assert len(shed) == 3
        for reply in shed:
            assert reply["error"]["type"] == "Overloaded"
            assert reply["error"]["retryable"] is True
            assert reply["error"]["retry_after_ms"] > 0
            assert reply["id"] is not None
        assert counters["overloaded"] == 3

    def test_quota_is_per_client_not_global(self):
        # Quota state is keyed by peer address: a second client with
        # its own address has its own untouched bucket.
        async def scenario():
            server = await started_server(
                client_rate=0.1, client_burst=1.0
            )
            try:
                host, port = server.address
                first = await decide_once(server, {"query": QUERIES[0]})
                second = await decide_once(server, {"query": QUERIES[0]})
                # Same address: the second request exceeds the bucket.
                assert "decision" in first
                assert second["error"]["type"] == "Overloaded"
                reader, writer = await asyncio.open_connection(
                    host, port, local_addr=("127.0.0.2", 0)
                )
                writer.write(
                    json.dumps({"query": QUERIES[0]}).encode() + b"\n"
                )
                await writer.drain()
                line = await asyncio.wait_for(
                    reader.readline(), timeout=30
                )
                writer.close()
                await writer.wait_closed()
                return json.loads(line)
            finally:
                await server.close()

        other_client = run(scenario())
        assert "decision" in other_client

    def test_ping_and_stats_bypass_quotas(self):
        async def scenario():
            server = await started_server(
                client_rate=0.001, client_burst=1.0
            )
            try:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                for __ in range(5):
                    writer.write(b'{"op": "ping"}\n')
                await writer.drain()
                replies = []
                for __ in range(5):
                    line = await asyncio.wait_for(
                        reader.readline(), timeout=30
                    )
                    replies.append(json.loads(line))
                writer.close()
                await writer.wait_closed()
                return replies
            finally:
                await server.close()

        assert all(r["op"] == "pong" for r in run(scenario()))


class TestDrain:
    def test_close_with_drain_timeout_cancels_in_flight_work(self):
        slow = slow_request()

        async def scenario():
            server = await started_server()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps(dict(slow, id="x")).encode() + b"\n")
            await writer.drain()
            await asyncio.sleep(0.2)  # let the worker pick it up
            assert server._counters["in_flight"] == 1
            await server.close(drain_timeout=0.4)
            # The in-flight request got a well-formed final frame:
            # cancelled by the drain, marked retryable.
            line = await asyncio.wait_for(reader.readline(), timeout=5)
            reply = json.loads(line)
            assert reply["error"]["type"] == "DeadlineExceeded"
            assert reply["error"]["retryable"] is True
            assert reply["id"] == "x"
            assert "drain" in reply["error"]["message"]
            # ... and the connection was closed afterwards.
            assert await asyncio.wait_for(reader.readline(), timeout=5) == b""
            writer.close()
            return dict(server._counters)

        counters = run(scenario())
        assert counters["cancelled"] >= 1
        assert counters["connections_open"] == 0

    def test_drain_finishes_fast_work_without_cancelling(self):
        async def scenario():
            server = await started_server()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                json.dumps({"query": QUERIES[0], "id": 9}).encode() + b"\n"
            )
            await writer.drain()
            await server.close(drain_timeout=30.0)
            line = await asyncio.wait_for(reader.readline(), timeout=5)
            reply = json.loads(line)
            writer.close()
            return reply, dict(server._counters)

        reply, counters = run(scenario())
        assert reply.get("decision") is not None
        assert reply["id"] == 9
        assert counters["cancelled"] == 0

    def test_draining_server_stops_reading_new_frames(self):
        async def scenario():
            server = await started_server()
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            await asyncio.sleep(0.05)
            close_task = asyncio.ensure_future(
                server.close(drain_timeout=2.0)
            )
            await asyncio.sleep(0.1)
            assert server.draining
            # A frame sent after drain started is never answered; the
            # connection just closes.
            writer.write(
                json.dumps({"query": QUERIES[0]}).encode() + b"\n"
            )
            try:
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass
            line = await asyncio.wait_for(reader.readline(), timeout=5)
            await close_task
            writer.close()
            return line

        assert run(scenario()) == b""
