"""Deterministic supervisor tests: fake workers, fake clock, no sleeps.

The restart/backoff/breaker logic runs entirely against injected
``spawn``/``health_check``/``clock``/``sleep``/``rng``, so crash
storms that would take minutes of wall time resolve in microseconds
and every delay is asserted exactly.
"""

import random

import pytest

from repro.server import (
    BackoffPolicy,
    BreakerPolicy,
    CrashLoopError,
    Supervisor,
)


class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class FakeWorker:
    """A scripted worker: stays alive for ``lifetime`` polls, then
    exits with ``exitcode``."""

    def __init__(self, lifetime: int = 0, exitcode: int = 1) -> None:
        self.lifetime = lifetime
        self.exitcode = None
        self._final_exitcode = exitcode
        self.terminated = False
        self.killed = False

    def is_alive(self) -> bool:
        if self.lifetime <= 0:
            if self.exitcode is None:
                self.exitcode = self._final_exitcode
            return False
        self.lifetime -= 1
        return True

    def terminate(self) -> None:
        self.terminated = True
        self.lifetime = 0
        if self.exitcode is None:
            self.exitcode = -15

    def kill(self) -> None:
        self.killed = True
        self.lifetime = 0

    def join(self, timeout=None) -> None:
        pass


def make_supervisor(workers, clock, *, sleeps=None, **kwargs):
    """A supervisor spawning scripted workers; sleeps are recorded and
    advance the fake clock instead of blocking."""
    queue = list(workers)

    def spawn():
        if not queue:
            raise AssertionError("spawn called past the script")
        return queue.pop(0)

    def sleep(seconds):
        if sleeps is not None:
            sleeps.append(seconds)
        clock.advance(seconds)

    kwargs.setdefault("rng", random.Random(7))
    return Supervisor(spawn, clock=clock, sleep=sleep, **kwargs)


class TestBackoffPolicy:
    def test_exponential_growth_capped(self):
        policy = BackoffPolicy(base_s=0.1, cap_s=5.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in range(1, 9)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 5.0, 5.0]

    def test_jitter_stays_inside_band(self):
        policy = BackoffPolicy(base_s=1.0, cap_s=10.0, jitter=0.25)
        rng = random.Random(42)
        for n in range(1, 6):
            raw = min(10.0, 1.0 * 2 ** (n - 1))
            for __ in range(50):
                delay = policy.delay(n, rng)
                assert raw * 0.75 <= delay <= raw * 1.25

    def test_seeded_jitter_is_deterministic(self):
        policy = BackoffPolicy()
        a = [policy.delay(n, random.Random(3)) for n in range(1, 5)]
        b = [policy.delay(n, random.Random(3)) for n in range(1, 5)]
        assert a == b


class TestRestarts:
    def test_crashed_worker_is_restarted_until_clean_exit(self):
        clock = FakeClock()
        sleeps = []
        crashers = [FakeWorker(lifetime=2, exitcode=1) for __ in range(3)]
        clean = FakeWorker(lifetime=2, exitcode=0)
        supervisor = make_supervisor(
            crashers + [clean],
            clock,
            sleeps=sleeps,
            backoff=BackoffPolicy(jitter=0.0),
            breaker=BreakerPolicy(max_crashes=10, window_s=1e9),
        )
        supervisor.run()
        assert supervisor.restarts == 3
        assert supervisor.generation == 4
        # Backoff escalated with consecutive crashes (plus the poll
        # sleeps inside _watch, which are poll_interval_s each).
        backoffs = [s for s in sleeps if s != supervisor.poll_interval_s]
        assert backoffs == [0.1, 0.2, 0.4]

    def test_clean_exit_ends_supervision_without_restart(self):
        clock = FakeClock()
        supervisor = make_supervisor(
            [FakeWorker(lifetime=1, exitcode=0)], clock
        )
        supervisor.run()
        assert supervisor.restarts == 0
        assert supervisor.generation == 1

    def test_stop_terminates_the_running_worker(self):
        clock = FakeClock()
        worker = FakeWorker(lifetime=10**9, exitcode=0)
        supervisor = make_supervisor([worker], clock)
        supervisor.stop()  # set before run: the loop exits immediately
        supervisor.run()
        # run() never spawned (stop was already set) — now the live
        # path: stop() flips the event mid-watch via the sleep hook.
        clock2 = FakeClock()
        worker2 = FakeWorker(lifetime=10**9, exitcode=0)
        queue = [worker2]
        supervisor2 = Supervisor(
            lambda: queue.pop(0),
            clock=clock2,
            sleep=lambda s: supervisor2.stop(),
            rng=random.Random(0),
        )
        supervisor2.run()
        assert worker2.terminated
        assert supervisor2.worker is None


class TestBreaker:
    def test_crash_loop_trips_the_breaker(self):
        clock = FakeClock()
        workers = [FakeWorker(lifetime=0, exitcode=1) for __ in range(10)]
        supervisor = make_supervisor(
            workers,
            clock,
            backoff=BackoffPolicy(base_s=0.01, jitter=0.0),
            breaker=BreakerPolicy(max_crashes=3, window_s=30.0),
        )
        with pytest.raises(CrashLoopError) as info:
            supervisor.run()
        assert "4 crashes" in str(info.value)
        assert supervisor.restarts == 3  # the 4th crash tripped it

    def test_slow_crashes_outside_the_window_never_trip(self):
        # One crash every 40s against a 30s window: the deque is pruned
        # each time, so the breaker never sees more than one crash.
        clock = FakeClock()
        crashers = [FakeWorker(lifetime=0, exitcode=1) for __ in range(6)]
        clean = FakeWorker(lifetime=0, exitcode=0)
        supervisor = make_supervisor(
            crashers + [clean],
            clock,
            breaker=BreakerPolicy(max_crashes=2, window_s=30.0),
        )
        original_record = supervisor._record_crash

        def record_with_gap():
            clock.advance(40.0)
            original_record()

        supervisor._record_crash = record_with_gap
        supervisor.run()
        assert supervisor.restarts == 6


class TestHealthWatchdog:
    def run_with_health(self, health_results, *, failures=3):
        """Drive one worker under a scripted health probe; returns
        (worker, supervisor)."""
        clock = FakeClock()
        worker = FakeWorker(lifetime=10**9, exitcode=0)
        clean = FakeWorker(lifetime=0, exitcode=0)
        queue = [worker, clean]
        script = list(health_results)

        def health():
            if not script:
                # Script exhausted with the worker still healthy: end
                # the scenario instead of watching forever.
                supervisor.stop()
                return True
            return script.pop(0)

        def sleep(seconds):
            clock.advance(max(seconds, 1.0))  # step past the interval

        supervisor = Supervisor(
            lambda: queue.pop(0),
            health_check=health,
            health_interval_s=1.0,
            health_failures=failures,
            health_grace_s=0.0,
            clock=clock,
            sleep=sleep,
            rng=random.Random(0),
            backoff=BackoffPolicy(base_s=0.01, jitter=0.0),
        )
        supervisor.run()
        return worker, supervisor

    def test_consecutive_health_misses_restart_the_worker(self):
        worker, supervisor = self.run_with_health(
            [True, False, False, False], failures=3
        )
        assert worker.terminated  # live-but-unresponsive == crash
        assert supervisor.restarts == 1
        assert supervisor.generation == 2

    def test_recovering_probe_resets_the_miss_count(self):
        worker, supervisor = self.run_with_health(
            [False, False, True, False, False, True] + [True] * 3,
            failures=3,
        )
        # Misses never reached 3 in a row: no restart; the worker ran
        # until the scripted probe list was exhausted and we stopped it.
        assert not worker.terminated or supervisor.restarts == 0

    def test_health_failures_validated(self):
        with pytest.raises(ValueError):
            Supervisor(lambda: FakeWorker(), health_failures=0)


class TestRealWorker:
    """One end-to-end check with a real multiprocessing child; the
    scripted tests above cover the logic, this covers the plumbing."""

    def test_serve_spawn_worker_answers_ping_and_drains(self, tmp_path):
        import json
        import socket as socketlib

        from repro.io import schema_to_dict
        from repro.server import serve_spawn, tcp_ping
        from repro.workloads import id_chain_workload

        schema_path = tmp_path / "schema.json"
        schema_path.write_text(
            json.dumps(schema_to_dict(id_chain_workload(3).schema))
        )
        with socketlib.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        spawn = serve_spawn(
            [str(schema_path), "--port", str(port), "--drain-timeout", "5"]
        )
        worker = spawn()
        try:
            deadline = 30.0
            import time as timelib

            start = timelib.monotonic()
            while timelib.monotonic() - start < deadline:
                if tcp_ping("127.0.0.1", port, timeout=0.5):
                    break
                timelib.sleep(0.1)
            else:
                raise AssertionError("worker never became healthy")
            worker.terminate()  # SIGTERM -> graceful drain
            worker.join(15.0)
            assert not worker.is_alive()
            assert worker.exitcode == 0  # clean drain, clean exit
        finally:
            if worker.is_alive():
                worker.kill()
                worker.join(5.0)
