"""CI smoke: seeded fault injection against a live server.

Run directly (``PYTHONPATH=src python tests/faults/smoke_chaos.py``):
starts a real `DecideServer` on an ephemeral port, drives three seeded
chaos sessions through the `tests.faults.chaos` transport — malformed
JSON, truncated and oversized frames, mid-frame disconnects, slow
writes, deadline expiries — and asserts the resilience invariant:
every reply is either a correct decision (fresh-session oracle) or a
structured error of a known type, the post-chaos pool still agrees
with the oracle (no cache poisoning), and shutdown is clean.  Exit
code 0 on success — the CI fault-smoke step gates on it.
"""

import asyncio
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(__file__)))

from faults.chaos import run_chaos, verify  # noqa: E402

from repro.io import schema_to_dict  # noqa: E402
from repro.server import DecideServer, SessionPool  # noqa: E402
from repro.service import Session  # noqa: E402
from repro.workloads import (  # noqa: E402
    lookup_chain_workload,
    university_schema,
)

SEEDS = (11, 22, 33)
ROUNDS = 12

QUERIES = [
    "Udirectory(i, a, p)",
    "Prof(i, n, 10000)",
    "Q(n) :- Prof(i, n, s)",
    "Q() :- Udirectory(i, a, p), Prof(i, n, s)",
]


async def main() -> int:
    oracle = {
        q: Session(university_schema(ud_bound=100)).decide(q).decision
        for q in QUERIES
    }
    slow_workload = lookup_chain_workload(6)
    slow_request = {
        "schema": schema_to_dict(slow_workload.schema),
        "query": repr(slow_workload.query),
    }
    pool = SessionPool(university_schema(ud_bound=100), pool_size=2)
    server = await DecideServer(pool, port=0, workers=4).start()
    host, port = server.address
    print(f"chaos target on {host}:{port}")
    try:
        total = 0
        for seed in SEEDS:
            records = await run_chaos(
                host,
                port,
                seed=seed,
                rounds=ROUNDS,
                queries=QUERIES,
                slow_request=slow_request,
            )
            total += len(records)
            violations = verify(records, oracle)
            if violations:
                for violation in violations:
                    print(f"FAIL seed {seed}: {violation}", file=sys.stderr)
                return 1
            print(f"ok: seed {seed}, {len(records)} actions, 0 violations")
        # The battered pool still answers like a fresh one.
        reader, writer = await asyncio.open_connection(host, port)
        for query in QUERIES:
            writer.write(json.dumps({"query": query}).encode() + b"\n")
            await writer.drain()
            reply = json.loads(
                await asyncio.wait_for(reader.readline(), timeout=60)
            )
            if reply.get("decision") != oracle[query]:
                print(
                    f"FAIL: post-chaos pool disagrees on {query!r}: "
                    f"{reply}",
                    file=sys.stderr,
                )
                return 1
        writer.close()
        await writer.wait_closed()
        print(f"ok: {total} chaos actions, post-chaos pool unpoisoned")
    finally:
        await server.close(drain_timeout=10.0)
    try:
        await asyncio.open_connection(host, port)
    except OSError:
        print("ok: clean shutdown, listener closed")
        return 0
    print("FAIL: server still accepting after close", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
