"""End-to-end graceful drain: a real ``python -m repro serve`` child,
a real in-flight request, a real SIGTERM.

The contract under test is the CLI's: on SIGTERM the server stops
accepting, finishes (or deadline-cancels) in-flight work, flushes each
connection's final frame, and exits 0 within ``--drain-timeout``.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.io import schema_to_dict
from repro.workloads import lookup_chain_workload

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def start_server(tmp_path, depth, *extra_args):
    """Spawn ``python -m repro serve`` on an ephemeral port; returns
    (process, host, port) once the banner confirms it is listening."""
    workload = lookup_chain_workload(depth)
    schema_path = tmp_path / "schema.json"
    schema_path.write_text(json.dumps(schema_to_dict(workload.schema)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            str(schema_path),
            "--port",
            "0",
            *extra_args,
        ],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30
    banner = ""
    while time.monotonic() < deadline:
        banner = process.stderr.readline()
        if banner.startswith("serving on "):
            break
        if process.poll() is not None:
            raise AssertionError(
                f"server died before binding: {process.stderr.read()}"
            )
    else:
        raise AssertionError("no serving banner within 30s")
    address = banner.split()[2]
    host, port = address.rsplit(":", 1)
    return process, workload, host, int(port)


def terminate(process):
    if process.poll() is None:
        process.kill()
    process.stderr.close()
    process.wait(10)


class TestSigtermDrain:
    def test_in_flight_request_finishes_and_exit_is_clean(self, tmp_path):
        # lookup_chain(5) decides in ~0.3s: SIGTERM lands mid-decision,
        # the generous drain budget lets it finish naturally.
        process, workload, host, port = start_server(
            tmp_path, 5, "--drain-timeout", "30"
        )
        try:
            with socket.create_connection((host, port), timeout=30) as conn:
                conn.settimeout(30)
                frame = {"query": repr(workload.query), "id": "inflight"}
                conn.sendall(json.dumps(frame).encode() + b"\n")
                time.sleep(0.1)  # let the worker pick the frame up
                process.send_signal(signal.SIGTERM)
                stream = conn.makefile("rb")
                reply = json.loads(stream.readline())
                assert reply.get("decision") in ("yes", "no")
                assert reply["id"] == "inflight"
                assert stream.readline() == b""  # then the close
            assert process.wait(timeout=30) == 0
            drained = process.stderr.read()
            assert "draining" in drained
            assert "shutdown complete" in drained
        finally:
            terminate(process)

    def test_slow_request_is_deadline_cancelled_within_drain_timeout(
        self, tmp_path
    ):
        # lookup_chain(6) runs for seconds; a 1s drain budget cancels
        # it halfway through and the client still gets a final frame.
        process, workload, host, port = start_server(
            tmp_path, 6, "--drain-timeout", "1"
        )
        try:
            with socket.create_connection((host, port), timeout=30) as conn:
                conn.settimeout(30)
                frame = {"query": repr(workload.query), "id": "doomed"}
                conn.sendall(json.dumps(frame).encode() + b"\n")
                time.sleep(0.3)
                sigterm_at = time.monotonic()
                process.send_signal(signal.SIGTERM)
                stream = conn.makefile("rb")
                reply = json.loads(stream.readline())
                assert reply["error"]["type"] == "DeadlineExceeded"
                assert reply["error"]["retryable"] is True
                assert "drain" in reply["error"]["message"]
                assert reply["id"] == "doomed"
            assert process.wait(timeout=30) == 0
            # Exit landed within the drain timeout (plus slack for the
            # interpreter to unwind), not after the full computation.
            assert time.monotonic() - sigterm_at < 10.0
        finally:
            terminate(process)

    def test_idle_server_exits_promptly_on_sigterm(self, tmp_path):
        process, __, host, port = start_server(
            tmp_path, 3, "--drain-timeout", "10"
        )
        try:
            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=15) == 0
        finally:
            terminate(process)


@pytest.mark.slow
class TestSupervisorEndToEnd:
    def test_supervise_restarts_a_killed_worker(self, tmp_path):
        """Kill -9 the worker: the supervisor must bring a fresh one up
        on the same port."""
        workload = lookup_chain_workload(3)
        schema_path = tmp_path / "schema.json"
        schema_path.write_text(
            json.dumps(schema_to_dict(workload.schema))
        )
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "supervise",
                str(schema_path),
                "--port",
                str(port),
                "--health-interval",
                "0.2",
                "--backoff-base",
                "0.05",
            ],
            env=env,
            stderr=subprocess.DEVNULL,
            text=True,
        )

        def ping():
            try:
                with socket.create_connection(
                    ("127.0.0.1", port), timeout=1
                ) as conn:
                    conn.settimeout(1)
                    conn.sendall(b'{"op": "stats"}\n')
                    data = b""
                    while not data.endswith(b"\n"):
                        chunk = conn.recv(4096)
                        if not chunk:
                            return None
                        data += chunk
                return json.loads(data)
            except OSError:
                return None

        def wait_healthy(deadline_s=30):
            deadline = time.monotonic() + deadline_s
            while time.monotonic() < deadline:
                stats = ping()
                if stats is not None:
                    return stats
                time.sleep(0.1)
            raise AssertionError("worker never became healthy")

        try:
            first = wait_healthy()
            assert first["server"]["workers"] >= 1
            # Find and SIGKILL the worker (the supervisor's only child).
            children = subprocess.run(
                ["pgrep", "-P", str(process.pid)],
                capture_output=True,
                text=True,
            ).stdout.split()
            assert children, "no worker child found"
            os.kill(int(children[0]), signal.SIGKILL)
            # A fresh worker (fresh counters) comes back on the port.
            second = wait_healthy()
            assert second["server"]["connections"] <= first["server"][
                "connections"
            ] + 1
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(10)
