"""Cross-check: parallel trigger collection ≡ sequential, exactly.

`chase(..., parallelism=k)` shards each round's pending triggers by
rule across a thread pool, but merges per-rule results in rule order
before any fact is added and assigns null labels at firing time in
merged order.  The result must therefore be *identical* — not just
equivalent up to null renaming — for every parallelism setting: same
facts, same null labels, same outcome, round count, recorded steps,
and trigger statistics.  These tests pin that down on randomized
multi-rule workloads under both policies; a seeded sample always runs
in tier 1, the broad sweep is marked ``slow``.
"""

import random

import pytest

from repro.chase import chase
from repro.constraints import EGD, fd, tgd
from repro.data import Instance
from repro.logic import Atom, Constant, Null
from repro.logic.atoms import atom
from repro.logic.terms import NullFactory

RELATIONS = {"R": 2, "S": 2, "T": 1, "U": 3}

#: Rule templates mixing full/existential TGDs so several rules are
#: active per round (one worker per rule — a single-rule workload
#: would never exercise the pool).
TEMPLATES = [
    "R(x, y) -> S(y, x)",
    "S(x, y) -> R(x, y)",
    "R(x, y), S(y, z) -> R(x, z)",
    "T(x) -> R(x, z)",
    "R(x, y) -> T(y)",
    "R(x, y) -> exists z. S(y, z)",
    "S(x, y) -> exists z. U(x, y, z)",
    "U(x, y, z) -> R(x, z)",
    "T(x) -> exists w. U(x, w, w)",
]


def _random_workload(rng: random.Random):
    constants = [Constant(f"c{i}") for i in range(rng.randint(2, 5))]
    nulls = [Null(f"seed{i}") for i in range(rng.randint(0, 3))]
    terms = constants + nulls

    facts = []
    for __ in range(rng.randint(2, 10)):
        relation = rng.choice(list(RELATIONS))
        arity = RELATIONS[relation]
        facts.append(
            Atom(relation, tuple(rng.choice(terms) for __ in range(arity)))
        )
    instance = Instance(facts)

    rules = [
        tgd(template)
        for template in rng.sample(TEMPLATES, rng.randint(2, 6))
    ]
    if rng.random() < 0.6:
        rules.append(fd("R", [0], 1))
    if rng.random() < 0.4:
        rules.append(fd("U", [0, 1], 2))
    if rng.random() < 0.3:
        body = (atom("S", "x", "y"), atom("S", "y", "x"))
        rules.append(EGD(body, body[0].terms[0], body[0].terms[1]))
    return instance, rules


def _run(instance, rules, *, policy, parallelism, record_steps=True):
    return chase(
        instance,
        rules,
        policy=policy,
        max_rounds=6,
        max_facts=120,
        record_steps=record_steps,
        parallelism=parallelism,
        null_factory=NullFactory(prefix="p"),
    )


def _assert_identical(sequential, parallel, context):
    assert sequential.outcome is parallel.outcome, (
        f"{context}: outcome {sequential.outcome} != {parallel.outcome}"
    )
    assert sequential.rounds == parallel.rounds, (
        f"{context}: rounds {sequential.rounds} != {parallel.rounds}"
    )
    # Exact equality, null labels included: the per-rule merge is
    # deterministic, so the fact streams must be byte-identical.
    assert sequential.instance == parallel.instance, (
        f"{context}: instances differ:\n"
        f"sequential: {sequential.instance}\nparallel: {parallel.instance}"
    )
    assert sequential.substitution == parallel.substitution, (
        f"{context}: EGD substitutions differ"
    )
    assert len(sequential.steps) == len(parallel.steps), (
        f"{context}: step counts differ"
    )
    for left, right in zip(sequential.steps, parallel.steps):
        assert left == right, f"{context}: steps diverge: {left} != {right}"
    assert (
        sequential.stats.triggers_enumerated
        == parallel.stats.triggers_enumerated
    ), f"{context}: trigger enumeration counts differ"
    assert sequential.stats.merges == parallel.stats.merges


def check_one_case(seed: int, policy: str, parallelism: int) -> None:
    rng = random.Random(seed)
    instance, rules = _random_workload(rng)
    sequential = _run(instance, rules, policy=policy, parallelism=0)
    parallel = _run(instance, rules, policy=policy, parallelism=parallelism)
    context = f"seed={seed} policy={policy} parallelism={parallelism}"
    _assert_identical(sequential, parallel, context)


class TestSeededParallelEquivalence:
    """Fast deterministic cross-checks (always run in tier 1)."""

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("policy", ["restricted", "semi_oblivious"])
    def test_random_workloads_identical(self, seed, policy):
        check_one_case(seed, policy, parallelism=2)

    def test_transitive_closure_identical(self):
        instance = Instance(
            Atom("E", (Constant(i), Constant(i + 1))) for i in range(16)
        )
        rules = [
            tgd("E(x, y) -> P(x, y)"),
            tgd("P(x, y), E(y, z) -> P(x, z)"),
        ]
        def run(parallelism):
            return chase(
                instance,
                rules,
                policy="restricted",
                max_rounds=40,
                max_facts=500,
                record_steps=True,
                parallelism=parallelism,
                null_factory=NullFactory(prefix="p"),
            )

        sequential = run(0)
        for parallelism in (1, 2, 4, 8):
            _assert_identical(
                sequential, run(parallelism), f"tc p={parallelism}"
            )
        # Full closure of the 17-node chain: C(17, 2) P facts + 16 E.
        assert len(sequential.instance) == 16 + 17 * 16 // 2

    def test_failure_identical(self):
        """An FD clash on constants fails identically in parallel."""
        instance = Instance(
            [
                Atom("R", (Constant("a"), Constant("b"))),
                Atom("R", (Constant("a"), Constant("c"))),
            ]
        )
        rules = [fd("R", [0], 1), tgd("R(x, y) -> S(y, x)")]
        sequential = _run(instance, rules, policy="restricted", parallelism=0)
        parallel = _run(instance, rules, policy="restricted", parallelism=3)
        assert sequential.outcome is parallel.outcome
        assert sequential.failed and parallel.failed

    def test_parallelism_validation(self):
        with pytest.raises(ValueError):
            chase(Instance(), [], parallelism=-1)

    def test_naive_engine_accepts_parallelism(self):
        """The naive engine takes (and ignores) the flag for parity."""
        instance = Instance([Atom("T", (Constant("a"),))])
        rules = [tgd("T(x) -> R(x, x)")]
        result = chase(instance, rules, engine="naive", parallelism=4)
        assert len(result.instance) == 2


@pytest.mark.slow
class TestParallelSweeps:
    """Broad randomized sweeps (nightly; run with ``pytest -m slow``)."""

    @pytest.mark.parametrize("seed", range(60))
    @pytest.mark.parametrize("policy", ["restricted", "semi_oblivious"])
    def test_restricted_and_oblivious_sweep(self, seed, policy):
        check_one_case(70_000 + seed, policy, parallelism=4)

    @pytest.mark.parametrize("seed", range(20))
    def test_oversubscribed_pool_sweep(self, seed):
        """More workers than rules: the pool is clamped, results exact."""
        check_one_case(80_000 + seed, "restricted", parallelism=32)
