"""Cross-check: the delta (semi-naive) engine ≡ the naive reference.

The delta engine must produce identical `ChaseOutcome`s, round counts,
and final instances (up to null renaming) for every policy.  The
randomized sweeps chase generated workloads on both engines and compare;
they are marked ``slow`` and excluded from the tier-1 fast path
(run them with ``pytest -m slow``).  A seeded smoke version always runs.
"""

import random

import pytest

from repro.chase import ChaseOutcome, chase
from repro.constraints import EGD, fd, tgd
from repro.data import Instance
from repro.logic import Atom, Constant, Null, atom
from repro.logic.homomorphism import instance_homomorphism
from repro.logic.terms import NullFactory


#: Above this size, skip the (worst-case exponential) homomorphism
#: check and rely on the structural comparison only.
_HOM_CHECK_LIMIT = 60


def equivalent_up_to_null_renaming(left: Instance, right: Instance) -> bool:
    """Same constants, same per-relation sizes, homomorphic both ways."""
    if len(left) != len(right):
        return False
    if left.constants() != right.constants():
        return False
    if len(left.nulls()) != len(right.nulls()):
        return False
    for relation in set(left.relations()) | set(right.relations()):
        if len(left.facts_of(relation)) != len(right.facts_of(relation)):
            return False
    if len(left) > _HOM_CHECK_LIMIT:
        return True  # structural checks only; hom search can blow up
    return (
        instance_homomorphism(left, right) is not None
        and instance_homomorphism(right, left) is not None
    )


def _random_workload(rng: random.Random):
    """A small random chase workload: instance + mixed dependencies."""
    relations = {"R": 2, "S": 2, "T": 1, "U": 3}
    constants = [Constant(f"c{i}") for i in range(rng.randint(2, 5))]
    nulls = [Null(f"seed{i}") for i in range(rng.randint(0, 3))]
    terms = constants + nulls

    facts = []
    for __ in range(rng.randint(2, 10)):
        relation = rng.choice(list(relations))
        arity = relations[relation]
        facts.append(
            Atom(relation, tuple(rng.choice(terms) for __ in range(arity)))
        )
    instance = Instance(facts)

    rules = []
    templates = [
        "R(x, y) -> S(y, x)",
        "S(x, y) -> R(x, y)",
        "R(x, y), S(y, z) -> R(x, z)",
        "T(x) -> R(x, z)",
        "R(x, y) -> T(y)",
        "R(x, y) -> exists z. S(y, z)",
        "S(x, y) -> exists z. U(x, y, z)",
        "U(x, y, z) -> R(x, z)",
        "T(x) -> exists w. U(x, w, w)",
    ]
    for __ in range(rng.randint(1, 4)):
        rules.append(tgd(rng.choice(templates)))
    if rng.random() < 0.6:
        rules.append(fd("R", [0], 1))
    if rng.random() < 0.4:
        rules.append(fd("U", [0, 1], 2))
    if rng.random() < 0.3:
        body = (atom("S", "x", "y"), atom("S", "y", "x"))
        rules.append(EGD(body, body[0].terms[0], body[0].terms[1]))
    return instance, rules


def _run_both(instance, rules, *, policy, max_rounds=6, max_facts=120):
    results = {}
    for engine in ("naive", "delta"):
        results[engine] = chase(
            instance,
            rules,
            policy=policy,
            max_rounds=max_rounds,
            max_facts=max_facts,
            engine=engine,
            null_factory=NullFactory(prefix=f"{engine[0]}"),
        )
    return results["naive"], results["delta"]


def _assert_equivalent(naive, delta, seed, policy):
    context = f"seed={seed} policy={policy}"
    assert naive.outcome is delta.outcome, (
        f"{context}: outcome {naive.outcome} != {delta.outcome}"
    )
    assert naive.rounds == delta.rounds, (
        f"{context}: rounds {naive.rounds} != {delta.rounds}"
    )
    if naive.outcome in (ChaseOutcome.FAILED, ChaseOutcome.BOUND_REACHED):
        # FAILED: no meaningful instance.  BOUND_REACHED: the fact cap
        # cuts mid-round, and the engines fire a round's triggers in
        # different orders, so they legitimately stop on different
        # subsets of the same round's output — only outcome and round
        # count are comparable.
        return
    assert equivalent_up_to_null_renaming(naive.instance, delta.instance), (
        f"{context}: instances differ:\n"
        f"naive: {naive.instance}\ndelta: {delta.instance}"
    )


class TestSeededEquivalence:
    """Fast deterministic cross-checks (always run)."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("policy", ["restricted", "semi_oblivious"])
    def test_random_workloads_agree(self, seed, policy):
        rng = random.Random(seed)
        instance, rules = _random_workload(rng)
        naive, delta = _run_both(instance, rules, policy=policy)
        _assert_equivalent(naive, delta, seed, policy)

    def test_transitive_closure_agrees(self):
        instance = Instance(
            Atom("E", (Constant(i), Constant(i + 1))) for i in range(12)
        )
        rules = [
            tgd("E(x, y) -> T(x, y)"), tgd("T(x, y), E(y, z) -> T(x, z)")
        ]
        naive, delta = _run_both(instance, rules, policy="restricted")
        _assert_equivalent(naive, delta, "tc", "restricted")
        assert set(naive.instance) == set(delta.instance)  # no nulls at all

    def test_failure_agrees(self):
        instance = Instance(
            [Atom("R", (Constant(1), Constant("a"))),
             Atom("R", (Constant(1), Constant("b")))]
        )
        naive, delta = _run_both(
            instance, [fd("R", [0], 1)], policy="restricted"
        )
        assert naive.outcome is delta.outcome is ChaseOutcome.FAILED

    def test_substitution_constant_targets_agree(self):
        instance = Instance(
            [Atom("R", (Constant(1), Null("a"))),
             Atom("R", (Constant(1), Constant("v")))]
        )
        naive, delta = _run_both(
            instance, [fd("R", [0], 1)], policy="restricted"
        )
        assert naive.substitution == delta.substitution == {
            Null("a"): Constant("v")
        }


@pytest.mark.slow
class TestRandomizedEquivalence:
    """Broad randomized sweeps (excluded from the tier-1 fast path)."""

    @pytest.mark.parametrize("seed", range(250))
    def test_restricted_sweep(self, seed):
        rng = random.Random(10_000 + seed)
        instance, rules = _random_workload(rng)
        naive, delta = _run_both(instance, rules, policy="restricted")
        _assert_equivalent(naive, delta, 10_000 + seed, "restricted")

    @pytest.mark.parametrize("seed", range(120))
    def test_semi_oblivious_sweep(self, seed):
        rng = random.Random(20_000 + seed)
        instance, rules = _random_workload(rng)
        naive, delta = _run_both(
            instance, rules, policy="semi_oblivious", max_rounds=4
        )
        _assert_equivalent(naive, delta, 20_000 + seed, "semi_oblivious")

    @pytest.mark.parametrize("seed", range(60))
    def test_early_stop_agrees(self, seed):
        rng = random.Random(30_000 + seed)
        instance, rules = _random_workload(rng)
        target = Atom("R", (Constant("c0"), Constant("c1")))
        naive, delta = _run_both_with_stop(instance, rules, target)
        assert naive.outcome is delta.outcome
        assert naive.rounds == delta.rounds


def _run_both_with_stop(instance, rules, target):
    results = {}
    for engine in ("naive", "delta"):
        results[engine] = chase(
            instance,
            rules,
            max_rounds=5,
            max_facts=120,
            stop_when=lambda inst: target in inst,
            engine=engine,
            null_factory=NullFactory(prefix=f"{engine[0]}"),
        )
    return results["naive"], results["delta"]


class TestSearchEffort:
    """The delta engine must not search more than the naive engine."""

    def test_delta_searches_at_most_naive(self):
        # Seeded micro-benchmark: transitive closure over a path —
        # many rounds, so naive re-enumeration dominates.
        instance = Instance(
            Atom("E", (Constant(i), Constant(i + 1))) for i in range(12)
        )
        rules = [
            tgd("E(x, y) -> T(x, y)"), tgd("T(x, y), E(y, z) -> T(x, z)")
        ]
        naive, delta = _run_both(instance, rules, policy="restricted")
        assert delta.stats.searches <= naive.stats.searches
        # ... and on a workload this shape, strictly far fewer.
        assert delta.stats.searches < naive.stats.searches / 2

    def test_fd_heavy_workload(self):
        instance = Instance(
            Atom("R", (Constant("k"), Null(f"n{i}"))) for i in range(40)
        )
        naive, delta = _run_both(
            instance, [fd("R", [0], 1)], policy="restricted"
        )
        assert delta.stats.merges == naive.stats.merges == 39
        assert delta.stats.searches <= naive.stats.searches
