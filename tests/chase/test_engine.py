"""Tests for the chase engine."""

import pytest

from repro.chase import ChaseOutcome, chase, satisfies
from repro.constraints import EGD, fd, tgd
from repro.data import Instance
from repro.logic import Constant, Null, atom, ground_atom, boolean_cq, holds


class TestTGDChase:
    def test_full_tgd_fixpoint(self):
        inst = Instance([ground_atom("R", 1), ground_atom("R", 2)])
        result = chase(inst, [tgd("R(x) -> S(x)")])
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert ground_atom("S", 1) in result.instance
        assert ground_atom("S", 2) in result.instance

    def test_existential_creates_null(self):
        inst = Instance([ground_atom("R", 1)])
        result = chase(inst, [tgd("R(x) -> S(x, z)")])
        assert result.outcome is ChaseOutcome.FIXPOINT
        s_facts = result.instance.facts_of("S")
        assert len(s_facts) == 1
        fact = next(iter(s_facts))
        assert fact.terms[0] == Constant(1)
        assert isinstance(fact.terms[1], Null)

    def test_restricted_does_not_fire_satisfied(self):
        inst = Instance([ground_atom("R", 1), ground_atom("S", 1, 7)])
        result = chase(inst, [tgd("R(x) -> S(x, z)")])
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert len(result.instance.facts_of("S")) == 1  # no new null

    def test_semi_oblivious_fires_anyway(self):
        inst = Instance([ground_atom("R", 1), ground_atom("S", 1, 7)])
        result = chase(
            inst, [tgd("R(x) -> S(x, z)")], policy="semi_oblivious",
            max_rounds=5,
        )
        assert len(result.instance.facts_of("S")) == 2

    def test_semi_oblivious_fires_once_per_frontier(self):
        inst = Instance([ground_atom("R", 1)])
        result = chase(
            inst, [tgd("R(x) -> S(x, z)")], policy="semi_oblivious",
            max_rounds=10,
        )
        assert len(result.instance.facts_of("S")) == 1

    def test_divergent_chase_hits_bound(self):
        inst = Instance([ground_atom("R", 1, 2)])
        result = chase(inst, [tgd("R(x, y) -> R(y, z)")], max_rounds=4)
        assert result.outcome is ChaseOutcome.BOUND_REACHED
        assert result.rounds == 4

    def test_max_facts_bound(self):
        inst = Instance([ground_atom("R", 1, 2)])
        result = chase(
            inst, [tgd("R(x, y) -> R(y, z)")], max_rounds=100, max_facts=5
        )
        assert result.outcome is ChaseOutcome.BOUND_REACHED

    def test_result_satisfies_constraints(self):
        rules = [tgd("R(x) -> S(x, z)"), tgd("S(x, y) -> T(y)")]
        inst = Instance([ground_atom("R", 1)])
        result = chase(inst, rules)
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert satisfies(result.instance, rules)

    def test_input_not_mutated(self):
        inst = Instance([ground_atom("R", 1)])
        chase(inst, [tgd("R(x) -> S(x)")])
        assert len(inst) == 1

    def test_steps_recorded(self):
        inst = Instance([ground_atom("R", 1)])
        result = chase(inst, [tgd("R(x) -> S(x)")], record_steps=True)
        assert len(result.steps) == 1
        assert result.steps[0].produced == (ground_atom("S", 1),)


class TestFDChase:
    def test_merge_nulls(self):
        inst = Instance(
            [ground_atom("R", 1, Null("a")), ground_atom("R", 1, Null("b"))]
        )
        result = chase(inst, [fd("R", [0], 1)])
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert len(result.instance) == 1

    def test_merge_prefers_constant(self):
        inst = Instance(
            [ground_atom("R", 1, Null("a")), ground_atom("R", 1, "c")]
        )
        result = chase(inst, [fd("R", [0], 1)])
        assert ground_atom("R", 1, "c") in result.instance
        assert result.substitution.get(Null("a")) == Constant("c")

    def test_constant_clash_fails(self):
        inst = Instance(
            [ground_atom("R", 1, "a"), ground_atom("R", 1, "b")]
        )
        result = chase(inst, [fd("R", [0], 1)])
        assert result.outcome is ChaseOutcome.FAILED

    def test_merge_cascades(self):
        # Merging at position 1 creates a new violation at position 0.
        inst = Instance(
            [
                ground_atom("R", Null("x"), 1),
                ground_atom("R", Null("x"), 2),
            ]
        )
        # FD 0 -> 1 merges 1 and 2? No: constants clash -> FAILED.
        result = chase(inst, [fd("R", [0], 1)])
        assert result.outcome is ChaseOutcome.FAILED

    def test_egd_generic(self):
        rule = EGD(
            (atom("R", "x", "y"), atom("R", "y", "x")),
            atom("R", "x", "y").terms[0],
            atom("R", "x", "y").terms[1],
        )
        inst = Instance(
            [ground_atom("R", Null("a"), Null("b")),
             ground_atom("R", Null("b"), Null("a"))]
        )
        result = chase(inst, [rule])
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert len(result.instance.facts_of("R")) == 1  # collapsed to loop


class TestInteraction:
    def test_tgd_then_fd(self):
        # R(x) -> S(x, z); FD on S forces all z to merge with existing.
        inst = Instance([ground_atom("R", 1), ground_atom("S", 1, "known")])
        rules = [tgd("R(x) -> S(x, z)"), fd("S", [0], 1)]
        result = chase(inst, rules)
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert result.instance.facts_of("S") == frozenset(
            {ground_atom("S", 1, "known")}
        )

    def test_stop_when(self):
        rules = [tgd("R(x, y) -> R(y, z)")]
        inst = Instance([ground_atom("R", 0, 1)])
        target = boolean_cq(
            [atom("R", "a", "b"), atom("R", "b", "c"), atom("R", "c", "d")]
        )
        result = chase(
            inst, rules, max_rounds=50,
            stop_when=lambda i: holds(target, i),
        )
        assert result.outcome is ChaseOutcome.EARLY_STOP
        assert result.rounds <= 3


class TestEngineSelection:
    """The `engine=` knob: delta is the default, naive is the reference."""

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown chase engine"):
            chase(Instance(), [], engine="turbo")

    @pytest.mark.parametrize("engine", ["delta", "naive"])
    def test_basic_scenarios_per_engine(self, engine):
        inst = Instance([ground_atom("R", 1), ground_atom("S", 1, 7)])
        rules = [tgd("R(x) -> S(x, z)"), fd("S", [0], 1)]
        result = chase(inst, rules, engine=engine)
        assert result.outcome is ChaseOutcome.FIXPOINT
        assert result.instance.facts_of("S") == frozenset(
            {ground_atom("S", 1, 7)}
        )
        assert satisfies(result.instance, rules)

    @pytest.mark.parametrize("engine", ["delta", "naive"])
    def test_stats_populated(self, engine):
        inst = Instance([ground_atom("R", 1)])
        result = chase(inst, [tgd("R(x) -> S(x)")], engine=engine)
        assert result.stats.triggers_enumerated >= 1
        assert result.stats.searches >= result.stats.triggers_enumerated


class TestDeterministicMerges:
    """Null-null merges keep a deterministic representative."""

    @pytest.mark.parametrize("engine", ["delta", "naive"])
    def test_older_null_kept(self, engine):
        # n2 is older than n10 by creation order (numeric index parse).
        inst = Instance(
            [ground_atom("R", 1, Null("n10")), ground_atom("R", 1, Null("n2"))]
        )
        result = chase(inst, [fd("R", [0], 1)], engine=engine)
        assert result.substitution == {Null("n10"): Null("n2")}
        assert ground_atom("R", 1, Null("n2")) in result.instance

    @pytest.mark.parametrize("engine", ["delta", "naive"])
    def test_constant_still_beats_age(self, engine):
        inst = Instance(
            [ground_atom("R", 1, Null("n0")), ground_atom("R", 1, "v")]
        )
        result = chase(inst, [fd("R", [0], 1)], engine=engine)
        assert result.substitution == {Null("n0"): Constant("v")}

    @pytest.mark.parametrize("engine", ["delta", "naive"])
    def test_unnumbered_labels_ordered_lexicographically(self, engine):
        inst = Instance(
            [ground_atom("R", 1, Null("beta")), ground_atom("R", 1, Null("alpha"))]
        )
        result = chase(inst, [fd("R", [0], 1)], engine=engine)
        assert result.substitution == {Null("beta"): Null("alpha")}


class TestFrontierDedupAfterMerges:
    """Semi-oblivious dedup when an EGD merge renames a frontier term.

    The frontier-key ledger stores the terms seen at firing time; a
    merge that renames a frontier term makes the rewritten trigger a
    *new* frontier binding, so the rule fires again on it.  Both engines
    must agree on this behaviour.
    """

    @pytest.mark.parametrize("engine", ["delta", "naive"])
    def test_renamed_frontier_refires(self, engine):
        # Round 1: S(n5) fires the observed rule (frontier n5) and also
        # produces R(1, n5), which violates the FD against R(1, n0); the
        # merge keeps n0 (older) and rewrites S(n5) to S(n0).  The
        # rewritten trigger is a *new* frontier binding, so the observed
        # rule fires once more in round 2.
        inst = Instance(
            [
                ground_atom("R", 1, Null("n0")),
                ground_atom("S", Null("n5")),
            ]
        )
        rules = [
            tgd("S(x) -> T(x, w)"),
            tgd("S(x) -> R(1, x)"),
            fd("R", [0], 1),
        ]
        result = chase(
            inst, rules, policy="semi_oblivious", max_rounds=6, engine=engine
        )
        assert result.outcome is ChaseOutcome.FIXPOINT
        t_facts = result.instance.facts_of("T")
        # Two firings: one on the original frontier (its output rewritten
        # to n0 by the merge), one on the renamed frontier.
        assert len(t_facts) == 2
        assert all(f.terms[0] == Null("n0") for f in t_facts)

    @pytest.mark.parametrize("engine", ["delta", "naive"])
    def test_stable_frontier_fires_once(self, engine):
        inst = Instance([ground_atom("S", 3)])
        rules = [tgd("S(x) -> T(x, w)")]
        result = chase(
            inst, rules, policy="semi_oblivious", max_rounds=6, engine=engine
        )
        assert len(result.instance.facts_of("T")) == 1
