"""Tests for accesses, valid outputs, and selections."""

import pytest

from repro.accessibility import (
    AccessRequest,
    EagerSelection,
    ExplicitSelection,
    RandomSelection,
    StingySelection,
    is_valid_output,
    matching_tuples,
    required_output_size,
    valid_outputs,
)
from repro.data import Instance
from repro.logic import Constant, ground_atom
from repro.schema import AccessMethod, Relation


def directory(n=5):
    return Instance(
        ground_atom("D", i, f"addr{i % 2}") for i in range(n)
    )


def method(bound=None, lower=None, inputs=()):
    return AccessMethod(
        "m", Relation("D", 2), frozenset(inputs), bound, lower
    )


class TestMatching:
    def test_input_free_returns_all(self):
        req = AccessRequest(method(), ())
        assert len(matching_tuples(directory(), req)) == 5

    def test_binding_filters(self):
        req = AccessRequest(method(inputs=[1]), (Constant("addr0"),))
        assert len(matching_tuples(directory(), req)) == 3  # ids 0, 2, 4

    def test_binding_arity_checked(self):
        with pytest.raises(ValueError):
            AccessRequest(method(inputs=[0]), ())

    def test_no_match(self):
        req = AccessRequest(method(inputs=[0]), (Constant(99),))
        assert matching_tuples(directory(), req) == frozenset()


class TestValidOutputs:
    def test_exact_method_single_output(self):
        req = AccessRequest(method(), ())
        outputs = list(valid_outputs(directory(3), req))
        assert len(outputs) == 1 and len(outputs[0]) == 3

    def test_result_bound_exact_size(self):
        req = AccessRequest(method(bound=2), ())
        outputs = list(valid_outputs(directory(4), req))
        # C(4,2) = 6 outputs, all of size exactly 2.
        assert len(outputs) == 6
        assert all(len(o) == 2 for o in outputs)

    def test_result_bound_fewer_matches_all_returned(self):
        req = AccessRequest(method(bound=10), ())
        outputs = list(valid_outputs(directory(3), req))
        assert len(outputs) == 1 and len(outputs[0]) == 3

    def test_lower_bound_allows_more(self):
        req = AccessRequest(method(lower=2), ())
        sizes = sorted(len(o) for o in valid_outputs(directory(3), req))
        # Subsets of size 2 and 3: C(3,2) + 1 = 4.
        assert sizes == [2, 2, 2, 3]

    def test_required_output_size(self):
        assert required_output_size(method(), 7) == 7
        assert required_output_size(method(bound=3), 7) == 3
        assert required_output_size(method(bound=3), 2) == 2

    def test_is_valid_output(self):
        inst = directory(4)
        req = AccessRequest(method(bound=2), ())
        all_facts = sorted(inst, key=repr)
        assert is_valid_output(frozenset(all_facts[:2]), inst, req)
        assert not is_valid_output(frozenset(all_facts[:1]), inst, req)
        assert not is_valid_output(frozenset(all_facts[:3]), inst, req)
        foreign = ground_atom("D", 99, "x")
        assert not is_valid_output(frozenset([foreign]), inst, req)


class TestSelections:
    def test_eager_is_memoized(self):
        selection = EagerSelection()
        inst = directory()
        req = AccessRequest(method(bound=2), ())
        first = selection.select(inst, req)
        inst.add(ground_atom("D", 99, "new"))
        assert selection.select(inst, req) == first
        selection.reset()
        # After reset the selection may differ (instance changed).
        assert len(selection.select(inst, req)) == 2

    def test_eager_respects_bound(self):
        selection = EagerSelection()
        out = selection.select(directory(5), AccessRequest(method(bound=2), ()))
        assert len(out) == 2

    def test_stingy_minimum(self):
        out = StingySelection().select(
            directory(5), AccessRequest(method(lower=2), ())
        )
        assert len(out) == 2

    def test_random_seeded_reproducible(self):
        a = RandomSelection(seed=42).select(
            directory(5), AccessRequest(method(bound=3), ())
        )
        b = RandomSelection(seed=42).select(
            directory(5), AccessRequest(method(bound=3), ())
        )
        assert a == b

    def test_random_is_valid(self):
        inst = directory(6)
        req = AccessRequest(method(bound=4), ())
        for seed in range(5):
            out = RandomSelection(seed=seed).select(inst, req)
            assert is_valid_output(out, inst, req)

    def test_explicit(self):
        inst = directory(3)
        req = AccessRequest(method(bound=1), ())
        chosen = frozenset([ground_atom("D", 2, "addr0")])
        selection = ExplicitSelection({("m", ()): chosen})
        assert selection.select(inst, req) == chosen
