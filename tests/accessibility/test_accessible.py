"""Tests for accessible parts and access-validity (paper §3)."""

from repro.accessibility import (
    EagerSelection,
    StingySelection,
    accessible_part,
    is_access_valid,
)
from repro.data import Instance
from repro.logic import Constant, ground_atom
from repro.schema import Schema
from repro.workloads.paperschemas import (
    university_instance,
    university_schema,
)


class TestAccessiblePart:
    def test_input_free_bootstrap(self):
        schema = university_schema(ud_bound=None)
        instance = university_instance(4)
        result = accessible_part(instance, schema)
        # ud dumps the directory; pr then fetches every professor.
        assert len(result.part.facts_of("Udirectory")) == 4
        assert len(result.part.facts_of("Prof")) == 4

    def test_no_input_free_method_empty(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", inputs=[0])
        instance = Instance([ground_atom("R", 1, 2)])
        result = accessible_part(instance, schema)
        assert len(result.part) == 0

    def test_seed_values_unlock_access(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", inputs=[0])
        instance = Instance([ground_atom("R", 1, 2), ground_atom("R", 2, 3)])
        result = accessible_part(
            instance, schema, seed_values=[Constant(1)]
        )
        # Access 1 -> R(1,2); value 2 becomes accessible -> R(2,3).
        assert len(result.part) == 2

    def test_result_bound_limits_part(self):
        schema = university_schema(ud_bound=2)
        instance = university_instance(10)
        result = accessible_part(instance, schema, EagerSelection())
        assert len(result.part.facts_of("Udirectory")) == 2
        # Only the two dumped ids are accessible for pr.
        assert len(result.part.facts_of("Prof")) == 2

    def test_fixpoint_reached(self):
        schema = university_schema(ud_bound=None)
        instance = university_instance(3)
        result = accessible_part(instance, schema)
        assert result.rounds >= 2
        # Re-running from the part adds nothing.
        again = accessible_part(instance, schema)
        assert again.part == result.part


class TestAccessValidity:
    def test_full_part_is_access_valid(self):
        schema = university_schema(ud_bound=None)
        instance = university_instance(4)
        part = accessible_part(instance, schema).part
        assert is_access_valid(part, instance, schema)

    def test_non_subinstance_rejected(self):
        schema = university_schema()
        instance = university_instance(2)
        other = Instance([ground_atom("Prof", 77, "x", 1)])
        assert not is_access_valid(other, instance, schema)

    def test_missing_exact_output_invalid(self):
        # pr has no result bound: a subinstance containing a professor id
        # must contain the professor's full tuple set.
        schema = university_schema(ud_bound=None)
        instance = university_instance(2)
        sub = Instance(
            [ground_atom("Udirectory", Constant(0), Constant("addr0"),
                         Constant("phone0"))]
        )
        # Value 0 is accessible but Prof(0, ...) is missing: pr access on
        # 0 cannot be answered inside the subinstance.
        assert not is_access_valid(sub, instance, schema)

    def test_bounded_method_needs_only_k(self):
        schema = university_schema(ud_bound=1)  # directory dump returns 1
        instance = university_instance(3)
        part = accessible_part(instance, schema, StingySelection()).part
        assert is_access_valid(part, instance, schema)

    def test_empty_subinstance_access_valid_when_no_input_free(self):
        schema = Schema()
        schema.add_relation("R", 1)
        schema.add_method("m", "R", inputs=[0])
        instance = Instance([ground_atom("R", 1)])
        assert is_access_valid(Instance(), instance, schema)

    def test_empty_subinstance_invalid_with_input_free_method(self):
        schema = Schema()
        schema.add_relation("R", 1)
        schema.add_method("m", "R", inputs=[])
        instance = Instance([ground_atom("R", 1)])
        assert not is_access_valid(Instance(), instance, schema)
