"""Tests for the universal dynamic plan."""

from repro.accessibility import (
    EagerSelection,
    RandomSelection,
    StingySelection,
)
from repro.answerability import UniversalPlan
from repro.data import Instance
from repro.logic import Constant, evaluate_cq, ground_atom, holds
from repro.workloads.paperschemas import (
    example_6_1_schema,
    query_example_6_1,
    query_q1,
    query_q1_boolean,
    query_q2,
    query_q3,
    university_instance,
    university_schema,
)


def all_selections():
    return [
        EagerSelection(),
        StingySelection(),
        RandomSelection(seed=1),
        RandomSelection(seed=7),
    ]


class TestAnswerableQueries:
    def test_q2_bounded(self):
        schema = university_schema(ud_bound=2)
        plan = UniversalPlan(schema, query_q2())
        for instance in (Instance(), university_instance(6)):
            expected = holds(query_q2(), instance)
            for selection in all_selections():
                selection.reset()
                assert plan.holds(instance, selection) == expected

    def test_q1_unbounded(self):
        schema = university_schema(ud_bound=None)
        plan = UniversalPlan(schema, query_q1())
        instance = university_instance(6)
        expected = evaluate_cq(query_q1(), instance)
        for selection in all_selections():
            selection.reset()
            assert plan.answers(instance, selection) == expected

    def test_q3_with_fd(self):
        schema = university_schema(
            ud_bound=2, with_ud2=True, with_fd=True
        )
        instance = Instance(
            [
                ground_atom("Udirectory", 12345, "home", "p1"),
                ground_atom("Udirectory", 12345, "home", "p2"),
                ground_atom("Prof", 12345, "ada", 10000),
            ]
        )
        assert schema.satisfied_by(instance)
        plan = UniversalPlan(schema, query_q3())
        for selection in all_selections():
            selection.reset()
            assert plan.answers(instance, selection) == frozenset(
                {(Constant("home"),)}
            )

    def test_example_6_1_constraint_reasoning(self):
        """The universal plan must *reason*: Q = ∃T(y) follows from S
        being nonempty via T(y) ∧ S(x) → T(x)?  No — it follows when the
        accessed S-tuple is in T, checked via mtT; the chase of the
        accessed part under the constraints yields certainty."""
        schema = example_6_1_schema()
        instance = Instance(
            [
                ground_atom("S", "a"),
                ground_atom("T", "a"),
                ground_atom("T", "b"),
            ]
        )
        assert schema.satisfied_by(instance)
        plan = UniversalPlan(schema, query_example_6_1())
        for selection in all_selections():
            selection.reset()
            assert plan.holds(instance, selection)

    def test_soundness_on_non_answerable_query(self):
        """For non-answerable queries the plan stays sound (⊆ Q(I)), it
        just may miss answers under stingy selections."""
        schema = university_schema(ud_bound=1)
        plan = UniversalPlan(schema, query_q1_boolean())
        instance = university_instance(6)
        for selection in all_selections():
            selection.reset()
            run = plan.run(instance, selection)
            if run.answers:
                assert holds(query_q1_boolean(), instance)

    def test_empty_instance(self):
        schema = university_schema(ud_bound=2)
        plan = UniversalPlan(schema, query_q2())
        run = plan.run(Instance())
        assert run.answers == frozenset()
        assert run.definitive


class TestDiagnostics:
    def test_run_reports_counts(self):
        schema = university_schema(ud_bound=None)
        plan = UniversalPlan(schema, query_q2())
        run = plan.run(university_instance(4))
        assert run.accessed_facts == 8  # 4 directory rows + 4 professors
        assert run.access_rounds >= 2
