"""Tests for the generated-name conventions."""

import pytest

from repro.answerability import is_primed, primed, unprimed
from repro.answerability.naming import (
    check_user_relation_name,
    existence_check_relation,
    fd_view_relation,
)


class TestPriming:
    def test_roundtrip(self):
        assert unprimed(primed("R")) == "R"

    def test_is_primed(self):
        assert is_primed(primed("R"))
        assert not is_primed("R")

    def test_unprimed_rejects_plain(self):
        with pytest.raises(ValueError):
            unprimed("R")


class TestViewNames:
    def test_distinct_per_method(self):
        a = existence_check_relation("R", "m1")
        b = existence_check_relation("R", "m2")
        assert a != b

    def test_families_distinct(self):
        assert existence_check_relation("R", "m") != fd_view_relation("R", "m")

    def test_user_name_guard(self):
        check_user_relation_name("Udirectory")
        with pytest.raises(ValueError):
            check_user_relation_name("R__prime")
