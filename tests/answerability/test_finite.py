"""Tests for finite monotone answerability (Prop 2.2 / Cor 7.3)."""

from repro.answerability.finite import (
    decide_finite_monotone_answerability,
    schema_with_finite_closure,
)
from repro.answerability import decide_monotone_answerability
from repro.constraints import fd, inclusion_dependency
from repro.logic import Constant, atom, boolean_cq
from repro.schema import Schema
from repro.workloads.paperschemas import (
    query_q1_boolean,
    query_q2,
    university_schema,
)


def squeeze_schema(bound=3):
    """R(emp, mgr) with R[emp] ⊆ R[mgr] and FD emp → mgr.

    In finite models the cycle rule forces R[mgr] ⊆ R[emp] and
    FD mgr → emp.  The by-mgr method with a result bound then becomes
    reliable on the emp column *finitely*.
    """
    schema = Schema()
    schema.add_relation("R", 2)
    schema.add_method("by_mgr", "R", inputs=[1], result_bound=bound)
    schema.add_constraint(
        inclusion_dependency("R", (0,), "R", (1,), 2, 2)
    )
    schema.add_constraint(fd("R", [0], 1))
    return schema


class TestDelegation:
    def test_ids_delegate(self):
        schema = university_schema(ud_bound=100)
        for query in (query_q2(), query_q1_boolean()):
            finite = decide_finite_monotone_answerability(schema, query)
            unrestricted = decide_monotone_answerability(schema, query)
            assert finite.truth == unrestricted.truth
            assert "delegated" in finite.decision.detail["finite_variant"]


class TestFiniteClosureRoute:
    def test_closure_schema_has_reversals(self):
        closed = schema_with_finite_closure(squeeze_schema())
        reverse = inclusion_dependency("R", (1,), "R", (0,), 2, 2)
        profiles = {repr(c) for c in closed.constraints}
        assert repr(reverse) in profiles
        assert fd("R", [1], 0) in closed.constraints

    def test_finite_only_answerability(self):
        """A query answerable finitely but not unrestrictedly.

        Q: R('e0', 'm') — is e0 managed by m?  The by-mgr access with
        bound 1 returns *some* employee of 'm'; over unrestricted
        instances many employees may share the manager, so the returned
        tuple can hide e0: NOT answerable.  Finitely, the cycle rule
        gives FD mgr → emp, so 'm' has at most one employee and the
        single returned tuple settles the query: answerable."""
        schema = squeeze_schema(bound=1)
        query = boolean_cq(
            [atom("R", Constant("e0"), Constant("m"))], name="Qmgr"
        )
        unrestricted = decide_monotone_answerability(schema, query)
        finite = decide_finite_monotone_answerability(schema, query)
        # The unrestricted chase diverges on the cyclic UID (an honest
        # UNKNOWN at the cap); what matters is that the finite closure
        # *proves* the finite variant, which the unrestricted route
        # cannot.
        assert not unrestricted.is_yes
        assert finite.is_yes
        assert finite.route == "finite-closure+choice"

    def test_finite_closure_preserves_answerable_cases(self):
        schema = university_schema(
            ud_bound=100, with_ud2=True, with_fd=True
        )
        from repro.workloads.paperschemas import query_q3_boolean

        finite = decide_finite_monotone_answerability(
            schema, query_q3_boolean()
        )
        assert finite.is_yes


class TestUnsupported:
    def test_mixed_with_bounds_unknown(self):
        from repro.constraints import tgd

        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_relation("S", 3)
        schema.add_method("m", "R", result_bound=2)
        schema.add_constraint(tgd("R(x, y) -> S(x, y, z)"))
        schema.add_constraint(fd("S", [0], 1))
        result = decide_finite_monotone_answerability(
            schema, boolean_cq([atom("R", "x", "y")])
        )
        assert result.is_unknown
