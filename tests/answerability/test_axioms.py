"""Tests for the AMonDet containment construction (Prop 3.4)."""

import pytest

from repro.answerability import (
    ACCESSIBLE,
    AxiomError,
    build_amondet_containment,
    prime_constraint,
    prime_query,
    primed,
)
from repro.constraints import TGD, fd, tgd
from repro.logic import Constant, atom, boolean_cq, cq, Variable
from repro.workloads.paperschemas import (
    query_q1_boolean,
    query_q2,
    university_schema,
)


class TestPriming:
    def test_prime_query(self):
        q = boolean_cq([atom("Prof", "i", "n", "s")])
        q2 = prime_query(q)
        assert q2.atoms[0].relation == primed("Prof")

    def test_prime_tgd(self):
        rule = tgd("R(x) -> S(x)")
        rule2 = prime_constraint(rule)
        assert rule2.body[0].relation == primed("R")
        assert rule2.head[0].relation == primed("S")

    def test_prime_fd(self):
        dependency = prime_constraint(fd("R", [0], 1))
        assert dependency.relation == primed("R")


class TestContainmentConstruction:
    def test_rejects_non_boolean(self):
        schema = university_schema()
        with pytest.raises(AxiomError):
            build_amondet_containment(
                schema,
                cq([atom("Prof", "i", "n", "s")], free=[Variable("n")]),
            )

    def test_rejects_unsimplified_bounds(self):
        schema = university_schema(ud_bound=100)
        with pytest.raises(AxiomError):
            build_amondet_containment(schema, query_q2())

    def test_bound_one_accepted(self):
        schema = university_schema(ud_bound=1)
        problem = build_amondet_containment(schema, query_q2())
        names = [c.name for c in problem.constraints if isinstance(c, TGD)]
        assert "choice_ud" in names

    def test_exact_axioms_inline_shape(self):
        schema = university_schema(ud_bound=None)
        problem = build_amondet_containment(schema, query_q2())
        access_pr = next(
            c
            for c in problem.constraints
            if isinstance(c, TGD) and c.name == "access_pr"
        )
        # Body: accessible(id) ∧ Prof(id, n, s).
        assert {a.relation for a in access_pr.body} == {
            ACCESSIBLE, "Prof"
        }
        # Head: Prof' plus accessible on the two outputs.
        head_relations = [a.relation for a in access_pr.head]
        assert head_relations.count(ACCESSIBLE) == 2
        assert primed("Prof") in head_relations

    def test_constants_made_accessible(self):
        schema = university_schema(ud_bound=None)
        problem = build_amondet_containment(schema, query_q1_boolean())
        accessible_facts = problem.start_instance.facts_of(ACCESSIBLE)
        assert any(
            f.terms[0] == Constant(10000) for f in accessible_facts
        )

    def test_explicit_encoding_has_accessed_relations(self):
        from repro.answerability import accessed

        schema = university_schema(ud_bound=None)
        problem = build_amondet_containment(
            schema, query_q2(), inline=False
        )
        relations = set()
        for c in problem.constraints:
            if isinstance(c, TGD):
                relations.update(a.relation for a in c.body + c.head)
        assert accessed("Prof") in relations
        assert accessed("Udirectory") in relations

    def test_both_encodings_agree(self):
        """The inlined and explicit encodings give the same answer."""
        from repro.answerability.deciders import _chase_containment

        schema = university_schema(ud_bound=None)
        for query in (query_q2(), query_q1_boolean()):
            results = []
            for inline in (True, False):
                problem = build_amondet_containment(
                    schema, query, inline=inline
                )
                results.append(
                    _chase_containment(
                        problem.start_instance,
                        problem.constraints,
                        problem.target,
                        max_rounds=40,
                    ).truth
                )
            assert results[0] == results[1]
