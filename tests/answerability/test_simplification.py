"""Tests for the three schema simplifications (§4, §6)."""

from repro.answerability import (
    choice_simplification,
    elim_ub,
    existence_check_simplification,
    fd_simplification,
)
from repro.constraints import TGD
from repro.workloads.paperschemas import university_schema


class TestElimUB:
    def test_bounds_become_lower_bounds(self):
        schema = elim_ub(university_schema(ud_bound=100))
        method = schema.method("ud")
        assert method.result_bound is None
        assert method.result_lower_bound == 100

    def test_exact_methods_untouched(self):
        schema = elim_ub(university_schema(ud_bound=100))
        assert schema.method("pr").effective_bound() is None


class TestExistenceCheck:
    def test_example_4_1_shape(self):
        """Example 4.1: ud2 becomes a Boolean check on Udirectory_ud2."""
        schema = university_schema(ud_bound=None, with_ud2=True)
        result = existence_check_simplification(schema)
        rewrite = result.rewrites["ud2"]
        assert rewrite.view_relation.arity == 1  # input positions of ud2
        assert rewrite.replacement.is_boolean()
        # The two IDs Udirectory -> V and V -> ∃ Udirectory exist.
        names = {c.name for c in result.schema.constraints
                 if isinstance(c, TGD)}
        assert any(n.endswith("_fwd") for n in names)
        assert any(n.endswith("_bwd") for n in names)

    def test_exact_methods_kept(self):
        schema = university_schema(ud_bound=100)
        result = existence_check_simplification(schema)
        assert result.schema.method("pr") == schema.method("pr")

    def test_no_result_bounds_left(self):
        schema = university_schema(ud_bound=100, with_ud2=True)
        result = existence_check_simplification(schema)
        assert not result.schema.has_result_bounds()

    def test_input_free_method_nullary_view(self):
        schema = university_schema(ud_bound=100)
        result = existence_check_simplification(schema)
        assert result.rewrites["ud"].view_relation.arity == 0


class TestFDSimplification:
    def test_example_4_4_shape(self):
        """Example 4.4: the view keeps (id, address) = DetBy(ud2)."""
        schema = university_schema(
            ud_bound=None, with_ud2=True, with_fd=True
        )
        result = fd_simplification(schema)
        rewrite = result.rewrites["ud2"]
        assert rewrite.view_positions == (0, 1)  # id, address
        assert rewrite.view_relation.arity == 2
        # The view method inputs correspond to the id column.
        assert rewrite.replacement.input_positions == frozenset({0})

    def test_without_fds_equals_existence_check_views(self):
        schema = university_schema(ud_bound=None, with_ud2=True)
        result = fd_simplification(schema)
        # No FDs: DetBy(inputs) = inputs, so the view has input arity.
        assert result.rewrites["ud2"].view_relation.arity == 1

    def test_no_result_bounds_left(self):
        schema = university_schema(
            ud_bound=100, with_ud2=True, with_fd=True
        )
        assert not fd_simplification(schema).schema.has_result_bounds()


class TestChoiceSimplification:
    def test_bounds_become_one(self):
        schema = university_schema(ud_bound=100, with_ud2=True)
        result = choice_simplification(schema)
        assert result.schema.method("ud").result_bound == 1
        assert result.schema.method("ud2").result_bound == 1

    def test_lower_bounds_become_one(self):
        schema = elim_ub(university_schema(ud_bound=100))
        result = choice_simplification(schema)
        assert result.schema.method("ud").result_lower_bound == 1

    def test_constraints_and_relations_unchanged(self):
        schema = university_schema(ud_bound=100)
        result = choice_simplification(schema)
        assert result.schema.constraints == schema.constraints
        assert result.schema.relations == schema.relations
