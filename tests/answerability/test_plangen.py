"""Tests for static plan extraction from chase proofs."""

import pytest

from repro.answerability import (
    PlanExtractionError,
    decide_monotone_answerability,
    generate_static_plan,
)
from repro.data import Instance
from repro.logic import Constant, ground_atom
from repro.plans import AccessCommand, plan_answers_query_on
from repro.workloads.paperschemas import (
    example_6_1_schema,
    query_example_6_1,
    query_q1,
    query_q1_boolean,
    query_q2,
    query_q3_boolean,
    university_instance,
    university_schema,
)


class TestExtraction:
    def test_q2_plan_is_single_access(self):
        """The extracted plan for Q2 mirrors Example 2.1: one input-free
        access on ud, projected to the Boolean answer."""
        schema = university_schema(ud_bound=2)
        plan = generate_static_plan(schema, query_q2())
        assert plan is not None
        accesses = plan.access_commands()
        assert len(accesses) == 1 and accesses[0].method == "ud"
        assert plan.is_monotone()

    def test_q2_plan_correct_exhaustively(self):
        schema = university_schema(ud_bound=2)
        plan = generate_static_plan(schema, query_q2())
        instances = [Instance(), university_instance(5)]
        assert plan_answers_query_on(
            plan, query_q2(), schema, instances,
            per_access_limit=6, total_limit=600,
        )

    def test_q1_unbounded_plan(self):
        schema = university_schema(ud_bound=None)
        plan = generate_static_plan(schema, query_q1_boolean())
        assert plan is not None
        assert {c.method for c in plan.access_commands()} >= {"ud", "pr"}
        instances = [
            university_instance(4),
            university_instance(3, salary_every=100),  # nobody at 10000
            Instance(),
        ]
        assert plan_answers_query_on(
            plan, query_q1_boolean(), schema, instances, exhaustive=False
        )

    def test_non_answerable_returns_none(self):
        schema = university_schema(ud_bound=2)
        assert generate_static_plan(schema, query_q1_boolean()) is None

    def test_q3_fd_plan(self):
        schema = university_schema(ud_bound=2, with_ud2=True, with_fd=True)
        plan = generate_static_plan(schema, query_q3_boolean())
        assert plan is not None
        instance = Instance(
            [
                ground_atom("Udirectory", 12345, "home", "p1"),
                ground_atom("Udirectory", 12345, "home", "p2"),
                ground_atom("Prof", 12345, "ada", 10000),
            ]
        )
        empty = Instance()
        assert plan_answers_query_on(
            plan, query_q3_boolean(), schema, [instance, empty],
            per_access_limit=6, total_limit=800,
        )

    def test_example_6_1_plan(self):
        """The proof-extracted plan matches the paper's: access S (bound
        1), check membership in T."""
        schema = example_6_1_schema()
        plan = generate_static_plan(schema, query_example_6_1())
        assert plan is not None
        methods = [c.method for c in plan.access_commands()]
        assert "mtS" in methods and "mtT" in methods
        yes = Instance(
            [ground_atom("S", "a"), ground_atom("T", "a"),
             ground_atom("T", "b")]
        )
        no = Instance([ground_atom("S", "a")])
        assert schema.satisfied_by(yes)
        assert schema.satisfied_by(no)
        assert plan_answers_query_on(
            plan, query_example_6_1(), schema, [yes, no, Instance()],
            per_access_limit=6, total_limit=600,
        )

    def test_non_boolean_rejected(self):
        schema = university_schema(ud_bound=None)
        with pytest.raises(PlanExtractionError):
            generate_static_plan(schema, query_q1())


class TestAgainstDeciders:
    """generate_static_plan and the deciders agree on the YES side."""

    def test_yes_cases_have_plans(self):
        cases = [
            (university_schema(ud_bound=100), query_q2()),
            (university_schema(ud_bound=None), query_q1_boolean()),
            (example_6_1_schema(), query_example_6_1()),
        ]
        for schema, query in cases:
            assert decide_monotone_answerability(schema, query).is_yes
            assert generate_static_plan(schema, query) is not None
