"""Tests for the answerability deciders on the paper's examples.

Every worked example of the paper appears here with the outcome the
paper states, plus cross-validation between the linearization route,
the chase route, and the semantic falsifier.
"""

import pytest

from repro.answerability import (
    decide_monotone_answerability,
    decide_with_choice_simplification,
    decide_with_fds,
    decide_with_ids,
    decide_with_uids_and_fds,
    find_amondet_counterexample,
    freeze_free_variables,
    minimize_query_under_fds,
)
from repro.constraints import ConstraintClass, fd, tgd
from repro.logic import Constant, Variable, atom, boolean_cq, cq
from repro.schema import Schema
from repro.workloads.paperschemas import (
    example_6_1_schema,
    query_example_6_1,
    query_q1,
    query_q1_boolean,
    query_q2,
    query_q3,
    query_q3_boolean,
    university_schema,
)


class TestPaperExamples:
    def test_example_1_2_unbounded_q1_answerable(self):
        schema = university_schema(ud_bound=None)
        assert decide_monotone_answerability(schema, query_q1_boolean()).is_yes

    def test_example_1_3_bounded_q1_not_answerable(self):
        schema = university_schema(ud_bound=100)
        assert decide_monotone_answerability(schema, query_q1_boolean()).is_no

    def test_example_1_4_q2_answerable_despite_bound(self):
        schema = university_schema(ud_bound=100)
        assert decide_monotone_answerability(schema, query_q2()).is_yes

    def test_example_1_5_q3_answerable_with_fd(self):
        schema = university_schema(
            ud_bound=100, with_ud2=True, with_fd=True
        )
        result = decide_monotone_answerability(schema, query_q3_boolean())
        assert result.is_yes
        assert result.constraint_class is ConstraintClass.UIDS_AND_FDS

    def test_example_1_5_needs_the_fd(self):
        # Without φ, ud2 may return any one of many (addr, phone) rows:
        # the Boolean Q3 *is* still answerable (an existence check
        # suffices), but the address query frozen as a constant is not.
        schema = university_schema(ud_bound=100, with_ud2=True)
        q3_addr = boolean_cq(
            [atom("Udirectory", Constant(12345), Constant("addr"), "p")],
            name="Q3addr",
        )
        assert decide_monotone_answerability(schema, q3_addr).is_no
        with_fd = university_schema(
            ud_bound=100, with_ud2=True, with_fd=True
        )
        assert decide_monotone_answerability(with_fd, q3_addr).is_yes

    def test_example_6_1_choice_needed(self):
        schema = example_6_1_schema()
        result = decide_monotone_answerability(schema, query_example_6_1())
        assert result.is_yes
        assert result.route == "choice-simplification"

    def test_example_6_1_existence_check_insufficient(self):
        """The existence-check simplification loses answerability for
        Example 6.1 — showing the simplification is NOT valid for TGDs."""
        from repro.answerability import existence_check_simplification

        schema = example_6_1_schema()
        simplified = existence_check_simplification(schema).schema
        result = decide_with_choice_simplification(
            simplified, query_example_6_1(), max_rounds=15
        )
        assert not result.is_yes


class TestNonBooleanQueries:
    def test_freeze(self):
        frozen, mapping = freeze_free_variables(query_q1())
        assert frozen.is_boolean()
        assert Variable("n") in mapping

    def test_q1_non_boolean_unbounded(self):
        schema = university_schema(ud_bound=None)
        assert decide_monotone_answerability(schema, query_q1()).is_yes

    def test_q3_non_boolean_with_fd(self):
        schema = university_schema(
            ud_bound=100, with_ud2=True, with_fd=True
        )
        assert decide_monotone_answerability(schema, query_q3()).is_yes

    def test_q3_address_not_answerable_without_fd(self):
        schema = university_schema(ud_bound=100, with_ud2=True)
        # Asking for the address (not just existence) fails without φ.
        assert decide_monotone_answerability(schema, query_q3()).is_no


class TestRouteAgreement:
    """Linearization and chase routes agree whenever both are definitive."""

    def cases(self):
        bounded = university_schema(ud_bound=100)
        unbounded = university_schema(ud_bound=None)
        yield bounded, query_q2()
        yield bounded, query_q1_boolean()
        yield unbounded, query_q1_boolean()
        yield unbounded, query_q2()

    def test_agreement(self):
        for schema, query in self.cases():
            lin = decide_with_ids(schema, query, route="linearization")
            cha = decide_with_ids(schema, query, route="chase", max_rounds=40)
            if not cha.is_unknown:
                assert lin.truth == cha.truth, (schema, query)

    def test_falsifier_confirms_no(self):
        schema = university_schema(ud_bound=2)
        assert decide_monotone_answerability(
            schema, query_q1_boolean()
        ).is_no
        cex = find_amondet_counterexample(schema, query_q1_boolean())
        assert cex is not None and cex.verify(schema, query_q1_boolean())

    def test_falsifier_silent_on_yes(self):
        schema = university_schema(ud_bound=2)
        assert find_amondet_counterexample(schema, query_q2()) is None


class TestFDDecider:
    def fd_schema(self, bound=1):
        schema = Schema()
        schema.add_relation("R", 3)  # R(key, det, other)
        schema.add_method("m", "R", inputs=[0], result_bound=bound)
        schema.add_constraint(fd("R", [0], 1))
        return schema

    def test_determined_part_answerable(self):
        # Q: R(c, d, *) for constants c,d — the FD pins d given c.
        q = boolean_cq(
            [atom("R", Constant("k"), Constant("d"), "z")], name="Qdet"
        )
        assert decide_with_fds(self.fd_schema(), q).is_yes

    def test_underdetermined_part_not_answerable(self):
        # Asking about the third column (not determined): NO.
        q = boolean_cq(
            [atom("R", Constant("k"), "y", Constant("o"))], name="Qother"
        )
        assert decide_with_fds(self.fd_schema(), q).is_no

    def test_bound_value_irrelevant(self):
        q = boolean_cq(
            [atom("R", Constant("k"), Constant("d"), "z")], name="Qdet"
        )
        for bound in (1, 5, 100):
            assert decide_with_fds(self.fd_schema(bound), q).is_yes

    def test_no_constraints_existence_check(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", inputs=[0], result_bound=3)
        yes = boolean_cq([atom("R", Constant(1), "y")])
        assert decide_with_fds(schema, yes).is_yes
        no = boolean_cq([atom("R", Constant(1), Constant(2))])
        assert decide_with_fds(schema, no).is_no


class TestQueryMinimization:
    def test_fd_merges_variables(self):
        q = boolean_cq(
            [atom("R", "x", "y"), atom("R", "x", "z"), atom("S", "y", "z")]
        )
        minimized = minimize_query_under_fds(q, [fd("R", [0], 1)])
        # y and z merged: S atom becomes S(v, v).
        s_atom = next(a for a in minimized.atoms if a.relation == "S")
        assert s_atom.terms[0] == s_atom.terms[1]

    def test_unsatisfiable_query(self):
        q = boolean_cq(
            [
                atom("R", "x", Constant(1)),
                atom("R", "x", Constant(2)),
            ]
        )
        assert minimize_query_under_fds(q, [fd("R", [0], 1)]) is None

    def test_no_fds_identity(self):
        q = boolean_cq([atom("R", "x", "y")])
        minimized = minimize_query_under_fds(q, [])
        assert len(minimized.atoms) == 1


class TestDispatcher:
    def test_routes(self):
        cases = [
            (university_schema(ud_bound=100), "linearization"),
            (
                university_schema(ud_bound=100, with_fd=True),
                "choice+separability",
            ),
            (example_6_1_schema(), "choice-simplification"),
        ]
        for schema, route in cases:
            result = decide_monotone_answerability(schema, query_q2())
            assert result.route == route, schema

    def test_fd_route(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", result_bound=4)
        schema.add_constraint(fd("R", [0], 1))
        result = decide_monotone_answerability(
            schema, boolean_cq([atom("R", "x", "y")])
        )
        assert result.route == "fd-simplification"
        assert result.is_yes  # existence check

    def test_unsupported_mixed_with_bounds(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_relation("S", 2)
        schema.add_method("m", "R", result_bound=4)
        schema.add_constraint(tgd("R(x, y) -> S(y, x)"))
        schema.add_constraint(fd("S", [0], 1))
        result = decide_monotone_answerability(
            schema, boolean_cq([atom("R", "x", "y")])
        )
        assert result.is_unknown

    def test_mixed_without_bounds_direct(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_relation("S", 2)
        schema.add_method("m", "R", inputs=[])
        schema.add_method("ms", "S", inputs=[0])
        schema.add_constraint(tgd("R(x, y) -> S(y, x)"))
        schema.add_constraint(fd("S", [0], 1))
        result = decide_monotone_answerability(
            schema, boolean_cq([atom("R", "x", "y")])
        )
        assert result.route == "direct"
        assert result.is_yes
