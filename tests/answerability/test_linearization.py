"""Tests for the linearization pipeline (Prop 5.5 / App E.3)."""

import pytest

from repro.answerability import linearize, saturate_truncated_axioms
from repro.answerability.linearization import acc_relation, IDShape
from repro.answerability import decide_with_ids, primed
from repro.constraints import inclusion_dependency, tgd
from repro.logic import atom, boolean_cq, Constant
from repro.schema import Schema
from repro.workloads.paperschemas import university_schema, query_q2


def simple_schema():
    """R(a,b) with R[1] ⊆ S[0]; method on R by position 0, method on S
    input-free."""
    schema = Schema()
    schema.add_relation("R", 2)
    schema.add_relation("S", 1)
    schema.add_method("mr", "R", inputs=[0])
    schema.add_method("ms", "S", inputs=[])
    schema.add_constraint(
        inclusion_dependency("R", (1,), "S", (0,), 2, 1)
    )
    return schema


class TestIDShape:
    def test_decomposition(self):
        shape = IDShape.of(tgd("R(x, y) -> S(y, z)"))
        assert shape.body_relation == "R"
        assert shape.head_relation == "S"
        assert shape.exported == ((1, 0),)

    def test_rejects_non_id(self):
        with pytest.raises(ValueError):
            IDShape.of(tgd("R(x), S(x) -> T(x)"))


class TestSaturation:
    def test_access_rule(self):
        schema = simple_schema()
        saturation = saturate_truncated_axioms(
            [c for c in schema.constraints],
            [m for m in schema.methods],
            schema.arities(),
            width=1,
        )
        # With position 0 of R accessible, the method mr exposes all of R.
        assert saturation[("R", frozenset({0}))] == {0, 1}
        # Input-free ms exposes S entirely, from the empty set.
        assert saturation[("S", frozenset())] == {0}

    def test_id_rule_pullback(self):
        # S is fully accessible from nothing (input-free dump), and the
        # ID R[1] ⊆ S[0] puts every R-fact's position-1 value inside S:
        # the derived axiom (R, ∅) ⊢ acc(position 1) holds.  Position 0
        # stays inaccessible (nothing exposes it).
        schema = simple_schema()
        saturation = saturate_truncated_axioms(
            list(schema.constraints),
            list(schema.methods),
            schema.arities(),
            width=1,
        )
        assert saturation[("R", frozenset())] == {1}

    def test_id_rule_through_child_method(self):
        # T(a) with T[0] ⊆ U[0], and a method on U by position 0 that
        # returns position 1... then accessibility flows down, not up:
        # derived axiom on T: {0} stays {0} unless U's method helps a
        # *head* position that is exported back.
        schema = Schema()
        schema.add_relation("T", 2)
        schema.add_relation("U", 2)
        schema.add_method("mu", "U", inputs=[0])
        schema.add_constraint(
            inclusion_dependency("T", (0, 1), "U", (0, 1), 2, 2)
        )
        saturation = saturate_truncated_axioms(
            list(schema.constraints),
            list(schema.methods),
            schema.arities(),
            width=2,
        )
        # acc(T.0) -> child U(x0, x1) has acc(0); method mu exposes U
        # fully; position 1 is exported back to T: so T.1 accessible.
        assert saturation[("T", frozenset({0}))] == {0, 1}


class TestLinearizedRules:
    def test_all_rules_linear_single_head(self):
        schema = university_schema(ud_bound=100)
        system = linearize(schema)
        for rule in system.rules:
            assert len(rule.body) == 1
            assert len(rule.head) == 1

    def test_transfer_rule_present(self):
        schema = simple_schema()
        system = linearize(schema)
        transfer_heads = {
            rule.head[0].relation
            for rule in system.rules
            if rule.is_full()
        }
        assert primed("R") in transfer_heads
        assert primed("S") in transfer_heads

    def test_rb_transfer_for_bounded(self):
        schema = university_schema(ud_bound=100)
        system = linearize(schema)
        rb = [r for r in system.rules if r.name.startswith("rb_transfer")]
        assert rb, "result-bounded ud should produce RB transfer rules"
        # Input-free ud: the head is fully existential.
        assert all(r.existential_variables() for r in rb)

    def test_rejects_non_ids(self):
        schema = Schema()
        schema.add_relation("R", 1)
        schema.add_relation("S", 1)
        schema.add_method("m", "R")
        schema.add_constraint(tgd("R(x), S(x) -> S(x)"))
        with pytest.raises(ValueError):
            linearize(schema)


class TestInitialInstance:
    def test_constants_accessible_drive_subscripts(self):
        schema = simple_schema()
        system = linearize(schema)
        q = boolean_cq([atom("R", Constant("c"), "y")])
        start = system.initial_instance(q)
        # Position 0 holds the accessible constant c; mr then exposes
        # position 1, and S is reachable: expect R_{0} and R_{0,1}? width
        # is 1 so subsets of size <= 1: R_{}, R_{0}, R_{1}.
        rels = set(start.relations())
        assert acc_relation("R", frozenset({0})) in rels
        assert acc_relation("R", frozenset({1})) in rels
        assert acc_relation("R", frozenset()) in rels

    def test_exact_transfer_on_initial_fact(self):
        schema = simple_schema()
        system = linearize(schema)
        q = boolean_cq([atom("R", Constant("c"), "y")])
        start = system.initial_instance(q)
        # mr's input (position 0) is accessible: R' present directly.
        assert start.facts_of(primed("R"))

    def test_no_accessible_values_no_transfer(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", inputs=[0])
        system = linearize(schema)
        q = boolean_cq([atom("R", "x", "y")])  # no constants
        start = system.initial_instance(q)
        assert not start.facts_of(primed("R"))


class TestEndToEnd:
    def test_wide_ids(self):
        """Width-2 IDs exercised end to end."""
        schema = Schema()
        schema.add_relation("A", 2)
        schema.add_relation("B", 3)
        schema.add_method("ma", "A", inputs=[])
        schema.add_method("mb", "B", inputs=[0, 1])
        schema.add_constraint(
            inclusion_dependency("A", (0, 1), "B", (0, 1), 2, 3)
        )
        q = boolean_cq([atom("B", "x", "y", "z")])
        # A dump gives pairs; mb fetches the B-facts the ID promises.
        assert decide_with_ids(schema, q).is_yes is False or True
        decision = decide_with_ids(schema, q)
        # Q = ∃B: not answerable — B facts unrelated to A are invisible.
        assert decision.is_no
        q2 = boolean_cq([atom("A", "x", "y"), atom("B", "x", "y", "z")])
        assert decide_with_ids(schema, q2).is_yes

    def test_cyclic_ids_terminate(self):
        schema = Schema()
        schema.add_relation("R", 2)
        schema.add_method("m", "R", inputs=[0])
        schema.add_constraint(tgd("R(x, y) -> R(y, z)"))
        q = boolean_cq([atom("R", Constant(1), "y")])
        decision = decide_with_ids(schema, q)
        assert not decision.is_unknown  # rewriting terminates
