"""Tests for the semantic falsifier, the blow-up, and Example 8.1."""

from repro.answerability import (
    blow_up_instance,
    candidate_instances_for,
    choice_simplification,
    find_amondet_counterexample,
)
from repro.accessibility import (
    ExplicitSelection,
    accessible_part,
    is_access_valid,
)
from repro.constraints import tgd
from repro.data import Instance
from repro.logic import Constant, atom, boolean_cq, ground_atom, holds
from repro.schema import Schema
from repro.workloads.paperschemas import (
    example_8_1_story,
    query_q1_boolean,
    query_q2,
    university_schema,
)


class TestCandidates:
    def test_candidates_satisfy_constraints_and_query(self):
        schema = university_schema(ud_bound=2)
        q = query_q1_boolean()
        candidates = candidate_instances_for(schema, q)
        assert candidates
        for instance in candidates:
            assert schema.satisfied_by(instance)
            assert holds(q, instance)

    def test_enlargements_grow(self):
        schema = university_schema(ud_bound=2)
        candidates = candidate_instances_for(schema, query_q2())
        sizes = [len(c) for c in candidates]
        assert sizes == sorted(sizes) and len(set(sizes)) > 1


class TestFalsifier:
    def test_finds_counterexample_for_bounded_q1(self):
        schema = university_schema(ud_bound=2)
        q = query_q1_boolean()
        cex = find_amondet_counterexample(schema, q)
        assert cex is not None
        assert cex.verify(schema, q)
        # Structure: Q true in I1, false in I2, common part access-valid.
        assert holds(q, cex.instance_1)
        assert not holds(q, cex.instance_2)

    def test_no_counterexample_for_q2(self):
        schema = university_schema(ud_bound=2)
        assert find_amondet_counterexample(schema, query_q2()) is None

    def test_no_counterexample_without_bounds(self):
        schema = university_schema(ud_bound=None)
        assert (
            find_amondet_counterexample(schema, query_q1_boolean()) is None
        )


class TestBlowUp:
    def test_sizes(self):
        instance = Instance([ground_atom("R", "a", "b")])
        blown = blow_up_instance(instance, 3)
        assert len(blown) == 9

    def test_identity_for_one_copy(self):
        instance = Instance([ground_atom("R", "a", "b")])
        assert blow_up_instance(instance, 1) == instance

    def test_preserves_cq_truth(self):
        q = boolean_cq([atom("R", "x", "y"), atom("R", "y", "z")])
        instance = Instance(
            [ground_atom("R", "a", "b"), ground_atom("R", "b", "c")]
        )
        blown = blow_up_instance(instance, 2)
        assert holds(q, instance) == holds(q, blown)

    def test_preserves_tgd_satisfaction(self):
        rules = [tgd("R(x, y) -> S(y)"), tgd("S(y) -> T(y, z)")]
        instance = Instance(
            [
                ground_atom("R", "a", "b"),
                ground_atom("S", "b"),
                ground_atom("T", "b", "w"),
            ]
        )
        blown = blow_up_instance(instance, 3)
        for rule in rules:
            assert rule.satisfied_by(instance)
            assert rule.satisfied_by(blown)

    def test_blow_up_feeds_result_bounds(self):
        """The point of the blow-up: after cloning, a bounded access has
        more matching tuples than any bound, so small parts stay
        access-valid — the mechanism behind Thm 6.3."""
        schema = Schema()
        schema.add_relation("R", 1)
        schema.add_method("m", "R", inputs=[], result_bound=2)
        instance = Instance([ground_atom("R", "a")])
        blown = blow_up_instance(instance, 3)
        part = accessible_part(blown, schema).part
        assert len(part) == 2
        assert is_access_valid(part, blown, schema)


class TestExample81:
    """Example 8.1: choice simplification fails for general FO."""

    def story_instance(self, overlap):
        instance = Instance()
        for i in range(7):
            instance.add(ground_atom("P", i))
        for i in range(overlap):
            instance.add(ground_atom("U", i))
        return instance

    def test_constraints_checker(self):
        story = example_8_1_story()
        assert story.constraint_checker(self.story_instance(0))
        assert story.constraint_checker(self.story_instance(4))
        assert not story.constraint_checker(self.story_instance(2))
        assert not story.constraint_checker(Instance())

    def test_original_plan_works(self):
        """With bound 5 on mtP and the FO constraints, intersecting the 5
        returned P-tuples with U decides Q: any valid 5-subset of the 7
        P-tuples must hit the ≥4 U-overlap when it exists."""
        story = example_8_1_story()
        for overlap in (0, 4, 5, 7):
            instance = self.story_instance(overlap)
            assert story.constraint_checker(instance)
            expected = overlap > 0
            # Try adversarial 5-subsets: which 5 of the 7 P tuples?
            import itertools

            p_facts = sorted(instance.facts_of("P"), key=repr)
            u_values = {f.terms[0] for f in instance.facts_of("U")}
            for subset in itertools.combinations(p_facts, 5):
                got = any(f.terms[0] in u_values for f in subset)
                assert got == expected

    def test_choice_simplification_breaks_it(self):
        """With bound 1 the returned P-tuple may avoid U although the
        overlap is nonempty: the plan's answer flips."""
        story = example_8_1_story()
        instance = self.story_instance(4)
        # mtP returns a single P tuple outside U (e.g. P(6)): the
        # intersection is empty although Q holds.
        outside = ground_atom("P", 6)
        selection = ExplicitSelection({("mtP", ()): frozenset([outside])})
        schema = choice_simplification(story.schema).schema
        part = accessible_part(instance, schema, selection).part
        u_values = {f.terms[0] for f in part.facts_of("U")}
        p_values = {f.terms[0] for f in part.facts_of("P")}
        assert not (p_values & u_values)  # plan sees "no"
        assert holds(story.query, instance)  # truth is "yes"
