"""Tests for the indexed instance store."""

import pytest

from repro.data import Instance
from repro.logic import Constant, Null, atom, ground_atom


def facts3():
    return [
        ground_atom("R", "a", "b"),
        ground_atom("R", "a", "c"),
        ground_atom("S", "b"),
    ]


class TestInstanceMutation:
    def test_add_and_contains(self):
        inst = Instance()
        assert inst.add(ground_atom("R", 1, 2))
        assert ground_atom("R", 1, 2) in inst
        assert ground_atom("R", 2, 1) not in inst

    def test_add_duplicate_returns_false(self):
        inst = Instance()
        fact = ground_atom("R", 1)
        assert inst.add(fact)
        assert not inst.add(fact)
        assert len(inst) == 1

    def test_add_variable_fact_rejected(self):
        inst = Instance()
        with pytest.raises(ValueError):
            inst.add(atom("R", "x"))

    def test_discard(self):
        inst = Instance(facts3())
        assert inst.discard(ground_atom("R", "a", "b"))
        assert not inst.discard(ground_atom("R", "a", "b"))
        assert len(inst) == 2

    def test_discard_cleans_indexes(self):
        inst = Instance([ground_atom("R", "a", "b")])
        inst.discard(ground_atom("R", "a", "b"))
        assert inst.facts_with("R", 0, Constant("a")) == frozenset()
        assert inst.active_domain() == frozenset()


class TestInstanceQueries:
    def test_facts_of(self):
        inst = Instance(facts3())
        assert len(inst.facts_of("R")) == 2
        assert len(inst.facts_of("S")) == 1
        assert inst.facts_of("T") == frozenset()

    def test_facts_with(self):
        inst = Instance(facts3())
        found = inst.facts_with("R", 0, Constant("a"))
        assert found == frozenset(
            {ground_atom("R", "a", "b"), ground_atom("R", "a", "c")}
        )
        assert inst.facts_with("R", 1, Constant("b")) == frozenset(
            {ground_atom("R", "a", "b")}
        )

    def test_active_domain(self):
        inst = Instance(facts3())
        assert inst.active_domain() == frozenset(
            {Constant("a"), Constant("b"), Constant("c")}
        )

    def test_constants_vs_nulls(self):
        inst = Instance([Instance, ][0:0])  # empty
        inst = Instance()
        inst.add(ground_atom("R", Constant("a"), Null("n")))
        assert inst.constants() == frozenset({Constant("a")})
        assert inst.nulls() == frozenset({Null("n")})

    def test_subinstance(self):
        small = Instance([ground_atom("R", "a", "b")])
        big = Instance(facts3())
        assert small.is_subinstance_of(big)
        assert not big.is_subinstance_of(small)
        assert small <= big

    def test_relations(self):
        assert Instance(facts3()).relations() == ("R", "S")


class TestInstanceTransforms:
    def test_substitute(self):
        inst = Instance([ground_atom("R", Constant("a"), Null("n"))])
        out = inst.substitute({Null("n"): Constant("b")})
        assert ground_atom("R", "a", "b") in out
        # Original untouched.
        assert ground_atom("R", "a", "b") not in inst

    def test_rename_relations(self):
        inst = Instance([ground_atom("R", 1)])
        out = inst.rename_relations(lambda r: r + "2")
        assert ground_atom("R2", 1) in out

    def test_restrict_to_relations(self):
        inst = Instance(facts3())
        out = inst.restrict_to_relations(["S"])
        assert len(out) == 1 and out.relations() == ("S",)

    def test_union(self):
        left = Instance([ground_atom("R", 1)])
        right = Instance([ground_atom("S", 2)])
        merged = left.union(right)
        assert len(merged) == 2
        assert len(left) == 1  # union is non-destructive

    def test_copy_independent(self):
        inst = Instance(facts3())
        clone = inst.copy()
        clone.add(ground_atom("T", 9))
        assert ground_atom("T", 9) not in inst

    def test_equality(self):
        assert Instance(facts3()) == Instance(reversed(facts3()))


class TestOccurrenceIndex:
    def test_facts_containing(self):
        inst = Instance(facts3())
        b = Constant("b")
        assert inst.facts_containing(b) == {
            ground_atom("R", "a", "b"), ground_atom("S", "b")
        }
        assert inst.facts_containing(Constant("zzz")) == frozenset()

    def test_facts_containing_repeated_term(self):
        inst = Instance([ground_atom("R", "a", "a")])
        assert inst.facts_containing(Constant("a")) == {
            ground_atom("R", "a", "a")
        }
        inst.discard(ground_atom("R", "a", "a"))
        assert inst.facts_containing(Constant("a")) == frozenset()

    def test_views_are_live(self):
        inst = Instance([ground_atom("R", "a", "b")])
        view = inst.facts_of("R")
        inst.add(ground_atom("R", "a", "c"))
        assert len(view) == 2  # live view tracks mutation


class TestIndexIntegrityUnderChurn:
    """The incremental indexes must stay exact under add/discard/merge
    churn (the workload the delta chase subjects them to)."""

    def test_random_add_discard_churn(self):
        import random

        rng = random.Random(1234)
        inst = Instance()
        pool = []
        for step in range(600):
            if pool and rng.random() < 0.45:
                fact = rng.choice(pool)
                inst.discard(fact)
            else:
                relation = rng.choice(["R", "S", "T"])
                arity = {"R": 2, "S": 1, "T": 3}[relation]
                terms = tuple(
                    rng.choice(
                        [Constant(rng.randrange(6)), Null(f"n{rng.randrange(6)}")]
                    )
                    for __ in range(arity)
                )
                fact = ground_atom(relation, *[t.value if isinstance(t, Constant) else t for t in terms])
                inst.add(fact)
                pool.append(fact)
            if step % 50 == 0:
                inst.validate_indexes()
        inst.validate_indexes()

    def test_merge_churn_via_chase(self):
        """Chase-driven merges leave every index consistent."""
        import random

        from repro.chase import chase
        from repro.constraints import fd, tgd

        rng = random.Random(99)
        for trial in range(10):
            facts = []
            for __ in range(rng.randint(3, 12)):
                facts.append(
                    ground_atom(
                        "R", rng.randrange(3), Null(f"n{rng.randrange(8)}")
                    )
                )
            inst = Instance(facts)
            result = chase(
                inst,
                [tgd("R(x, y) -> S(y, x)"), fd("R", [0], 1), fd("S", [1], 0)],
                max_rounds=6,
            )
            result.instance.validate_indexes()
            # facts_with agrees with a fresh scan
            for fact in result.instance:
                for position, term in enumerate(fact.terms):
                    assert fact in result.instance.facts_with(
                        fact.relation, position, term
                    )

    def test_substitution_consistency_after_merges(self):
        from repro.chase import chase
        from repro.constraints import fd

        inst = Instance(
            [ground_atom("R", 1, Null(f"n{i}")) for i in range(6)]
        )
        result = chase(inst, [fd("R", [0], 1)])
        result.instance.validate_indexes()
        # All merged nulls resolve to the single kept representative.
        kept = {v for v in result.substitution.values()}
        assert kept == {Null("n0")}
        assert set(result.substitution) == {Null(f"n{i}") for i in range(1, 6)}
