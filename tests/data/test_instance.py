"""Tests for the indexed instance store."""

import pytest

from repro.data import Instance
from repro.logic import Constant, Null, atom, ground_atom


def facts3():
    return [
        ground_atom("R", "a", "b"),
        ground_atom("R", "a", "c"),
        ground_atom("S", "b"),
    ]


class TestInstanceMutation:
    def test_add_and_contains(self):
        inst = Instance()
        assert inst.add(ground_atom("R", 1, 2))
        assert ground_atom("R", 1, 2) in inst
        assert ground_atom("R", 2, 1) not in inst

    def test_add_duplicate_returns_false(self):
        inst = Instance()
        fact = ground_atom("R", 1)
        assert inst.add(fact)
        assert not inst.add(fact)
        assert len(inst) == 1

    def test_add_variable_fact_rejected(self):
        inst = Instance()
        with pytest.raises(ValueError):
            inst.add(atom("R", "x"))

    def test_discard(self):
        inst = Instance(facts3())
        assert inst.discard(ground_atom("R", "a", "b"))
        assert not inst.discard(ground_atom("R", "a", "b"))
        assert len(inst) == 2

    def test_discard_cleans_indexes(self):
        inst = Instance([ground_atom("R", "a", "b")])
        inst.discard(ground_atom("R", "a", "b"))
        assert inst.facts_with("R", 0, Constant("a")) == frozenset()
        assert inst.active_domain() == frozenset()


class TestInstanceQueries:
    def test_facts_of(self):
        inst = Instance(facts3())
        assert len(inst.facts_of("R")) == 2
        assert len(inst.facts_of("S")) == 1
        assert inst.facts_of("T") == frozenset()

    def test_facts_with(self):
        inst = Instance(facts3())
        found = inst.facts_with("R", 0, Constant("a"))
        assert found == frozenset(
            {ground_atom("R", "a", "b"), ground_atom("R", "a", "c")}
        )
        assert inst.facts_with("R", 1, Constant("b")) == frozenset(
            {ground_atom("R", "a", "b")}
        )

    def test_active_domain(self):
        inst = Instance(facts3())
        assert inst.active_domain() == frozenset(
            {Constant("a"), Constant("b"), Constant("c")}
        )

    def test_constants_vs_nulls(self):
        inst = Instance([Instance, ][0:0])  # empty
        inst = Instance()
        inst.add(ground_atom("R", Constant("a"), Null("n")))
        assert inst.constants() == frozenset({Constant("a")})
        assert inst.nulls() == frozenset({Null("n")})

    def test_subinstance(self):
        small = Instance([ground_atom("R", "a", "b")])
        big = Instance(facts3())
        assert small.is_subinstance_of(big)
        assert not big.is_subinstance_of(small)
        assert small <= big

    def test_relations(self):
        assert Instance(facts3()).relations() == ("R", "S")


class TestInstanceTransforms:
    def test_substitute(self):
        inst = Instance([ground_atom("R", Constant("a"), Null("n"))])
        out = inst.substitute({Null("n"): Constant("b")})
        assert ground_atom("R", "a", "b") in out
        # Original untouched.
        assert ground_atom("R", "a", "b") not in inst

    def test_rename_relations(self):
        inst = Instance([ground_atom("R", 1)])
        out = inst.rename_relations(lambda r: r + "2")
        assert ground_atom("R2", 1) in out

    def test_restrict_to_relations(self):
        inst = Instance(facts3())
        out = inst.restrict_to_relations(["S"])
        assert len(out) == 1 and out.relations() == ("S",)

    def test_union(self):
        left = Instance([ground_atom("R", 1)])
        right = Instance([ground_atom("S", 2)])
        merged = left.union(right)
        assert len(merged) == 2
        assert len(left) == 1  # union is non-destructive

    def test_copy_independent(self):
        inst = Instance(facts3())
        clone = inst.copy()
        clone.add(ground_atom("T", 9))
        assert ground_atom("T", 9) not in inst

    def test_equality(self):
        assert Instance(facts3()) == Instance(reversed(facts3()))
