"""Cross-check: the planned matcher ≡ the naive reference search.

The planned matcher (`repro.matching.Matcher`) must enumerate exactly
the homomorphism set of the naive backtracking reference
(`repro.matching.NaiveMatcher`) on every (atom set, instance, seed,
rigidity) combination — plans, caches, and probes are pure speedups.
The randomized sweeps generate mixed workloads (joins, repeated
variables, constants, rigid and flexible nulls, partial seeds) and
compare enumerations, found/has answers, and distinct projections; a
seeded sample always runs in tier 1, the full sweep is marked ``slow``.
The same generator also exercises cache warmth: each case is matched
twice on one matcher, with a mutation in between, so stale cache
entries would be caught as a planned/naive divergence.
"""

import random

import pytest

from repro.data import Instance
from repro.logic import Atom, Constant, Null, Variable
from repro.matching import Matcher, NaiveMatcher

RELATIONS = {"R": 2, "S": 2, "T": 1, "U": 3}


def _random_instance(rng: random.Random) -> Instance:
    constants = [Constant(f"c{i}") for i in range(rng.randint(2, 5))]
    nulls = [Null(f"n{i}") for i in range(rng.randint(0, 3))]
    terms = constants + nulls
    facts = []
    for __ in range(rng.randint(2, 14)):
        relation = rng.choice(list(RELATIONS))
        arity = RELATIONS[relation]
        facts.append(
            Atom(relation, tuple(rng.choice(terms) for __ in range(arity)))
        )
    return Instance(facts)


def _random_atoms(rng: random.Random) -> tuple[Atom, ...]:
    variables = [Variable(f"x{i}") for i in range(4)]
    constants = [Constant(f"c{i}") for i in range(3)]
    nulls = [Null(f"n{i}") for i in range(2)]
    atoms = []
    for __ in range(rng.randint(1, 4)):
        relation = rng.choice(list(RELATIONS))
        arity = RELATIONS[relation]
        atom_terms = []
        for __ in range(arity):
            kind = rng.random()
            if kind < 0.65:
                atom_terms.append(rng.choice(variables))
            elif kind < 0.9:
                atom_terms.append(rng.choice(constants))
            else:
                atom_terms.append(rng.choice(nulls))
        atoms.append(Atom(relation, tuple(atom_terms)))
    return tuple(atoms)


def _random_seed(rng: random.Random, atoms, instance):
    """A partial assignment over the atoms' variables (sometimes empty)."""
    if rng.random() < 0.5:
        return None
    domain = sorted(instance.active_domain(), key=repr)
    if not domain:
        return None
    variables = sorted(
        {t for a in atoms for t in a.terms if isinstance(t, Variable)},
        key=repr,
    )
    if not variables:
        return None
    picked = rng.sample(variables, rng.randint(1, len(variables)))
    return {v: rng.choice(domain) for v in picked}


def _as_set(homomorphisms):
    return {frozenset(h.items()) for h in homomorphisms}


def check_one_case(seed: int) -> None:
    rng = random.Random(seed)
    instance = _random_instance(rng)
    atoms = _random_atoms(rng)
    flexible = rng.random() < 0.3
    partial = _random_seed(rng, atoms, instance)
    planned = Matcher()
    naive = NaiveMatcher()

    def compare() -> None:
        expected = _as_set(
            naive.homomorphisms(
                atoms, instance, seed=partial, flexible_nulls=flexible
            )
        )
        actual = _as_set(
            planned.homomorphisms(
                atoms, instance, seed=partial, flexible_nulls=flexible
            )
        )
        assert actual == expected, (
            f"case {seed}: planned enumerated {len(actual)} assignments, "
            f"naive {len(expected)}\natoms={atoms}\ninstance={instance}\n"
            f"seed={partial} flexible={flexible}"
        )
        assert planned.has(
            atoms, instance, seed=partial, flexible_nulls=flexible
        ) == bool(expected)
        found = planned.find(
            atoms, instance, seed=partial, flexible_nulls=flexible
        )
        assert (found is not None) == bool(expected)
        if found is not None:
            assert frozenset(found.items()) in expected

        variables = sorted(
            {t for a in atoms for t in a.terms if isinstance(t, Variable)},
            key=repr,
        )
        if variables and (partial is None or all(
            v in {t for a in atoms for t in a.terms} for v in partial
        )):
            on = tuple(
                rng.sample(variables, rng.randint(1, len(variables)))
            )
            if partial:
                on = tuple(dict.fromkeys(list(on) + list(partial)))
            expected_keys = {
                tuple(h[t] for t in on)
                for h in naive.homomorphisms(
                    atoms, instance, seed=partial, flexible_nulls=flexible
                )
            }
            actual_matches = list(
                planned.distinct_matches(
                    atoms,
                    instance,
                    on=on,
                    seed=partial,
                    flexible_nulls=flexible,
                )
            )
            actual_keys = {
                tuple(h[t] for t in on) for h in actual_matches
            }
            assert len(actual_matches) == len(actual_keys)
            assert actual_keys == expected_keys, (
                f"case {seed}: distinct projections diverge on {on}"
            )
            for h in actual_matches:
                assert frozenset(h.items()) in _as_set(
                    naive.homomorphisms(
                        atoms,
                        instance,
                        seed=partial,
                        flexible_nulls=flexible,
                    )
                )

    compare()
    # Mutate and compare again on the same matcher: generation-counter
    # invalidation must keep the caches honest.
    mutation = rng.random()
    facts = sorted(instance, key=repr)
    if mutation < 0.5 and facts:
        instance.discard(rng.choice(facts))
    else:
        relation = rng.choice(list(RELATIONS))
        domain = sorted(instance.active_domain(), key=repr) or [
            Constant("c0")
        ]
        instance.add(
            Atom(
                relation,
                tuple(
                    rng.choice(domain)
                    for __ in range(RELATIONS[relation])
                ),
            )
        )
    compare()


@pytest.mark.parametrize("seed", range(40))
def test_planned_equals_naive_sample(seed):
    """Seeded tier-1 sample of the cross-check sweep."""
    check_one_case(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(40, 540))
def test_planned_equals_naive_sweep(seed):
    """The full randomized sweep (nightly; run with ``pytest -m slow``)."""
    check_one_case(seed)
