"""Cross-check: the interned int-slot executor ≡ the object executor.

`Matcher(execution="int")` lowers plans to flat integer step arrays and
runs the backtracking search over interned row tuples; the object
executor walks the same plans over `Atom`/term dictionaries.  Both must
enumerate exactly the same homomorphism sets on every (atom set,
instance, seed, rigidity) combination — the interning round-trip is a
pure representation change.  The randomized sweeps cover joins, repeated
variables, constants, rigid and flexible nulls, and partial seeds; a
seeded sample always runs in tier 1, the broad sweep is marked ``slow``
and also audits the instance's incremental indexes and interning tables
via `Instance.validate_indexes`.

The replan tests cover the stale-plan trap: a plan compiled against a
tiny instance must not pin its join order (or its interned probe
context) forever once the instance has grown orders of magnitude.
"""

import random

import pytest

from repro.data import Instance
from repro.logic import Atom, Constant, Null, Variable
from repro.matching import Matcher
from repro.matching.matcher import DRIFT_FACTOR

RELATIONS = {"R": 2, "S": 2, "T": 1, "U": 3}


def _random_instance(rng: random.Random) -> Instance:
    constants = [Constant(f"c{i}") for i in range(rng.randint(2, 5))]
    nulls = [Null(f"n{i}") for i in range(rng.randint(0, 3))]
    terms = constants + nulls
    facts = []
    for __ in range(rng.randint(2, 14)):
        relation = rng.choice(list(RELATIONS))
        arity = RELATIONS[relation]
        facts.append(
            Atom(relation, tuple(rng.choice(terms) for __ in range(arity)))
        )
    return Instance(facts)


def _random_atoms(rng: random.Random) -> tuple[Atom, ...]:
    variables = [Variable(f"x{i}") for i in range(4)]
    constants = [Constant(f"c{i}") for i in range(3)]
    nulls = [Null(f"n{i}") for i in range(2)]
    atoms = []
    for __ in range(rng.randint(1, 4)):
        relation = rng.choice(list(RELATIONS))
        arity = RELATIONS[relation]
        atom_terms = []
        for __ in range(arity):
            kind = rng.random()
            if kind < 0.65:
                atom_terms.append(rng.choice(variables))
            elif kind < 0.9:
                atom_terms.append(rng.choice(constants))
            else:
                atom_terms.append(rng.choice(nulls))
        atoms.append(Atom(relation, tuple(atom_terms)))
    return tuple(atoms)


def _random_seed(rng: random.Random, atoms, instance):
    if rng.random() < 0.4:
        return None
    variables = sorted(
        {t for a in atoms for t in a.terms if isinstance(t, Variable)},
        key=repr,
    )
    if not variables:
        return None
    domain = sorted(instance.active_domain(), key=repr)
    if not domain:
        return None
    seed = {}
    for variable in rng.sample(variables, rng.randint(1, len(variables))):
        if rng.random() < 0.7:
            seed[variable] = rng.choice(domain)
    return seed or None


def _as_set(homomorphisms):
    return {tuple(sorted(h.items(), key=repr)) for h in homomorphisms}


def check_one_case(seed: int, *, validate: bool = False) -> None:
    rng = random.Random(seed)
    instance = _random_instance(rng)
    atoms = _random_atoms(rng)
    flexible = rng.random() < 0.4
    seeding = _random_seed(rng, atoms, instance)

    int_matcher = Matcher(execution="int")
    obj_matcher = Matcher(execution="object")

    kwargs = dict(seed=seeding, flexible_nulls=flexible)
    int_homs = _as_set(int_matcher.homomorphisms(atoms, instance, **kwargs))
    obj_homs = _as_set(obj_matcher.homomorphisms(atoms, instance, **kwargs))
    assert int_homs == obj_homs, (
        f"case {seed}: int/object executors diverge "
        f"(int={len(int_homs)}, object={len(obj_homs)})"
    )

    assert int_matcher.has(atoms, instance, **kwargs) == bool(obj_homs)
    int_found = int_matcher.find(atoms, instance, **kwargs)
    assert (int_found is not None) == bool(obj_homs)
    if int_found is not None:
        assert tuple(sorted(int_found.items(), key=repr)) in obj_homs

    on = sorted(
        {t for a in atoms for t in a.terms if isinstance(t, Variable)},
        key=repr,
    )[:2]
    if on:
        int_distinct = _as_set(
            int_matcher.distinct_matches(atoms, instance, on=on, **kwargs)
        )
        obj_distinct = _as_set(
            obj_matcher.distinct_matches(atoms, instance, on=on, **kwargs)
        )

        def projections(matches):
            return {
                tuple(dict(m).get(v) for v in on) for m in matches
            }

        assert projections(int_distinct) == projections(obj_distinct)
        assert int_distinct <= int_homs

    if validate:
        instance.validate_indexes()


@pytest.mark.parametrize("seed", range(25))
def test_int_equals_object_sample(seed):
    check_one_case(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(400))
def test_int_equals_object_sweep(seed):
    """Broad randomized sweep (nightly; run with ``pytest -m slow``)."""
    check_one_case(50_000 + seed, validate=True)


def test_null_handling_matches_object_executor():
    """Rigid vs flexible nulls behave identically across executors."""
    n = Null("n0")
    instance = Instance(
        [
            Atom("R", (Constant("a"), n)),
            Atom("R", (n, Constant("b"))),
        ]
    )
    x, y = Variable("x"), Variable("y")
    atoms = (Atom("R", (x, y)),)
    query_null = (Atom("R", (Constant("a"), Null("other"))),)
    for flexible in (False, True):
        int_homs = _as_set(
            Matcher(execution="int").homomorphisms(
                atoms, instance, flexible_nulls=flexible
            )
        )
        obj_homs = _as_set(
            Matcher(execution="object").homomorphisms(
                atoms, instance, flexible_nulls=flexible
            )
        )
        assert int_homs == obj_homs
        # A rigid query null only matches itself; a flexible one unifies.
        assert Matcher(execution="int").has(
            query_null, instance, flexible_nulls=flexible
        ) == Matcher(execution="object").has(
            query_null, instance, flexible_nulls=flexible
        ) == flexible


class TestReplanOnDrift:
    """The stale-plan trap: grow the instance, keep matching correct."""

    def test_grow_then_match_replans(self):
        """A plan compiled on 2 facts survives a 1000-fact growth spurt.

        Adversarial shape: at compile time S is tiny and R is tiny, so
        any join order looks fine; afterwards R explodes while S stays
        small.  The matcher must notice the drift, recompile, and keep
        returning the exact match set.
        """
        matcher = Matcher(execution="int")
        instance = Instance(
            [
                Atom("R", (Constant("a"), Constant("b"))),
                Atom("S", (Constant("b"), Constant("hit"))),
            ]
        )
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        atoms = (Atom("R", (x, y)), Atom("S", (y, z)))
        assert matcher.has(atoms, instance)
        baseline_replans = matcher.stats()["replans"]

        grown = instance.copy()
        for i in range(DRIFT_FACTOR * 125):
            grown.add(Atom("R", (Constant(f"g{i}"), Constant(f"g{i + 1}"))))
        grown.add(Atom("S", (Constant("g999"), Constant("end"))))

        matches = _as_set(matcher.homomorphisms(atoms, grown))
        expected = {
            tuple(
                sorted(
                    {x: Constant("a"), y: Constant("b"), z: Constant("hit")}
                    .items(),
                    key=repr,
                )
            ),
            tuple(
                sorted(
                    {
                        x: Constant("g998"),
                        y: Constant("g999"),
                        z: Constant("end"),
                    }.items(),
                    key=repr,
                )
            ),
        }
        assert matches == expected
        assert matcher.stats()["replans"] > baseline_replans, (
            "matcher kept the stale plan after a "
            f"{DRIFT_FACTOR * 125}-fact growth spurt"
        )
        assert matcher.stats()["drift_checks"] > 0
        grown.validate_indexes()

    def test_shrink_also_triggers_replan(self):
        """Drift is symmetric: a plan from a big instance replans small."""
        matcher = Matcher(execution="int")
        facts = [
            Atom("R", (Constant(f"a{i}"), Constant(f"a{i + 1}")))
            for i in range(DRIFT_FACTOR * 50)
        ]
        big = Instance(facts)
        x, y, z = Variable("x"), Variable("y"), Variable("z")
        # Single-atom plans are never drift-checked (no order to get
        # wrong), so use a join.
        atoms = (Atom("R", (x, y)), Atom("R", (y, z)))
        assert matcher.has(atoms, big)

        small = Instance([Atom("R", (Constant("p"), Constant("q")))])
        before = matcher.stats()["replans"]
        assert not matcher.has(atoms, small)
        # Drift checks are strided, so force enough lookups to hit one.
        for __ in range(64):
            matcher.find(atoms, small)
        assert matcher.stats()["replans"] > before
