"""Unit tests for the compiled matching core (`repro.matching`)."""

import pytest

from repro.data import Instance
from repro.logic import Atom, Constant, Null, Variable, atom
from repro.matching import Matcher, NaiveMatcher, freeze_atoms


def _ground(relation, *values):
    return Atom(relation, tuple(Constant(v) for v in values))


class TestPlanCache:
    def test_same_shape_hits_one_plan(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2), _ground("R", 2, 3)])
        body = (atom("R", "x", "y"), atom("R", "y", "z"))
        assert matcher.find(body, inst) is not None
        assert matcher.find(body, inst) is not None
        stats = matcher.stats()
        assert stats["plans_compiled"] == 1
        assert stats["plan_hits"] == 1

    def test_structurally_equal_atoms_share_a_plan(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2)])
        matcher.find((atom("R", "x", "y"),), inst)
        # A distinct tuple object spelling the same atoms.
        matcher.find((atom("R", "x", "y"),), inst)
        assert matcher.stats()["plans_compiled"] == 1

    def test_seed_shape_gets_its_own_plan(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2)])
        body = (atom("R", "x", "y"),)
        x = Variable("x")
        matcher.find(body, inst)
        matcher.find(body, inst, seed={x: Constant(1)})
        assert matcher.stats()["plans_compiled"] == 2

    def test_lru_eviction(self):
        matcher = Matcher(plan_cache_size=2)
        inst = Instance([_ground("R", 1, 2)])
        for name in ("A", "B", "C"):
            matcher.find((atom(name, "x"),), inst)
        stats = matcher.stats()
        assert stats["plans_compiled"] == 3
        assert stats["plan_evictions"] == 1
        assert stats["plans_cached"] == 2


class TestEnumeration:
    def test_matches_naive_on_a_join(self):
        inst = Instance(
            [_ground("R", 1, 2), _ground("R", 2, 3), _ground("R", 3, 1)]
        )
        body = (atom("R", "x", "y"), atom("R", "y", "z"))
        planned = Matcher()
        naive = NaiveMatcher()
        as_set = lambda hs: {frozenset(h.items()) for h in hs}
        assert as_set(planned.homomorphisms(body, inst)) == as_set(
            naive.homomorphisms(body, inst)
        )

    def test_empty_atom_list_yields_seed(self):
        matcher = Matcher()
        x = Variable("x")
        seed = {x: Constant(7)}
        results = list(matcher.homomorphisms((), Instance(), seed=seed))
        assert results == [seed]
        assert matcher.has((), Instance())

    def test_rigid_vs_flexible_nulls(self):
        matcher = Matcher()
        inst = Instance([Atom("R", (Constant(1),))])
        null_atom = (Atom("R", (Null("n"),)),)
        assert not matcher.has(null_atom, inst)
        assert matcher.has(null_atom, inst, flexible_nulls=True)

    def test_repeated_variable(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2)])
        assert matcher.find((atom("R", "x", "x"),), inst) is None
        inst.add(_ground("R", 5, 5))
        found = matcher.find((atom("R", "x", "x"),), inst)
        assert found == {Variable("x"): Constant(5)}


class TestCheckCache:
    def _setup(self):
        matcher = Matcher()
        inst = Instance([_ground("E", 1, 2)])
        # Existential shape: x seeded, y free — not a ground probe, so
        # the result goes through the generation-checked cache.
        head = (atom("E", "x", "y"),)
        seed = {Variable("x"): Constant(1)}
        return matcher, inst, head, seed

    def test_hit_while_untouched(self):
        matcher, inst, head, seed = self._setup()
        assert matcher.has(head, inst, seed=seed)
        assert matcher.has(head, inst, seed=seed)
        stats = matcher.stats()
        assert stats["check_misses"] == 1
        assert stats["check_hits"] == 1

    def test_invalidated_by_relevant_add(self):
        matcher, inst, head, seed = self._setup()
        seed2 = {Variable("x"): Constant(9)}
        assert not matcher.has(head, inst, seed=seed2)
        inst.add(_ground("E", 9, 1))
        assert matcher.has(head, inst, seed=seed2)
        assert matcher.stats()["check_misses"] == 2

    def test_invalidated_by_discard(self):
        matcher, inst, head, seed = self._setup()
        assert matcher.has(head, inst, seed=seed)
        inst.discard(_ground("E", 1, 2))
        assert not matcher.has(head, inst, seed=seed)

    def test_unrelated_relation_keeps_entry(self):
        matcher, inst, head, seed = self._setup()
        assert matcher.has(head, inst, seed=seed)
        inst.add(_ground("Other", 1))
        assert matcher.has(head, inst, seed=seed)
        stats = matcher.stats()
        assert stats["check_hits"] == 1
        assert stats["check_misses"] == 1

    def test_negative_results_cached_too(self):
        matcher, inst, head, seed = self._setup()
        absent = {Variable("x"): Constant(42)}
        assert not matcher.has(head, inst, seed=absent)
        assert not matcher.has(head, inst, seed=absent)
        assert matcher.stats()["check_hits"] == 1

    def test_eviction_clears_and_recomputes(self):
        matcher = Matcher(check_cache_limit=2)
        inst = Instance([_ground("E", i, i + 1) for i in range(4)])
        head = (atom("E", "x", "y"),)
        for i in range(4):
            assert matcher.has(
                head, inst, seed={Variable("x"): Constant(i)}
            )
        assert matcher.stats()["check_evictions"] >= 1
        # Correctness after eviction.
        assert matcher.has(head, inst, seed={Variable("x"): Constant(0)})

    def test_ground_probe_skips_cache(self):
        matcher = Matcher()
        inst = Instance([_ground("T", 1, 2)])
        head = (atom("T", "x", "y"),)
        seed = {Variable("x"): Constant(1), Variable("y"): Constant(2)}
        assert matcher.has(head, inst, seed=seed)
        inst.discard(_ground("T", 1, 2))
        assert not matcher.has(head, inst, seed=seed)
        stats = matcher.stats()
        assert stats["ground_probe_checks"] == 2
        assert stats["check_misses"] == 0


class TestDistinctMatches:
    def test_one_match_per_projection(self):
        matcher = Matcher()
        inst = Instance(
            [_ground("R", 1, i) for i in range(5)] + [_ground("S", 1)]
        )
        body = (atom("S", "x"), atom("R", "x", "y"))
        x = Variable("x")
        matches = list(matcher.distinct_matches(body, inst, on=(x,)))
        assert len(matches) == 1
        assert matches[0][x] == Constant(1)

    def test_skip_set_is_consulted_and_extended(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2), _ground("R", 3, 4)])
        body = (atom("R", "x", "y"),)
        x = Variable("x")
        skip = {(Constant(1),)}
        matches = list(
            matcher.distinct_matches(body, inst, on=(x,), skip=skip)
        )
        assert [m[x] for m in matches] == [Constant(3)]
        assert (Constant(3),) in skip

    def test_failed_completion_not_recorded(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2)])
        # S(y) never matches: the completion after binding x fails.
        body = (atom("R", "x", "y"), atom("S", "y"))
        x = Variable("x")
        skip = set()
        assert not list(
            matcher.distinct_matches(body, inst, on=(x,), skip=skip)
        )
        assert not skip

    def test_empty_projection_fires_once(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2), _ground("R", 3, 4)])
        body = (atom("R", "x", "y"),)
        skip = set()
        matches = list(
            matcher.distinct_matches(body, inst, on=(), skip=skip)
        )
        assert len(matches) == 1
        assert () in skip
        # A later call with the same registry yields nothing.
        assert not list(
            matcher.distinct_matches(body, inst, on=(), skip=skip)
        )

    def test_unbound_projection_term_raises(self):
        matcher = Matcher()
        inst = Instance([_ground("R", 1, 2)])
        with pytest.raises(ValueError):
            list(
                matcher.distinct_matches(
                    (atom("R", "x", "y"),), inst, on=(Variable("zz"),)
                )
            )

    def test_matches_naive_projection_set(self):
        matcher = Matcher()
        naive = NaiveMatcher()
        inst = Instance(
            [_ground("R", i % 3, i) for i in range(9)]
        )
        body = (atom("R", "x", "y"),)
        x = Variable("x")
        planned_keys = {
            m[x] for m in matcher.distinct_matches(body, inst, on=(x,))
        }
        naive_keys = {
            m[x] for m in naive.distinct_matches(body, inst, on=(x,))
        }
        assert planned_keys == naive_keys


class TestIsomorphism:
    def test_renaming_is_isomorphic(self):
        matcher = Matcher()
        a = (atom("R", "x", "y"), atom("S", "y"))
        b = (atom("R", "u", "v"), atom("S", "v"))
        assert matcher.is_isomorphic(a, b)

    def test_repeated_variable_distinguished(self):
        matcher = Matcher()
        assert not matcher.is_isomorphic(
            (atom("R", "x", "x"),), (atom("R", "x", "y"),)
        )

    def test_swapped_cycle_isomorphic(self):
        matcher = Matcher()
        a = (atom("R", "x", "y"), atom("R", "y", "x"))
        b = (atom("R", "u", "v"), atom("R", "v", "u"))
        assert matcher.is_isomorphic(a, b)
        c = (atom("R", "x", "y"), atom("R", "y", "z"))
        assert not matcher.is_isomorphic(a, c)

    def test_variable_constant_mismatch(self):
        matcher = Matcher()
        assert not matcher.is_isomorphic(
            (atom("R", "x", Constant(1)),), (atom("R", "x", "y"),)
        )
        assert matcher.is_isomorphic(
            (atom("R", "x", Constant(1)),), (atom("R", "z", Constant(1)),)
        )

    def test_duplicate_atoms_compared_as_sets(self):
        # Duplicates must not inflate the size comparison: with them
        # counted, (R(x,y), R(x,y), S(y)) would false-positive against
        # a genuinely 3-atom body.
        matcher = Matcher()
        left = (atom("R", "x", "y"), atom("R", "x", "y"), atom("S", "y"))
        right = (atom("R", "u", "v"), atom("S", "v"), atom("S", "u"))
        assert not matcher.is_isomorphic(left, right)
        assert not NaiveMatcher().is_isomorphic(left, right)
        assert matcher.is_isomorphic(
            left, (atom("R", "a", "b"), atom("S", "b"))
        )

    def test_naive_matcher_agrees(self):
        naive = NaiveMatcher()
        assert naive.is_isomorphic(
            (atom("R", "x", "y"), atom("R", "y", "x")),
            (atom("R", "u", "v"), atom("R", "v", "u")),
        )
        assert not naive.is_isomorphic(
            (atom("R", "x", "x"),), (atom("R", "x", "y"),)
        )
        assert naive.subsumes(
            (atom("R", "x", "y"),), (atom("R", "u", "v"), atom("S", "v"))
        )

    def test_no_collapse_onto_smaller_image(self):
        # {R(x,c), R(x,d)} maps homomorphically into {R(y,c), R(y,d)}
        # many ways; isomorphism must still hold exactly and reject the
        # pair against a different shape multiset.
        matcher = Matcher()
        a = (atom("R", "x", Constant("c")), atom("R", "x", Constant("d")))
        b = (atom("R", "y", Constant("c")), atom("R", "y", Constant("d")))
        c = (atom("R", "y", Constant("c")), atom("R", "z", Constant("d")))
        assert matcher.is_isomorphic(a, b)
        assert not matcher.is_isomorphic(a, c)


class TestSubsumption:
    def test_smaller_subsumes_larger(self):
        matcher = Matcher()
        small = (atom("R", "x", "y"),)
        large = (atom("R", "u", "v"), atom("S", "v"))
        assert matcher.subsumes(small, large)
        assert not matcher.subsumes(large, small)

    def test_constants_must_match(self):
        matcher = Matcher()
        small = (atom("R", "x", Constant(1)),)
        assert matcher.subsumes(small, (atom("R", "y", Constant(1)),))
        assert not matcher.subsumes(small, (atom("R", "y", Constant(2)),))

    def test_freeze_atoms_roundtrip(self):
        frozen, targets = freeze_atoms(
            (atom("R", "x", "y"), atom("S", "y"))
        )
        assert len(frozen) == 2
        assert len(targets) == 2
        assert all(isinstance(t, Null) for t in targets)

    def test_rigid_nulls_cannot_alias_frozen_variables(self):
        # A null in the left-hand atoms must never match the null a
        # right-hand variable was frozen into, whatever its label.
        matcher = Matcher()
        __, targets = freeze_atoms((atom("R", "x"),))
        frozen_label = next(iter(targets)).label
        probe = (Atom("R", (Null(frozen_label),)),)
        assert not matcher.subsumes(probe, (atom("R", "x"),))
        assert not matcher.is_isomorphic(
            (Atom("R", (Null(frozen_label),)), atom("S", "w")),
            (atom("R", "y"), atom("S", "y")),
        )


class TestInstanceGenerations:
    def test_add_bumps_only_its_relation(self):
        inst = Instance()
        assert inst.generation_of("R") == 0
        inst.add(_ground("R", 1))
        assert inst.generation_of("R") == 1
        assert inst.generation_of("S") == 0

    def test_duplicate_add_does_not_bump(self):
        inst = Instance([_ground("R", 1)])
        before = inst.generation_of("R")
        assert not inst.add(_ground("R", 1))
        assert inst.generation_of("R") == before

    def test_discard_bumps(self):
        inst = Instance([_ground("R", 1)])
        before = inst.generation_of("R")
        assert inst.discard(_ground("R", 1))
        assert inst.generation_of("R") == before + 1
        assert not inst.discard(_ground("R", 1))
        assert inst.generation_of("R") == before + 1

    def test_generations_tuple_aligned(self):
        inst = Instance([_ground("R", 1), _ground("S", 1), _ground("S", 2)])
        assert inst.generations(("R", "S", "T")) == (1, 2, 0)
