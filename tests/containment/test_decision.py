"""Tests for the three-valued decision type."""

import pytest

from repro.containment import Decision, Truth


class TestTruth:
    def test_yes_truthy(self):
        assert bool(Truth.YES)
        assert not bool(Truth.NO)

    def test_unknown_refuses_coercion(self):
        with pytest.raises(ValueError):
            bool(Truth.UNKNOWN)


class TestDecision:
    def test_constructors(self):
        yes = Decision.yes("because", rounds=3)
        assert yes.is_yes and not yes.is_no and not yes.is_unknown
        assert yes.detail["rounds"] == 3

        no = Decision.no("nope")
        assert no.is_no

        unknown = Decision.unknown("bound hit")
        assert unknown.is_unknown

    def test_certificate_carried(self):
        certificate = object()
        decision = Decision.yes("with witness", certificate=certificate)
        assert decision.certificate is certificate

    def test_repr_mentions_reason(self):
        assert "bound hit" in repr(Decision.unknown("bound hit"))
