"""Tests for chase-based containment."""

from repro.containment import certain_answer_boolean, contains
from repro.constraints import fd, tgd
from repro.data import Instance
from repro.logic import (
    UnionOfConjunctiveQueries,
    atom,
    boolean_cq,
    ground_atom,
)


class TestPlainContainment:
    def test_no_constraints_homomorphism(self):
        q1 = boolean_cq([atom("R", "x", "x")])
        q2 = boolean_cq([atom("R", "x", "y")])
        assert contains(q1, q2, []).is_yes
        assert contains(q2, q1, []).is_no

    def test_with_full_tgds(self):
        q1 = boolean_cq([atom("R", "x")])
        q2 = boolean_cq([atom("S", "x")])
        assert contains(q1, q2, [tgd("R(x) -> S(x)")]).is_yes
        assert contains(q1, q2, [tgd("S(x) -> R(x)")]).is_no

    def test_with_existential(self):
        q1 = boolean_cq([atom("R", "x")])
        q2 = boolean_cq([atom("S", "x", "y")])
        assert contains(q1, q2, [tgd("R(x) -> S(x, z)")]).is_yes

    def test_transitive_derivation(self):
        rules = [tgd("R(x) -> S(x, z)"), tgd("S(x, y) -> T(y)")]
        q1 = boolean_cq([atom("R", "x")])
        q2 = boolean_cq([atom("T", "u")])
        assert contains(q1, q2, rules).is_yes

    def test_ucq_target(self):
        q1 = boolean_cq([atom("R", "x")])
        target = UnionOfConjunctiveQueries(
            (boolean_cq([atom("T", "u")]), boolean_cq([atom("R", "v")]))
        )
        assert contains(q1, target, []).is_yes

    def test_unknown_on_divergent_chase(self):
        rules = [tgd("R(x, y) -> R(y, z)")]
        q1 = boolean_cq([atom("R", "x", "y")])
        q2 = boolean_cq([atom("S", "u")])  # never derivable
        decision = contains(q1, q2, rules, max_rounds=5)
        assert decision.is_unknown

    def test_yes_on_divergent_chase_when_found(self):
        rules = [tgd("R(x, y) -> R(y, z)")]
        q1 = boolean_cq([atom("R", "x", "y")])
        q2 = boolean_cq([atom("R", "a", "b"), atom("R", "b", "c")])
        assert contains(q1, q2, rules, max_rounds=10).is_yes


class TestFDContainment:
    def test_fd_merges_make_query_true(self):
        # Q: R(x,y), R(x,z), S(y) with FD R: 1->2 implies y=z, so S(z) too.
        q1 = boolean_cq([atom("R", "x", "y"), atom("R", "x", "z"),
                         atom("S", "y")])
        q2 = boolean_cq([atom("R", "u", "v"), atom("S", "v")])
        assert contains(q1, q2, [fd("R", [0], 1)]).is_yes

    def test_fd_no_containment(self):
        q1 = boolean_cq([atom("R", "x", "y")])
        q2 = boolean_cq([atom("R", "x", "y"), atom("S", "y")])
        assert contains(q1, q2, [fd("R", [0], 1)]).is_no


class TestCertainAnswers:
    def test_certain_via_constraint(self):
        inst = Instance([ground_atom("R", 1)])
        q = boolean_cq([atom("S", "x")])
        assert certain_answer_boolean(inst, q, [tgd("R(x) -> S(x)")]).is_yes

    def test_not_certain(self):
        inst = Instance([ground_atom("R", 1)])
        q = boolean_cq([atom("S", "x")])
        assert certain_answer_boolean(inst, q, []).is_no
