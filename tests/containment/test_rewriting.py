"""Tests for the backward UCQ rewriting (linear TGDs / IDs)."""

import pytest

from repro.containment import RewritingError, linear_contains, rewrite
from repro.constraints import inclusion_dependency, tgd
from repro.logic import atom, boolean_cq


class TestRewriting:
    def test_identity_in_rewriting(self):
        q = boolean_cq([atom("R", "x")])
        result = rewrite(q, [])
        assert len(result.disjuncts) == 1

    def test_single_step(self):
        # S(x) -> R(x): query R(u) rewrites to S(u).
        rules = [tgd("S(x) -> R(x)")]
        q = boolean_cq([atom("R", "u")])
        result = rewrite(q, rules)
        bodies = {d.atoms[0].relation for d in result.disjuncts}
        assert bodies == {"R", "S"}

    def test_existential_applicability(self):
        # S(x) -> R(x, z): R(u, v) rewrites to S(u) only because v is
        # unshared; R(u, u) must NOT rewrite.
        rules = [tgd("S(x) -> R(x, z)")]
        ok = rewrite(boolean_cq([atom("R", "u", "v")]), rules)
        assert any(
            d.atoms[0].relation == "S" and len(d.atoms) == 1
            for d in ok.disjuncts
        )
        blocked = rewrite(boolean_cq([atom("R", "u", "u")]), rules)
        assert all(
            any(a.relation == "R" for a in d.atoms)
            for d in blocked.disjuncts
        )

    def test_shared_variable_blocks(self):
        # v is shared with T(v): cannot treat it as existential witness.
        rules = [tgd("S(x) -> R(x, z)")]
        q = boolean_cq([atom("R", "u", "v"), atom("T", "v")])
        result = rewrite(q, rules)
        for d in result.disjuncts:
            assert any(a.relation == "R" for a in d.atoms)

    def test_factorization_enables_rewrite(self):
        # Query R(u, v), R(u, w): factorizing to R(u, v) allows the rewrite.
        rules = [tgd("S(x) -> R(x, z)")]
        q = boolean_cq([atom("R", "u", "v"), atom("R", "u", "w")])
        result = rewrite(q, rules)
        assert any(
            len(d.atoms) == 1 and d.atoms[0].relation == "S"
            for d in result.disjuncts
        )

    def test_non_linear_rejected(self):
        with pytest.raises(RewritingError):
            rewrite(boolean_cq([atom("R", "x")]), [tgd("R(x), S(x) -> T(x)")])

    def test_non_boolean_rejected(self):
        from repro.logic import Variable, cq

        q = cq([atom("R", "x")], free=[Variable("x")])
        with pytest.raises(RewritingError):
            rewrite(q, [])


class TestLinearContains:
    def test_simple_id_containment(self):
        # R[0] ⊆ S[0]: R(x,y) should imply ∃u,v S(x,v)... as Boolean:
        rules = [inclusion_dependency("R", (0,), "S", (0,), 2, 2)]
        q1 = boolean_cq([atom("R", "x", "y")])
        q2 = boolean_cq([atom("S", "u", "v")])
        assert linear_contains(q1, q2, rules).is_yes
        assert linear_contains(q2, q1, rules).is_no

    def test_chain_of_ids(self):
        rules = [
            inclusion_dependency("R", (0,), "S", (0,), 1, 1),
            inclusion_dependency("S", (0,), "T", (0,), 1, 1),
        ]
        q1 = boolean_cq([atom("R", "x")])
        q2 = boolean_cq([atom("T", "x")])
        assert linear_contains(q1, q2, rules).is_yes

    def test_cyclic_ids_terminate(self):
        # R(x,y) -> R(y,z) diverges in the chase but rewriting terminates.
        rules = [tgd("R(x, y) -> R(y, z)")]
        q1 = boolean_cq([atom("R", "x", "y")])
        q2 = boolean_cq([atom("R", "a", "b"), atom("R", "b", "c")])
        assert linear_contains(q1, q2, rules).is_yes
        q3 = boolean_cq([atom("S", "s")])
        assert linear_contains(q1, q3, rules).is_no

    def test_agreement_with_chase_on_terminating_cases(self):
        from repro.containment import contains

        rules = [
            inclusion_dependency("A", (0,), "B", (1,), 2, 2),
            inclusion_dependency("B", (0,), "C", (0,), 2, 1),
        ]
        q1 = boolean_cq([atom("A", "x", "y")])
        for q2 in [
            boolean_cq([atom("B", "u", "v")]),
            boolean_cq([atom("C", "w")]),
            boolean_cq([atom("A", "x", "x")]),
        ]:
            chase_decision = contains(q1, q2, rules)
            rewrite_decision = linear_contains(q1, q2, rules)
            assert chase_decision.truth == rewrite_decision.truth
