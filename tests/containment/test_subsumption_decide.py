"""Subsumption pruning on the decide route: the coverage pass.

The ID route now defaults to ``subsumption=True`` (rewriting disjuncts
hom-implied by smaller kept ones are dropped before the canonical-
database probes).  These property tests are the evidence behind the
flip: across the paper/generator schema corpus, the pruned and
unpruned routes must decide **identically** — same truth value, same
route — and the pruning itself must be sound (every dropped disjunct
hom-maps into some kept one, so the union is logically unchanged).

A seeded tier-1 sample runs on every push; the randomized sweep
carries the ``slow`` marker and runs nightly.
"""

import random

import pytest

from repro.answerability.deciders import decide_with_ids
from repro.matching.matcher import Matcher
from repro.service import Session, compile_schema
from repro.workloads import (
    id_chain_workload,
    id_width_workload,
    lookup_chain_workload,
    random_id_workload,
    university_schema,
)


def id_corpus():
    """(schema, queries) pairs that dispatch to the ID route."""
    chain = lookup_chain_workload(3)
    bounded = lookup_chain_workload(3, dump_bound=5)
    id_chain = id_chain_workload(6)
    return [
        (
            university_schema(ud_bound=100),
            ["Udirectory(i, a, p)", "Prof(i, n, 10000)",
             "Prof(i, n, s), Udirectory(i, a, p)"],
        ),
        (chain.schema, ["L0(x, y)", "L0(x, y), L1(x, z)"]),
        (bounded.schema, ["L0(x, y)", "L0(x, y), L2(x, z)"]),
        (id_chain.schema, [f"R{i}(x)" for i in range(7)]),
        (id_width_workload(2).schema,
         ["A(x0, x1), B(x0, x1, z)"]),
    ]


def assert_equivalent(compiled, query) -> None:
    pruned = decide_with_ids(compiled, query_of(compiled, query))
    raw = decide_with_ids(
        compiled, query_of(compiled, query), subsumption=False
    )
    assert pruned.truth == raw.truth, (
        f"subsumption changed the decision on {query!r}: "
        f"{pruned.truth} vs {raw.truth}"
    )
    # Pruning never *adds* disjuncts.
    pruned_count = pruned.detail.get("disjuncts")
    raw_count = raw.detail.get("disjuncts")
    if pruned_count is not None and raw_count is not None:
        assert pruned_count <= raw_count


def query_of(compiled, query):
    from repro.logic.parser import parse_cq

    return parse_cq(query) if isinstance(query, str) else query


class TestDecideEquivalence:
    def test_corpus_decides_identically_with_and_without_pruning(self):
        for schema, queries in id_corpus():
            compiled = compile_schema(schema)
            for query in queries:
                assert_equivalent(compiled, query)

    def test_plan_route_honors_the_session_opt_out(self):
        # The plan NO-gate must run on the engine variant the session
        # was configured with (the opt-out is not decide-only).
        compiled = compile_schema(university_schema(ud_bound=100))
        off = Session(compiled, subsumption=False)
        response = off.plan("Udirectory(i, a, p)")
        assert response.answerable
        assert "rewrite-engine" in compiled.stats
        assert "rewrite-engine:subsumption" not in compiled.stats

    def test_sessions_agree_across_the_flag(self):
        for schema, queries in id_corpus():
            compiled = compile_schema(schema)
            on = Session(compiled, subsumption=True)
            off = Session(compiled, subsumption=False)
            for query in queries:
                assert (
                    on.decide(query).decision == off.decide(query).decision
                )

    def test_random_id_schemas_sample(self):
        for seed in range(25):
            workload = random_id_workload(seed, bound=None)
            compiled = compile_schema(workload.schema)
            if compiled.constraint_class.value not in (
                "inclusion dependencies",
                "bounded-width inclusion dependencies",
            ):
                continue
            assert_equivalent(compiled, workload.query)

    @pytest.mark.slow
    def test_random_id_schemas_sweep(self):
        rng = random.Random(515)
        checked = 0
        for __ in range(250):
            seed = rng.randrange(100_000)
            workload = random_id_workload(
                seed,
                relations=rng.randint(2, 6),
                ids=rng.randint(1, 7),
                bound=None,
            )
            compiled = compile_schema(workload.schema)
            if compiled.constraint_class.value not in (
                "inclusion dependencies",
                "bounded-width inclusion dependencies",
            ):
                continue
            assert_equivalent(compiled, workload.query)
            checked += 1
        assert checked > 50  # the sweep actually exercised the route


class TestPruningSoundness:
    def test_dropped_disjuncts_are_hom_implied_by_kept_ones(self):
        matcher = Matcher()
        for schema, queries in id_corpus():
            compiled = compile_schema(schema)
            raw_engine = compiled.rewrite_engine(subsumption=False)
            pruned_engine = compiled.rewrite_engine(subsumption=True)
            for query in queries:
                target = primed_boolean(compiled, query)
                raw = raw_engine.rewrite(target)
                pruned = pruned_engine.rewrite(target)
                kept = [d.atoms for d in pruned.disjuncts]
                assert len(kept) <= len(raw.disjuncts)
                for disjunct in raw.disjuncts:
                    assert any(
                        matcher.subsumes(k, disjunct.atoms) for k in kept
                    ), f"dropped disjunct not implied: {disjunct}"


def primed_boolean(compiled, query):
    """The rewriting target the ID route uses: the primed Boolean CQ."""
    from repro.answerability.axioms import prime_query
    from repro.answerability.deciders import freeze_free_variables
    from repro.logic.parser import parse_cq

    parsed = parse_cq(query) if isinstance(query, str) else query
    if parsed.free_variables:
        parsed, __ = freeze_free_variables(parsed)
    return prime_query(parsed)
