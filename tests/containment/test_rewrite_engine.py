"""The incremental `RewriteEngine`: memoization ≡ fresh rewriting.

The engine's contract is that sharing rule indexes, per-atom rewrite
steps, and canonical frontier states across queries changes *nothing*
about any individual rewriting: every output must equal a fresh
`rewrite()` call, deterministically.  The randomized suites generate
linear schemas and query batches and assert exactly that; the unit
tests pin the cache behavior (hits actually happen), the deterministic
emission order, the isomorphism dedup, and the typed budget error.
"""

import random

import pytest

from repro.answerability.axioms import prime_query
from repro.containment import (
    RewriteEngine,
    RewritingBudgetExceeded,
    RewritingError,
    rewrite,
)
from repro.containment.rewriting import _isomorphic, canonical_state
from repro.constraints.tgd import TGD
from repro.logic import Variable, atom, boolean_cq
from repro.logic.atoms import Atom
from repro.logic.terms import Constant
from repro.service import compile_schema
from repro.workloads import id_chain_workload, lookup_chain_workload


def _disjunct_reprs(ucq):
    return [repr(d.atoms) for d in ucq.disjuncts]


# ----------------------------------------------------------------------
# Cache behavior
# ----------------------------------------------------------------------
class TestMemoization:
    def test_distinct_query_batch_reuses_frontier_states(self):
        # The id-chain queries have nested rewriting frontiers: by the
        # time the deepest query runs, every state below it is cached.
        compiled = compile_schema(id_chain_workload(6).schema)
        engine = RewriteEngine(compiled.linearization().rules)
        queries = [
            prime_query(boolean_cq([atom(f"R{i}", "x")], name=f"Q{i}"))
            for i in range(7)
        ]
        for query in queries:
            engine.rewrite(query)
        stats = engine.stats()
        assert stats["rewrites"] == 7
        assert stats["expansions_reused"] > 0
        assert stats["expansions_built"] < stats["states"]

    def test_atom_steps_shared_across_join_queries(self):
        # Join queries over disjoint relations share no frontier states,
        # but every atom pattern (and so every unification) is shared.
        compiled = compile_schema(
            lookup_chain_workload(4, dump_bound=None).schema
        )
        engine = RewriteEngine(compiled.linearization().rules)
        for length in (1, 2, 3):
            engine.rewrite(
                prime_query(
                    boolean_cq(
                        [atom(f"L{i}", "x", f"y{i}") for i in range(length)],
                        name=f"Q{length}",
                    )
                )
            )
        stats = engine.stats()
        assert stats["atom_pattern_hits"] > 0

    def test_repeated_query_served_from_result_memo(self):
        rules = [TGD((atom("S", "x"),), (atom("R", "x"),))]
        engine = RewriteEngine(rules)
        q = boolean_cq([atom("R", "u")])
        first = engine.rewrite(q)
        second = engine.rewrite(q)
        assert _disjunct_reprs(first) == _disjunct_reprs(second)
        assert engine.stats()["result_hits"] == 1

    def test_alpha_variant_hits_the_result_memo(self):
        rules = [TGD((atom("S", "x"),), (atom("R", "x"),))]
        engine = RewriteEngine(rules)
        engine.rewrite(boolean_cq([atom("R", "u"), atom("T", "u", "v")]))
        engine.rewrite(boolean_cq([atom("R", "a"), atom("T", "a", "b")]))
        assert engine.stats()["result_hits"] == 1


class TestDeterminism:
    def test_two_engines_emit_identical_output(self):
        compiled = compile_schema(
            lookup_chain_workload(3, dump_bound=None).schema
        )
        rules = compiled.linearization().rules
        query = prime_query(
            boolean_cq(
                [atom("L0", "x", "y0"), atom("L1", "x", "y1")], name="Q"
            )
        )
        left = RewriteEngine(rules).rewrite(query)
        right = RewriteEngine(rules).rewrite(query)
        assert _disjunct_reprs(left) == _disjunct_reprs(right)

    def test_disjuncts_sorted_smallest_first(self):
        rules = [TGD((atom("S", "x"),), (atom("R", "x", "z"),))]
        q = boolean_cq([atom("R", "u", "v"), atom("R", "u", "w")])
        result = rewrite(q, rules)
        sizes = [len(d.atoms) for d in result.disjuncts]
        assert sizes == sorted(sizes)

    def test_no_isomorphic_disjunct_pairs(self):
        compiled = compile_schema(
            lookup_chain_workload(3, dump_bound=None).schema
        )
        query = prime_query(
            boolean_cq(
                [atom("L0", "x", "y0"), atom("L1", "x", "y1")], name="Q"
            )
        )
        result = RewriteEngine(compiled.linearization().rules).rewrite(query)
        states = [d.atoms for d in result.disjuncts]
        for i in range(len(states)):
            for j in range(i + 1, len(states)):
                assert not _isomorphic(states[i], states[j])


class TestCanonicalState:
    def test_alpha_equivalent_bodies_share_a_state(self):
        left = canonical_state((atom("R", "x", "y"), atom("S", "y")))
        right = canonical_state((atom("R", "u", "v"), atom("S", "v")))
        assert left == right

    def test_join_shape_distinguishes(self):
        assert canonical_state((atom("R", "x", "x"),)) != canonical_state(
            (atom("R", "x", "y"),)
        )

    def test_duplicates_dropped(self):
        state = canonical_state((atom("R", "x"), atom("R", "x")))
        assert len(state) == 1

    def test_isomorphism_checker(self):
        a = canonical_state((atom("R", "x", "y"), atom("R", "y", "x")))
        b = canonical_state((atom("R", "u", "v"), atom("R", "v", "u")))
        assert _isomorphic(a, b)
        c = canonical_state((atom("R", "x", "y"), atom("R", "y", "z")))
        assert not _isomorphic(a, c)

    def test_isomorphism_backtracks_failed_partial_matches(self):
        # Matching R(x,y) against R(a,a) fails mid-atom; the stale
        # x->a constraint must not block the correct pairing.
        left = (atom("R", "x", "y"), atom("R", "z", "z"))
        right = (atom("R", "a", "a"), atom("R", "b", "c"))
        assert _isomorphic(left, right)


class TestBudget:
    def test_typed_error_with_fields(self):
        compiled = compile_schema(id_chain_workload(4).schema)
        engine = RewriteEngine(compiled.linearization().rules)
        query = prime_query(boolean_cq([atom("R4", "x")], name="Q"))
        with pytest.raises(RewritingBudgetExceeded) as caught:
            engine.rewrite(query, max_disjuncts=2)
        error = caught.value
        assert isinstance(error, RewritingError)  # back-compat handlers
        assert error.max_disjuncts == 2
        assert error.reached > 2
        detail = error.as_detail()
        assert detail["type"] == "RewritingBudgetExceeded"
        assert detail["max_disjuncts"] == 2

    def test_budget_enforced_on_memoized_results(self):
        compiled = compile_schema(id_chain_workload(4).schema)
        engine = RewriteEngine(compiled.linearization().rules)
        query = prime_query(boolean_cq([atom("R4", "x")], name="Q"))
        engine.rewrite(query)  # populate the result memo
        with pytest.raises(RewritingBudgetExceeded):
            engine.rewrite(query, max_disjuncts=2)

    def test_budget_error_identical_cold_and_warm(self):
        # The structured error must not leak cache warmth: a memoized
        # overflow reports the same `reached` as a live one.
        compiled = compile_schema(id_chain_workload(4).schema)
        query = prime_query(boolean_cq([atom("R4", "x")], name="Q"))
        cold = RewriteEngine(compiled.linearization().rules)
        with pytest.raises(RewritingBudgetExceeded) as cold_caught:
            cold.rewrite(query, max_disjuncts=2)
        warm = RewriteEngine(compiled.linearization().rules)
        warm.rewrite(query)
        with pytest.raises(RewritingBudgetExceeded) as warm_caught:
            warm.rewrite(query, max_disjuncts=2)
        assert cold_caught.value.as_detail() == warm_caught.value.as_detail()
        assert cold_caught.value.reached == 3


# ----------------------------------------------------------------------
# Subsumption pruning (optional): drop hom-implied disjuncts
# ----------------------------------------------------------------------
class TestSubsumptionPruning:
    def _rules(self):
        return [
            TGD(
                (atom("S", "x"),),
                (atom("R", "x"),),
                "s_to_r",
            )
        ]

    def test_hom_implied_disjuncts_dropped(self):
        # Full rewriting of R(x) ∧ S(y): {S}, {R,S}, {S,S'}; the single-
        # atom {S} hom-maps into both larger disjuncts, so only it
        # survives pruning.
        query = boolean_cq([atom("R", "x"), atom("S", "y")], name="Q")
        plain = RewriteEngine(self._rules()).rewrite(query)
        pruned_engine = RewriteEngine(self._rules(), subsumption=True)
        pruned = pruned_engine.rewrite(query)
        assert len(plain.disjuncts) == 3
        assert len(pruned.disjuncts) == 1
        assert {a.relation for a in pruned.disjuncts[0].atoms} == {"S"}
        stats = pruned_engine.stats()
        assert stats["disjuncts_subsumed"] == 2
        assert stats["subsumption_checks"] >= 2

    def test_off_by_default(self):
        query = boolean_cq([atom("R", "x"), atom("S", "y")], name="Q")
        engine = RewriteEngine(self._rules())
        assert engine.subsumption is False
        assert engine.stats()["disjuncts_subsumed"] == 0
        assert len(engine.rewrite(query).disjuncts) == 3

    def test_free_function_option(self):
        query = boolean_cq([atom("R", "x"), atom("S", "y")], name="Q")
        assert len(rewrite(query, self._rules()).disjuncts) == 3
        assert (
            len(
                rewrite(
                    query, self._rules(), subsumption=True
                ).disjuncts
            )
            == 1
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_pruned_output_is_hom_covered_subset(self, seed):
        """Every dropped disjunct is hom-implied by a kept smaller one
        (so the pruned UCQ is logically equivalent to the full one)."""
        from repro.matching import default_matcher

        rng = random.Random(seed)
        rules = _random_linear_rules(rng, 4)
        plain = RewriteEngine(rules)
        pruned = RewriteEngine(rules, subsumption=True)
        matcher = default_matcher()
        for index in range(5):
            query = _random_query(rng, f"q{seed}_{index}")
            full = [d.atoms for d in plain.rewrite(query).disjuncts]
            kept = [d.atoms for d in pruned.rewrite(query).disjuncts]
            kept_reprs = {repr(k) for k in kept}
            assert kept_reprs <= {repr(d) for d in full}
            for disjunct in full:
                if repr(disjunct) in kept_reprs:
                    continue
                assert any(
                    len(k) <= len(disjunct)
                    and matcher.subsumes(k, disjunct)
                    for k in kept
                ), f"dropped disjunct not covered: {disjunct}"


# ----------------------------------------------------------------------
# Randomized equivalence: memoized engine ≡ fresh rewrite()
# ----------------------------------------------------------------------
_RELATIONS = [("R", 2), ("S", 1), ("T", 2), ("U", 3)]


def _random_atom(rng, variables, *, allow_constants=True):
    name, arity = rng.choice(_RELATIONS)
    terms = []
    for __ in range(arity):
        if allow_constants and rng.random() < 0.15:
            terms.append(Constant(rng.randint(0, 2)))
        else:
            terms.append(rng.choice(variables))
    return Atom(name, tuple(terms))


def _random_linear_rules(rng, count):
    rules = []
    for index in range(count):
        body_vars = [Variable(f"b{index}_{i}") for i in range(3)]
        body = _random_atom(rng, body_vars, allow_constants=False)
        head_pool = list(body.variables()) + [
            Variable(f"e{index}_{i}") for i in range(2)
        ]
        head = _random_atom(rng, head_pool, allow_constants=False)
        rules.append(TGD((body,), (head,), f"rule{index}"))
    return rules


def _random_query(rng, name):
    variables = [Variable(v) for v in ("x", "y", "z")]
    atoms = tuple(
        _random_atom(rng, variables) for __ in range(rng.randint(1, 3))
    )
    return boolean_cq(atoms, name=name)


def _check_batch(seed: int, rule_count: int, batch: int) -> None:
    rng = random.Random(seed)
    rules = _random_linear_rules(rng, rule_count)
    engine = RewriteEngine(rules)
    for index in range(batch):
        query = _random_query(rng, f"q{seed}_{index}")
        fresh = rewrite(query, rules)
        memoized = engine.rewrite(query)
        assert _disjunct_reprs(fresh) == _disjunct_reprs(memoized), (
            f"seed={seed} query={query}: memoized engine diverged from "
            "fresh rewriting"
        )


@pytest.mark.parametrize("seed", range(8))
def test_random_linear_schemas_memoized_equals_fresh(seed):
    _check_batch(seed, rule_count=4, batch=6)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(60))
def test_random_linear_schemas_memoized_equals_fresh_sweep(seed):
    _check_batch(seed, rule_count=6, batch=12)
