"""Unit tests for `repro.runtime`: budgets, deadlines, cancellation.

Everything here runs on an injected fake clock — no sleeps, no wall
time — so deadline arithmetic and the tick stride are exact.
"""

import pytest

from repro.runtime import (
    TICK_STRIDE,
    Budget,
    DeadlineExceeded,
    Overloaded,
)


class FakeClock:
    def __init__(self, start: float = 100.0) -> None:
        self.now = start
        self.reads = 0

    def __call__(self) -> float:
        self.reads += 1
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBudget:
    def test_unbounded_budget_never_expires(self):
        clock = FakeClock()
        budget = Budget(clock=clock)
        clock.advance(1e9)
        assert not budget.expired()
        assert budget.remaining_ms() is None
        budget.check()  # no raise
        for __ in range(3 * TICK_STRIDE):
            budget.tick()

    def test_deadline_expiry_raises_with_detail(self):
        clock = FakeClock()
        budget = Budget(50.0, clock=clock)
        budget.check()
        clock.advance(0.049)
        budget.check()
        assert budget.remaining_ms() == pytest.approx(1.0)
        clock.advance(0.002)
        assert budget.expired()
        with pytest.raises(DeadlineExceeded) as info:
            budget.check()
        detail = info.value.as_detail()
        assert detail["type"] == "DeadlineExceeded"
        assert detail["reason"] == "deadline"
        assert detail["deadline_ms"] == 50.0
        assert detail["elapsed_ms"] >= 50.0
        assert info.value.retryable is True

    def test_remaining_is_clamped_at_zero(self):
        clock = FakeClock()
        budget = Budget(10.0, clock=clock)
        clock.advance(1.0)
        assert budget.remaining_ms() == 0.0
        assert budget.elapsed_ms() == pytest.approx(1000.0)

    def test_bad_deadlines_rejected(self):
        with pytest.raises(ValueError):
            Budget(0)
        with pytest.raises(ValueError):
            Budget(-5.0)

    def test_cancel_raises_immediately_with_reason(self):
        budget = Budget()
        assert not budget.cancelled
        budget.cancel("drain")
        assert budget.cancelled
        with pytest.raises(DeadlineExceeded) as info:
            budget.check()
        assert info.value.as_detail()["reason"] == "drain"
        # tick() does not wait for the stride when cancelled.
        with pytest.raises(DeadlineExceeded):
            budget.tick()

    def test_tick_amortizes_clock_reads(self):
        clock = FakeClock()
        budget = Budget(1000.0, clock=clock)
        baseline = clock.reads
        for __ in range(TICK_STRIDE - 1):
            budget.tick()
        assert clock.reads == baseline  # no clock read inside a stride
        budget.tick()  # stride boundary: one real check
        assert clock.reads > baseline

    def test_tick_raises_on_expiry_at_stride_boundary(self):
        clock = FakeClock()
        budget = Budget(5.0, clock=clock)
        clock.advance(1.0)
        with pytest.raises(DeadlineExceeded):
            for __ in range(2 * TICK_STRIDE):
                budget.tick()

    def test_exhausted_covers_both_modes(self):
        clock = FakeClock()
        budget = Budget(5.0, clock=clock)
        assert not budget.exhausted()
        clock.advance(1.0)
        assert budget.exhausted()
        other = Budget()
        other.cancel()
        assert other.exhausted()


class TestErrorTypes:
    def test_deadline_exceeded_is_retryable(self):
        error = DeadlineExceeded("out of time")
        assert error.retryable is True
        assert error.retry_after_ms is None

    def test_overloaded_carries_retry_hint_and_scope(self):
        error = Overloaded("busy", retry_after_ms=125.0, scope="client")
        assert error.retryable is True
        assert error.retry_after_ms == 125.0
        assert error.scope == "client"
        assert "busy" in str(error)
