"""Unit tests for ``benchmarks/check_regression.py`` — the CI gate
that compares fresh ``BENCH_*.json`` artifacts against the committed
versions.  The gate guards every perf number in the repo, so its own
corner cases (glob matching, the noise-tolerance clamp, missing
baselines, smoke-file refusal) deserve coverage of their own."""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_module():
    spec = importlib.util.spec_from_file_location(
        "check_regression_under_test",
        REPO_ROOT / "benchmarks" / "check_regression.py",
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture()
def check():
    return load_module()


def regressions(check, committed, fresh, tolerance=0.4):
    return list(check.compare("BENCH_x.json", committed, fresh, tolerance))


class TestCompare:
    def test_identical_artifacts_pass(self, check):
        artifact = {"workloads": [{"name": "w", "speedup": 10.0}]}
        assert regressions(check, artifact, artifact) == []

    def test_missing_workload_is_a_regression(self, check):
        committed = {"workloads": [{"name": "w", "speedup": 10.0}]}
        fresh = {"workloads": []}
        [(workload, message)] = regressions(check, committed, fresh)
        assert workload == "w"
        assert "missing from fresh run" in message

    def test_speedup_noise_clamp(self, check):
        committed = {"workloads": [{"name": "w", "speedup": 10.0}]}
        # exactly at the floor (10.0 * 0.4): noise, not a regression
        at_floor = {"workloads": [{"name": "w", "speedup": 4.0}]}
        assert regressions(check, committed, at_floor) == []
        # just under the floor: a collapse, reported
        below = {"workloads": [{"name": "w", "speedup": 3.99}]}
        [(workload, message)] = regressions(check, committed, below)
        assert "fell below" in message

    def test_speedup_field_missing_from_fresh_counts_as_zero(self, check):
        committed = {"workloads": [{"name": "w", "speedup": 2.0}]}
        fresh = {"workloads": [{"name": "w"}]}
        [(__, message)] = regressions(check, committed, fresh)
        assert "fell below" in message

    def test_best_seconds_noise_clamp(self, check):
        committed = {"workloads": [{"name": "w", "best_seconds": 1.0}]}
        # 1.0 / 0.4 = 2.5 is the ceiling: slower is a regression
        slow = {"workloads": [{"name": "w", "best_seconds": 2.51}]}
        [(__, message)] = regressions(check, committed, slow)
        assert "exceeded" in message
        ok = {"workloads": [{"name": "w", "best_seconds": 2.5}]}
        assert regressions(check, committed, ok) == []

    def test_rows_are_keyed_by_name_and_engine(self, check):
        committed = {
            "workloads": [
                {"name": "w", "engine": "a", "best_seconds": 1.0},
                {"name": "w", "engine": "b", "best_seconds": 1.0},
            ]
        }
        fresh = {
            "workloads": [
                {"name": "w", "engine": "a", "best_seconds": 1.0},
                {"name": "w", "engine": "b", "best_seconds": 9.0},
            ]
        }
        [(workload, __)] = regressions(check, committed, fresh)
        assert workload == "w/b"

    def test_tolerance_parameter_scales_both_gates(self, check):
        committed = {
            "workloads": [
                {"name": "ratio", "speedup": 10.0},
                {"name": "time", "best_seconds": 1.0},
            ]
        }
        fresh = {
            "workloads": [
                {"name": "ratio", "speedup": 9.0},
                {"name": "time", "best_seconds": 1.05},
            ]
        }
        assert regressions(check, committed, fresh, tolerance=0.4) == []
        strict = regressions(check, committed, fresh, tolerance=0.99)
        assert {w for w, __ in strict} == {"ratio", "time"}


class GitSandbox:
    """A throwaway git repo standing in for the project root."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.git("init", "-q")
        self.git("config", "user.email", "bench@example.invalid")
        self.git("config", "user.name", "bench")

    def git(self, *argv: str) -> None:
        subprocess.run(
            ["git", *argv], cwd=self.path, check=True, capture_output=True
        )

    def commit_artifact(self, name: str, payload: dict) -> Path:
        path = self.path / name
        path.write_text(json.dumps(payload))
        self.git("add", name)
        self.git("commit", "-q", "-m", f"add {name}")
        return path


@pytest.fixture()
def sandbox(tmp_path, check, monkeypatch):
    monkeypatch.setattr(check, "ROOT", tmp_path)
    return GitSandbox(tmp_path)


class TestMain:
    def test_no_committed_artifacts_fails_loudly(
        self, check, sandbox, capsys
    ):
        assert check.main([]) == 1
        assert "no committed BENCH_*.json" in capsys.readouterr().out

    def test_uncommitted_artifact_is_skipped_not_checked(
        self, check, sandbox, capsys
    ):
        # glob matches, but git has no baseline: skip (a brand-new
        # artifact must not fail the gate), and since nothing else was
        # checked the run still errors out.
        (sandbox.path / "BENCH_new.json").write_text(
            json.dumps({"workloads": []})
        )
        assert check.main([]) == 1
        out = capsys.readouterr().out
        assert "not committed yet, skipping" in out

    def test_smoke_artifacts_are_ignored_by_the_glob(
        self, check, sandbox, capsys
    ):
        sandbox.commit_artifact(
            "BENCH_x.smoke.json", {"workloads": [], "smoke": True}
        )
        assert check.main([]) == 1  # nothing non-smoke to check
        out = capsys.readouterr().out
        assert "BENCH_x.smoke.json" not in out

    def test_fresh_smoke_run_is_refused(self, check, sandbox, capsys):
        path = sandbox.commit_artifact(
            "BENCH_x.json",
            {"workloads": [{"name": "w", "speedup": 5.0}]},
        )
        path.write_text(
            json.dumps(
                {"workloads": [{"name": "w", "speedup": 5.0}], "smoke": True}
            )
        )
        assert check.main([]) == 1
        assert "refusing" in capsys.readouterr().out

    def test_clean_pass_and_regression_exit_codes(
        self, check, sandbox, capsys
    ):
        path = sandbox.commit_artifact(
            "BENCH_x.json",
            {"workloads": [{"name": "w", "speedup": 5.0}]},
        )
        assert check.main([]) == 0
        assert "ok: no benchmark regressions" in capsys.readouterr().out
        path.write_text(
            json.dumps({"workloads": [{"name": "w", "speedup": 0.1}]})
        )
        assert check.main([]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_flag_is_parsed(self, check, sandbox, capsys):
        path = sandbox.commit_artifact(
            "BENCH_x.json",
            {"workloads": [{"name": "w", "speedup": 5.0}]},
        )
        path.write_text(
            json.dumps({"workloads": [{"name": "w", "speedup": 4.0}]})
        )
        assert check.main(["--tolerance", "0.5"]) == 0
        assert check.main(["--tolerance", "0.9"]) == 1
