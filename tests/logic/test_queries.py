"""Tests for CQs, UCQs, canonical databases, and evaluation."""

import pytest

from repro.data import Instance
from repro.logic import (
    ConjunctiveQuery,
    Constant,
    Null,
    UnionOfConjunctiveQueries,
    Variable,
    atom,
    boolean_cq,
    cq,
    evaluate_cq,
    evaluate_ucq,
    ground_atom,
    holds,
    ucq_holds,
)


class TestConstruction:
    def test_boolean(self):
        q = boolean_cq([atom("R", "x")])
        assert q.is_boolean()

    def test_free_variable_must_occur(self):
        with pytest.raises(ValueError):
            cq([atom("R", "x")], free=[Variable("y")])

    def test_variables_in_order(self):
        q = boolean_cq([atom("R", "y", "x"), atom("S", "z")])
        assert q.variables() == (Variable("y"), Variable("x"), Variable("z"))

    def test_existential_variables(self):
        q = cq([atom("R", "x", "y")], free=[Variable("x")])
        assert q.existential_variables() == (Variable("y"),)

    def test_relations(self):
        q = boolean_cq([atom("S", "x"), atom("R", "x"), atom("S", "y")])
        assert q.relations() == ("R", "S")


class TestCanonicalDatabase:
    def test_variables_become_nulls(self):
        q = boolean_cq([atom("R", "x", 5)])
        canonical, freezing = q.canonical_instance()
        frozen = freezing[Variable("x")]
        assert isinstance(frozen, Null)
        assert ground_atom("R", frozen, Constant(5)) in canonical

    def test_shared_variables_shared_nulls(self):
        q = boolean_cq([atom("R", "x", "y"), atom("S", "y")])
        canonical, freezing = q.canonical_instance()
        y_null = freezing[Variable("y")]
        assert ground_atom("S", y_null) in canonical

    def test_query_holds_on_its_canonical_db(self):
        q = boolean_cq([atom("R", "x", "y"), atom("S", "y", "z")])
        canonical, __ = q.canonical_instance()
        assert holds(q, canonical)


class TestEvaluation:
    def test_boolean_true_false(self):
        q = boolean_cq([atom("R", "x", "x")])
        yes = Instance([ground_atom("R", 1, 1)])
        no = Instance([ground_atom("R", 1, 2)])
        assert evaluate_cq(q, yes) == frozenset({()})
        assert evaluate_cq(q, no) == frozenset()

    def test_answers(self):
        q = cq(
            [atom("E", "x", "y"), atom("E", "y", "z")],
            free=[Variable("x"), Variable("z")],
        )
        inst = Instance([ground_atom("E", 0, 1), ground_atom("E", 1, 2)])
        assert evaluate_cq(q, inst) == frozenset(
            {(Constant(0), Constant(2))}
        )

    def test_substitute_drops_bound_free_vars(self):
        q = cq([atom("R", "x", "y")], free=[Variable("x"), Variable("y")])
        bound = q.substitute({Variable("x"): Constant(7)})
        assert bound.free_variables == (Variable("y"),)
        assert bound.atoms[0].terms[0] == Constant(7)


class TestUCQ:
    def test_needs_disjuncts(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries(())

    def test_arity_agreement(self):
        q1 = cq([atom("R", "x")], free=[Variable("x")])
        q2 = boolean_cq([atom("S", "y")])
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries((q1, q2))

    def test_union_semantics(self):
        q = UnionOfConjunctiveQueries(
            (boolean_cq([atom("R", "x")]), boolean_cq([atom("S", "x")]))
        )
        assert ucq_holds(q, Instance([ground_atom("S", 1)]))
        assert not ucq_holds(q, Instance([ground_atom("T", 1)]))
        assert evaluate_ucq(q, Instance([ground_atom("R", 2)])) == frozenset(
            {()}
        )
