"""Tests for atoms and the atom builders."""

import pytest

from repro.logic import Atom, Constant, Null, Variable, atom, ground_atom


class TestAtomBasics:
    def test_builder_strings_are_variables(self):
        a = atom("R", "x", "y")
        assert a.terms == (Variable("x"), Variable("y"))

    def test_builder_numbers_are_constants(self):
        a = atom("R", "x", 3)
        assert a.terms == (Variable("x"), Constant(3))

    def test_ground_atom_strings_are_constants(self):
        a = ground_atom("R", "a", 1)
        assert a.terms == (Constant("a"), Constant(1))
        assert a.is_ground()

    def test_arity(self):
        assert atom("R", "x", "y", "z").arity == 3

    def test_variables_deduplicated_in_order(self):
        a = atom("R", "x", "y", "x")
        assert a.variables() == (Variable("x"), Variable("y"))

    def test_nulls_and_constants(self):
        a = Atom("R", (Null("n"), Constant(1), Variable("x")))
        assert a.nulls() == (Null("n"),)
        assert a.constants() == (Constant(1),)
        assert not a.is_ground()


class TestAtomOperations:
    def test_substitute(self):
        a = atom("R", "x", "y")
        result = a.substitute({Variable("x"): Constant(5)})
        assert result == Atom("R", (Constant(5), Variable("y")))

    def test_substitute_keeps_unmapped(self):
        a = atom("R", "x", "y")
        assert a.substitute({}) == a

    def test_rename_relation(self):
        a = atom("R", "x")
        assert a.rename_relation(lambda r: r + "_prime").relation == "R_prime"

    def test_positions_of(self):
        a = atom("R", "x", "y", "x")
        assert a.positions_of(Variable("x")) == (0, 2)
        assert a.positions_of(Variable("z")) == ()

    def test_atoms_are_hashable_and_comparable(self):
        assert atom("R", "x") == atom("R", "x")
        assert len({atom("R", "x"), atom("R", "x")}) == 1
