"""Tests for terms: variables, constants, nulls, and the null factory."""

from repro.logic import Constant, Null, NullFactory, Variable, fresh_null
from repro.logic.terms import is_ground, variables


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_repr(self):
        assert repr(Variable("abc")) == "abc"

    def test_variables_helper(self):
        x, y, z = variables("x", "y", "z")
        assert (x, y, z) == (Variable("x"), Variable("y"), Variable("z"))


class TestConstant:
    def test_equality_by_value(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("1") != Constant(1)

    def test_distinct_from_variable(self):
        assert Constant("x") != Variable("x")

    def test_repr_strings_quoted(self):
        assert repr(Constant("a")) == "'a'"
        assert repr(Constant(3)) == "3"


class TestNull:
    def test_equality_by_label(self):
        assert Null("n1") == Null("n1")
        assert Null("n1") != Null("n2")

    def test_distinct_from_constant(self):
        assert Null("a") != Constant("a")

    def test_is_ground(self):
        assert is_ground(Null("n"))
        assert is_ground(Constant(1))
        assert not is_ground(Variable("x"))


class TestNullFactory:
    def test_fresh_nulls_distinct(self):
        factory = NullFactory()
        seen = {factory.fresh() for _ in range(100)}
        assert len(seen) == 100

    def test_hint_embedded(self):
        factory = NullFactory(prefix="t")
        null = factory.fresh("x")
        assert "x" in null.label and null.label.startswith("t")

    def test_global_factory_distinct(self):
        assert fresh_null() != fresh_null()
