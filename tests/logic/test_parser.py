"""Tests for the text parser."""

import pytest

from repro.logic import (
    Atom,
    Constant,
    Null,
    ParseError,
    Variable,
    parse_atom,
    parse_atoms,
    parse_cq,
    split_rule,
)


class TestAtoms:
    def test_simple(self):
        assert parse_atom("R(x, y)") == Atom(
            "R", (Variable("x"), Variable("y"))
        )

    def test_constants(self):
        a = parse_atom("R('abc', 42, 3.5)")
        assert a.terms == (Constant("abc"), Constant(42), Constant(3.5))

    def test_nulls(self):
        assert parse_atom("R(_n1)").terms == (Null("n1"),)

    def test_nullary(self):
        assert parse_atom("R()").arity == 0

    def test_conjunction(self):
        atoms = parse_atoms("R(x), S(x, y) & T(y)")
        assert [a.relation for a in atoms] == ["R", "S", "T"]

    def test_error_on_garbage(self):
        with pytest.raises(ParseError):
            parse_atom("R(x")
        with pytest.raises(ParseError):
            parse_atom("R(x)) extra")


class TestQueries:
    def test_boolean_body_only(self):
        q = parse_cq("R(x, y), S(y)")
        assert q.is_boolean()
        assert len(q.atoms) == 2

    def test_with_head(self):
        q = parse_cq("Q(x) :- R(x, y)")
        assert q.free_variables == (Variable("x"),)
        assert q.name == "Q"

    def test_head_constants_rejected(self):
        with pytest.raises(ParseError):
            parse_cq("Q('a') :- R('a')")


class TestRules:
    def test_full_rule(self):
        body, head = split_rule("R(x, y) -> S(y, x)")
        assert body[0].relation == "R" and head[0].relation == "S"

    def test_exists_prefix_accepted(self):
        body, head = split_rule("R(x) -> exists z. S(x, z)")
        assert head[0].terms == (Variable("x"), Variable("z"))

    def test_multi_atom_head(self):
        __, head = split_rule("R(x) -> S(x), T(x)")
        assert len(head) == 2
