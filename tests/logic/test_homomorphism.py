"""Tests for homomorphism search."""

from repro.data import Instance
from repro.logic import (
    Constant,
    Null,
    Variable,
    atom,
    find_homomorphism,
    ground_atom,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
    is_homomorphically_equivalent,
)


def path_instance(length=3):
    return Instance(
        ground_atom("E", i, i + 1) for i in range(length)
    )


class TestBasicMatching:
    def test_single_atom_match(self):
        inst = Instance([ground_atom("R", "a", "b")])
        h = find_homomorphism([atom("R", "x", "y")], inst)
        assert h == {Variable("x"): Constant("a"), Variable("y"): Constant("b")}

    def test_no_match_wrong_relation(self):
        inst = Instance([ground_atom("S", "a")])
        assert not has_homomorphism([atom("R", "x")], inst)

    def test_constant_must_match(self):
        inst = Instance([ground_atom("R", "a")])
        assert has_homomorphism([atom("R", Constant("a"))], inst)
        assert not has_homomorphism([atom("R", Constant("b"))], inst)

    def test_join_variable_shared(self):
        inst = path_instance(2)  # E(0,1), E(1,2)
        assert has_homomorphism(
            [atom("E", "x", "y"), atom("E", "y", "z")], inst
        )
        # A 3-path needs length-2 instance to have... E(0,1),E(1,2): a
        # 3-step path does not exist.
        assert not has_homomorphism(
            [atom("E", "x", "y"), atom("E", "y", "z"), atom("E", "z", "w"),
             atom("E", "w", "v")],
            inst,
        )

    def test_repeated_variable_in_atom(self):
        inst = Instance([ground_atom("R", "a", "b")])
        assert not has_homomorphism([atom("R", "x", "x")], inst)
        inst.add(ground_atom("R", "c", "c"))
        h = find_homomorphism([atom("R", "x", "x")], inst)
        assert h[Variable("x")] == Constant("c")

    def test_enumeration_counts(self):
        inst = path_instance(3)  # E(0,1),E(1,2),E(2,3)
        matches = list(homomorphisms([atom("E", "x", "y")], inst))
        assert len(matches) == 3
        matches2 = list(
            homomorphisms([atom("E", "x", "y"), atom("E", "y", "z")], inst)
        )
        assert len(matches2) == 2

    def test_seed_constrains_search(self):
        inst = path_instance(3)
        seed = {Variable("x"): Constant(1)}
        matches = list(homomorphisms([atom("E", "x", "y")], inst, seed=seed))
        assert len(matches) == 1
        assert matches[0][Variable("y")] == Constant(2)


class TestNullHandling:
    def test_rigid_nulls_by_default(self):
        inst = Instance([ground_atom("R", Null("a"))])
        assert has_homomorphism([atom("R", Null("a"))], inst)
        assert not has_homomorphism([atom("R", Null("b"))], inst)

    def test_flexible_nulls(self):
        inst = Instance([ground_atom("R", "c")])
        assert has_homomorphism(
            [atom("R", Null("b"))], inst, flexible_nulls=True
        )

    def test_instance_homomorphism_maps_nulls(self):
        source = Instance([ground_atom("R", Null("n"), Constant("a"))])
        target = Instance([ground_atom("R", Constant("b"), Constant("a"))])
        mapping = instance_homomorphism(source, target)
        assert mapping is not None
        assert mapping[Null("n")] == Constant("b")
        assert mapping[Constant("a")] == Constant("a")

    def test_instance_homomorphism_constants_rigid(self):
        source = Instance([ground_atom("R", "a")])
        target = Instance([ground_atom("R", "b")])
        assert instance_homomorphism(source, target) is None

    def test_homomorphic_equivalence(self):
        left = Instance([ground_atom("R", Null("x"), Null("y"))])
        right = Instance(
            [ground_atom("R", Null("u"), Null("v")),
             ground_atom("R", Null("a"), Null("b"))]
        )
        assert is_homomorphically_equivalent(left, right)

    def test_path_not_equivalent_to_edge(self):
        edge = Instance([ground_atom("R", Null("x"), Null("y"))])
        path = Instance(
            [ground_atom("R", Null("u"), Null("v")),
             ground_atom("R", Null("v"), Null("w"))]
        )
        # The 2-path maps into nothing shorter: no hom path -> edge.
        assert instance_homomorphism(edge, path) is not None
        assert instance_homomorphism(path, edge) is None


class TestEmptyCases:
    def test_empty_atom_list_trivial(self):
        assert find_homomorphism([], Instance()) == {}

    def test_empty_instance_no_match(self):
        assert not has_homomorphism([atom("R", "x")], Instance())
