"""Process-level fleet battery: real subprocess workers, real faults.

The in-process tests (``test_dispatcher.py``) cover routing logic;
this file covers the plumbing the issue's fault invariant actually
lives on: SIGKILL a worker process mid-run and observe only correct
decisions or typed retryable errors (never a wrong answer, never a
hang), watch the supervisor restart it and the ring re-admit it, and
verify that a warm-start manifest eliminates the first-request compile
on a fresh (or restarted) worker.
"""

import asyncio
import json
import os
import signal

import pytest

from repro.io import schema_to_dict
from repro.server import BackoffPolicy, Fleet, FleetDispatcher, WorkerSpec
from repro.workloads import id_chain_workload

QUERY = "Qlink0() :- R0(x)"


def spec_for(tmp_path, *, warm=None, schema=None) -> WorkerSpec:
    return WorkerSpec(
        schema=schema,
        port=0,
        warm=warm,
        serve_args=("--workers", "2", "--drain-timeout", "5"),
        ready_timeout_s=60.0,
        health_interval_s=0.2,
        backoff=BackoffPolicy(base_s=0.05, cap_s=0.5),
    )


def write_schemas(tmp_path, sizes) -> dict[int, dict]:
    schemas = {}
    for n in sizes:
        schemas[n] = schema_to_dict(id_chain_workload(n).schema)
    return schemas


async def request_frames(dispatcher: FleetDispatcher, frames: list) -> list:
    host, port = dispatcher.address
    reader, writer = await asyncio.open_connection(host, port)
    replies = []
    try:
        for frame in frames:
            writer.write(json.dumps(frame).encode("utf-8") + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=30)
            replies.append(json.loads(line))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return replies


async def fleet_stats(dispatcher: FleetDispatcher) -> dict:
    (stats,) = await request_frames(dispatcher, [{"op": "stats"}])
    return stats


class TestFaultInvariant:
    def test_sigkill_mid_run_yields_only_typed_retryable_errors(
        self, tmp_path
    ):
        """Kill one of two workers while traffic flows: every reply is
        a correct decision or a typed retryable error; the supervisor
        restarts the worker and the ring re-admits it (new pid, same
        worker id, same shard)."""
        schemas = write_schemas(tmp_path, range(2, 8))

        async def scenario():
            dispatcher = FleetDispatcher(port=0, channels_per_worker=2)
            await dispatcher.start()
            fleet = Fleet(
                [spec_for(tmp_path), spec_for(tmp_path)], dispatcher
            )
            try:
                assert await fleet.start(timeout_s=90) == 2
                stats = await fleet_stats(dispatcher)
                pids = {
                    entry["worker"]: entry["pid"]
                    for entry in stats["workers"]
                }
                assert len(pids) == 2 and all(pids.values())

                frames = [
                    {"query": QUERY, "schema": schema, "id": f"pre-{n}"}
                    for n, schema in schemas.items()
                ]
                for reply in await request_frames(dispatcher, frames):
                    assert reply["decision"] == "yes"

                victim_id, victim_pid = sorted(pids.items())[0]
                os.kill(victim_pid, signal.SIGKILL)

                # Fire mixed traffic THROUGH the kill and the restart
                # window.  The invariant: every single reply is either
                # a correct decision or a typed retryable error.
                wrong, retryable = [], 0
                deadline = (
                    asyncio.get_running_loop().time() + 60.0
                )
                readmitted = False
                while asyncio.get_running_loop().time() < deadline:
                    frames = [
                        {"query": QUERY, "schema": schema, "id": n}
                        for n, schema in schemas.items()
                    ]
                    for reply in await request_frames(dispatcher, frames):
                        if "error" in reply:
                            error = reply["error"]
                            if not error.get("retryable"):
                                wrong.append(reply)
                            elif error["type"] not in (
                                "WorkerLost",
                                "Overloaded",
                            ):
                                wrong.append(reply)
                            else:
                                retryable += 1
                        elif reply.get("decision") != "yes":
                            wrong.append(reply)
                    stats = await fleet_stats(dispatcher)
                    ring = stats["fleet"]["ring"]["nodes"]
                    new_pids = {
                        entry["worker"]: entry["pid"]
                        for entry in stats["workers"]
                    }
                    if (
                        len(ring) == 2
                        and new_pids.get(victim_id)
                        and new_pids[victim_id] != victim_pid
                    ):
                        readmitted = True
                        break
                    await asyncio.sleep(0.1)
                assert readmitted, "ring never re-admitted the worker"
                assert wrong == [], wrong

                # After recovery every shard serves again.
                frames = [
                    {"query": QUERY, "schema": schema, "id": f"post-{n}"}
                    for n, schema in schemas.items()
                ]
                for reply in await request_frames(dispatcher, frames):
                    assert reply["decision"] == "yes"
                supervision = stats["fleet"]["supervision"]
                assert supervision[victim_id]["restarts"] >= 1
                return retryable
            finally:
                await fleet.close(drain_timeout=5)

        asyncio.run(scenario())


class TestWarmManifest:
    def test_warm_manifest_precompiles_the_shard(self, tmp_path):
        """A worker started with ``--warm`` reports ready only after
        compiling the manifest: its pool counters show the warmed
        schemas, and the first request for one compiles nothing."""
        schemas = write_schemas(tmp_path, (3, 5))
        manifest = tmp_path / "manifest.json"
        manifest.write_text(
            json.dumps({"schemas": list(schemas.values())})
        )

        async def scenario():
            dispatcher = FleetDispatcher(port=0, channels_per_worker=1)
            await dispatcher.start()
            fleet = Fleet(
                [spec_for(tmp_path, warm=str(manifest))], dispatcher
            )
            try:
                assert await fleet.start(timeout_s=90) == 1
                stats = await fleet_stats(dispatcher)
                (entry,) = stats["workers"]
                counters = entry["stats"]["pool"]["counters"]
                assert counters["warmed"] == 2
                assert counters["schemas_compiled"] == 2
                assert counters["requests"] == 0  # warmed, not queried

                replies = await request_frames(
                    dispatcher,
                    [
                        {"query": QUERY, "schema": schema, "id": n}
                        for n, schema in schemas.items()
                    ],
                )
                assert all(r["decision"] == "yes" for r in replies)

                stats = await fleet_stats(dispatcher)
                (entry,) = stats["workers"]
                counters = entry["stats"]["pool"]["counters"]
                # first-request compile latency is gone: the manifest
                # already built both schemas
                assert counters["schemas_compiled"] == 2
                assert counters["requests"] == 2
            finally:
                await fleet.close(drain_timeout=5)

        asyncio.run(scenario())


class TestQuorum:
    def test_quorum_failure_raises_and_leaves_no_orphans(self, tmp_path):
        """A fleet whose workers cannot start (bad schema path) fails
        `start()` with a clear error instead of hanging."""
        bad = WorkerSpec(
            schema=str(tmp_path / "missing.json"),
            port=0,
            ready_timeout_s=2.0,
            backoff=BackoffPolicy(base_s=0.05, cap_s=0.1),
        )

        async def scenario():
            dispatcher = FleetDispatcher(port=0)
            await dispatcher.start()
            fleet = Fleet([bad], dispatcher)
            with pytest.raises(RuntimeError):
                await fleet.start(timeout_s=8)
            assert dispatcher.workers == ()

        asyncio.run(scenario())
