"""CI smoke: a live worker fleet surviving a SIGKILL mid-run.

Run directly (``PYTHONPATH=src python tests/fleet/smoke_fleet.py``):
launches ``python -m repro fleet`` with 2 workers behind the
dispatcher, parses the readiness line, fires 50 mixed-fingerprint
requests, SIGKILLs one worker process midway through, and asserts the
fault invariant end to end:

* every reply is a correct decision or a **typed retryable** error
  (``WorkerLost`` / ``Overloaded``) — never a wrong answer, never a
  hang, never an untyped failure;
* the supervisor restarts the worker and the ring re-admits it under
  the same worker id with a fresh pid;
* after recovery a full request pass succeeds;
* SIGTERM drains the whole fleet and the process exits 0.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
REQUESTS = 50
RETRYABLE = ("WorkerLost", "Overloaded")


def request_mix() -> list[tuple[dict, str]]:
    sys.path.insert(0, str(ROOT / "src"))
    from repro.io import schema_to_dict
    from repro.workloads import id_chain_workload, lookup_chain_workload

    chain = schema_to_dict(lookup_chain_workload(3).schema)
    ids = schema_to_dict(id_chain_workload(4).schema)
    return [
        ({"query": "Udirectory(i,a,p)"}, "yes"),
        ({"query": "Prof(i,n,10000)"}, "no"),
        ({"query": "L0(x, y)", "schema": chain}, "yes"),
        ({"query": "R0(x)", "schema": ids}, "yes"),
        ({"query": "Udirectory(x,y,z)"}, "yes"),
    ]


def launch_fleet() -> tuple[subprocess.Popen, dict]:
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "fleet",
            str(ROOT / "examples" / "university.json"),
            "--workers", "2",
            "--worker-threads", "2",
            "--port", "0",
            "--backoff-base", "0.1",
            "--backoff-cap", "0.5",
            "--health-interval", "0.2",
            "--drain-timeout", "10",
        ],
        cwd=ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 90
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        try:
            payload = json.loads(line)
        except ValueError:
            continue
        if "ready" in payload:
            return process, payload["ready"]
    process.kill()
    raise AssertionError(
        "fleet never became ready: " + process.stderr.read()[-2000:]
    )


class Client:
    def __init__(self, host: str, port: int) -> None:
        self.sock = socket.create_connection((host, port), timeout=30)
        self.stream = self.sock.makefile("rw")

    def rpc(self, frame: dict) -> dict:
        self.stream.write(json.dumps(frame) + "\n")
        self.stream.flush()
        line = self.stream.readline()
        assert line, "connection closed mid-exchange"
        return json.loads(line)

    def close(self) -> None:
        self.sock.close()


def worker_pids(client: Client) -> dict[str, int]:
    stats = client.rpc({"op": "stats"})
    return {
        entry["worker"]: entry["pid"] for entry in stats["workers"]
    }


def main() -> int:
    process, ready = launch_fleet()
    assert ready["role"] == "fleet" and ready["workers"] == 2, ready
    exit_code = 1
    try:
        client = Client(ready["host"], ready["port"])
        pids = worker_pids(client)
        assert len(pids) == 2, pids
        victim_id, victim_pid = sorted(pids.items())[0]
        print(f"fleet up: {pids}; will SIGKILL {victim_id} ({victim_pid})")

        mix = request_mix()
        wrong, retryable, decided = [], 0, 0
        for index in range(REQUESTS):
            if index == REQUESTS // 3:
                os.kill(victim_pid, signal.SIGKILL)
                print(f"killed {victim_id} mid-run")
            frame, expected = mix[index % len(mix)]
            reply = client.rpc({**frame, "id": index})
            error = reply.get("error")
            if error is not None:
                if error.get("retryable") and error["type"] in RETRYABLE:
                    retryable += 1
                else:
                    wrong.append(reply)
            elif reply.get("decision") == expected:
                decided += 1
            else:
                wrong.append(reply)
        assert not wrong, f"invariant violations: {wrong[:5]}"
        print(
            f"{REQUESTS} requests through the kill: {decided} decided, "
            f"{retryable} typed retryable, 0 wrong"
        )

        deadline = time.monotonic() + 60
        recovered = {}
        while time.monotonic() < deadline:
            recovered = worker_pids(client)
            if (
                len(recovered) == 2
                and recovered.get(victim_id)
                and recovered[victim_id] != victim_pid
            ):
                break
            time.sleep(0.2)
        else:
            raise AssertionError(
                f"ring never recovered: {recovered} (victim {victim_pid})"
            )
        print(
            f"ring re-admitted {victim_id}: pid {victim_pid} -> "
            f"{recovered[victim_id]}"
        )

        for index, (frame, expected) in enumerate(mix * 2):
            reply = client.rpc({**frame, "id": f"post-{index}"})
            assert reply.get("decision") == expected, reply
        print("post-recovery pass: all shards serving")
        client.close()

        process.send_signal(signal.SIGTERM)
        exit_code = process.wait(timeout=60)
        assert exit_code == 0, f"drain exited {exit_code}"
        print("SIGTERM drain: exit 0")
        print("fleet smoke passed")
        return 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
        if exit_code != 0:
            print(process.stderr.read()[-2000:], file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
