"""Unit battery for the consistent-hash ring.

The properties the fleet leans on: determinism across processes (the
dispatcher may be restarted; keys must land where they used to),
minimal movement on membership change (a worker death moves only its
own arcs), and exact reclaim on re-add (a restarted worker gets its
old shard back, so its warm caches still match its traffic).
"""

import pytest

from repro.server.hashring import DEFAULT_REPLICAS, HashRing


def keys(n: int) -> list[str]:
    return [f"fingerprint-{i:04d}" for i in range(n)]


class TestBasics:
    def test_empty_ring_routes_nothing(self):
        ring = HashRing()
        assert len(ring) == 0
        assert ring.node_for("anything") is None
        assert ring.nodes == frozenset()
        assert ring.assignments(["a", "b"]) == {}

    def test_add_and_contains(self):
        ring = HashRing()
        ring.add("w0")
        assert "w0" in ring
        assert len(ring) == 1
        assert ring.node_for("any-key") == "w0"

    def test_add_is_idempotent(self):
        ring = HashRing()
        ring.add("w0")
        ring.add("w0")
        assert len(ring) == 1
        single = HashRing()
        single.add("w0")
        assert ring.assignments(keys(50)) == single.assignments(keys(50))

    def test_remove_is_idempotent(self):
        ring = HashRing()
        ring.add("w0")
        ring.remove("w0")
        ring.remove("w0")
        ring.remove("never-added")
        assert len(ring) == 0
        assert ring.node_for("key") is None

    def test_replicas_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(0)

    def test_default_replica_count(self):
        assert HashRing().replicas == DEFAULT_REPLICAS


class TestDeterminism:
    def test_same_members_same_routing_across_instances(self):
        a, b = HashRing(), HashRing()
        for node in ("w0", "w1", "w2"):
            a.add(node)
        for node in ("w2", "w0", "w1"):  # insertion order is irrelevant
            b.add(node)
        for key in keys(200):
            assert a.node_for(key) == b.node_for(key)

    def test_known_pinning(self):
        # A frozen sample: if this moves, every deployed dispatcher's
        # shard map silently reshuffles — that is a breaking change.
        ring = HashRing()
        for node in ("w0", "w1", "w2", "w3"):
            ring.add(node)
        sample = {key: ring.node_for(key) for key in keys(8)}
        fresh = HashRing()
        for node in ("w0", "w1", "w2", "w3"):
            fresh.add(node)
        assert {k: fresh.node_for(k) for k in sample} == sample


class TestBalanceAndMovement:
    def test_every_node_owns_some_keys(self):
        ring = HashRing()
        nodes = [f"w{i}" for i in range(8)]
        for node in nodes:
            ring.add(node)
        owners = {ring.node_for(key) for key in keys(2000)}
        assert owners == set(nodes)

    def test_spread_is_not_degenerate(self):
        ring = HashRing()
        for i in range(4):
            ring.add(f"w{i}")
        shard = ring.assignments(keys(2000))
        counts = sorted(len(v) for v in shard.values())
        # With 64 virtual points per node, no worker should own more
        # than ~3x its fair share of a 2000-key population.
        assert counts[-1] < 3 * (2000 / 4)

    def test_adding_a_node_only_moves_keys_to_it(self):
        ring = HashRing()
        for i in range(4):
            ring.add(f"w{i}")
        before = {key: ring.node_for(key) for key in keys(1000)}
        ring.add("w4")
        moved = 0
        for key, owner in before.items():
            after = ring.node_for(key)
            if after != owner:
                moved += 1
                # keys only ever move TO the new node, never between
                # the existing ones.
                assert after == "w4"
        assert 0 < moved < 1000

    def test_removing_a_node_only_moves_its_keys(self):
        ring = HashRing()
        for i in range(4):
            ring.add(f"w{i}")
        before = {key: ring.node_for(key) for key in keys(1000)}
        ring.remove("w2")
        for key, owner in before.items():
            after = ring.node_for(key)
            if owner == "w2":
                assert after != "w2"
            else:
                assert after == owner  # unaffected shards do not move

    def test_readding_reclaims_the_exact_shard(self):
        # The restart path: a worker dies, is evicted, comes back under
        # the same id — consistent hashing must hand it exactly the
        # arcs it owned, so its warm manifest still matches its shard.
        ring = HashRing()
        for i in range(4):
            ring.add(f"w{i}")
        before = {key: ring.node_for(key) for key in keys(1000)}
        ring.remove("w1")
        ring.add("w1")
        assert {key: ring.node_for(key) for key in keys(1000)} == before


class TestAssignments:
    def test_assignments_partition_the_keys(self):
        ring = HashRing()
        for i in range(3):
            ring.add(f"w{i}")
        population = keys(300)
        shard = ring.assignments(population)
        flat = [key for owned in shard.values() for key in owned]
        assert sorted(flat) == sorted(population)
        for node, owned in shard.items():
            assert all(ring.node_for(key) == node for key in owned)
