"""In-process battery for the `FleetDispatcher`.

Real `DecideServer` workers in the same event loop (no subprocesses —
the process-level plumbing lives in ``test_fleet_process.py``), a real
dispatcher in front, real TCP both hops.  Covers routing stickiness,
learned-fingerprint convergence, the fault invariant (worker loss →
typed retryable `WorkerLost`, never a wrong answer or hang), ring
re-admission, aggregated stats, and drain.
"""

import asyncio
import json

from repro.io import schema_to_dict
from repro.server import DecideServer, FleetDispatcher, SessionPool
from repro.workloads import id_chain_workload, university_schema

UNIVERSITY_QUERY = "Udirectory(i,a,p)"


def run(coroutine):
    return asyncio.run(coroutine)


async def started_worker(**kwargs) -> DecideServer:
    pool = kwargs.pop("pool", None)
    if pool is None:
        pool = SessionPool(university_schema(ud_bound=100))
    server = DecideServer(pool, port=0, **kwargs)
    return await server.start()


async def started_dispatcher(
    workers: dict[str, DecideServer], **kwargs
) -> FleetDispatcher:
    dispatcher = FleetDispatcher(port=0, **kwargs)
    await dispatcher.start()
    for worker_id, server in workers.items():
        host, port = server.address
        await dispatcher.add_worker(worker_id, host, port)
    return dispatcher


async def exchange(dispatcher: FleetDispatcher, frames: list) -> list:
    """Send all frames on one client connection; one reply each."""
    host, port = dispatcher.address
    reader, writer = await asyncio.open_connection(host, port)
    for frame in frames:
        text = frame if isinstance(frame, str) else json.dumps(frame)
        writer.write(text.encode("utf-8") + b"\n")
    await writer.drain()
    replies = []
    for __ in frames:
        line = await asyncio.wait_for(reader.readline(), timeout=30)
        replies.append(json.loads(line))
    writer.close()
    await writer.wait_closed()
    return replies


async def shutdown(
    dispatcher: FleetDispatcher, *servers: DecideServer
) -> None:
    await dispatcher.close(drain_timeout=5)
    for server in servers:
        await server.close()


class TestProtocol:
    def test_ping_is_answered_locally(self):
        async def scenario():
            dispatcher = await started_dispatcher({})
            try:
                return await exchange(dispatcher, [{"op": "ping", "id": 9}])
            finally:
                await shutdown(dispatcher)

        (pong,) = run(scenario())
        assert pong == {"op": "pong", "id": 9}

    def test_decide_and_plan_forward_through_a_worker(self):
        async def scenario():
            worker = await started_worker()
            dispatcher = await started_dispatcher({"w0": worker})
            try:
                return await exchange(
                    dispatcher,
                    [
                        {"query": UNIVERSITY_QUERY, "id": 1},
                        {"op": "plan", "query": UNIVERSITY_QUERY, "id": 2},
                    ],
                )
            finally:
                await shutdown(dispatcher, worker)

        decided, plan = run(scenario())
        assert decided["decision"] == "yes" and decided["id"] == 1
        assert plan["answerable"] is True and plan["id"] == 2

    def test_malformed_frame_keeps_the_connection_open(self):
        async def scenario():
            worker = await started_worker()
            dispatcher = await started_dispatcher({"w0": worker})
            try:
                return await exchange(
                    dispatcher,
                    [
                        "{not json",
                        {"op": "no-such-op"},
                        {"query": UNIVERSITY_QUERY, "id": "after"},
                    ],
                )
            finally:
                await shutdown(dispatcher, worker)

        bad_json, bad_op, good = run(scenario())
        assert "error" in bad_json and "error" in bad_op
        assert good["decision"] == "yes" and good["id"] == "after"

    def test_empty_ring_sheds_with_retryable_overloaded(self):
        async def scenario():
            dispatcher = await started_dispatcher({})
            try:
                return await exchange(
                    dispatcher, [{"query": UNIVERSITY_QUERY, "id": 5}]
                )
            finally:
                await shutdown(dispatcher)

        (reply,) = run(scenario())
        error = reply["error"]
        assert error["type"] == "Overloaded"
        assert error["retryable"] is True
        assert reply["id"] == 5


class TestRouting:
    def test_one_schema_sticks_to_one_worker(self):
        schema = schema_to_dict(id_chain_workload(3).schema)

        async def scenario():
            workers = {
                "w0": await started_worker(),
                "w1": await started_worker(),
                "w2": await started_worker(),
            }
            dispatcher = await started_dispatcher(workers)
            try:
                frames = [
                    {"query": "Qlink0() :- R0(x)", "schema": schema, "id": i}
                    for i in range(12)
                ]
                replies = await exchange(dispatcher, frames)
                routed = {
                    worker_id: await started_worker_requests(server)
                    for worker_id, server in workers.items()
                }
                return replies, routed
            finally:
                await shutdown(dispatcher, *workers.values())

        async def started_worker_requests(server: DecideServer) -> int:
            return server.pool.stats()["counters"]["requests"]

        replies, routed = run(scenario())
        assert all(r["decision"] == "yes" for r in replies)
        # all 12 frames landed on exactly one worker's pool
        assert sorted(routed.values()) == [0, 0, 12]

    def test_spellings_of_one_schema_converge_via_learned_route(self):
        # Two spellings, same content: each spelling's maiden request
        # routes by its own serialization (and may land anywhere), but
        # the response teaches the dispatcher the content fingerprint —
        # after that, every spelling keys by the fingerprint and all
        # traffic for the schema collapses onto one canonical worker.
        schema = schema_to_dict(id_chain_workload(4).schema)
        respelled = json.loads(json.dumps(schema))
        respelled["relations"] = dict(
            reversed(list(schema["relations"].items()))
        )

        def counters(workers, key):
            return {
                worker_id: server.pool.stats()["counters"][key]
                for worker_id, server in workers.items()
            }

        async def scenario():
            workers = {f"w{i}": await started_worker() for i in range(4)}
            dispatcher = await started_dispatcher(workers)
            try:
                first = await exchange(
                    dispatcher,
                    [{"query": "Qlink0() :- R0(x)", "schema": schema}],
                )
                second = await exchange(
                    dispatcher,
                    [{"query": "Qlink0() :- R0(x)", "schema": respelled}],
                )
                requests_before = counters(workers, "requests")
                compiles_before = counters(workers, "schemas_compiled")
                steady = await exchange(
                    dispatcher,
                    [
                        {"query": "Qlink0() :- R0(x)", "schema": spelling}
                        for spelling in (schema, respelled) * 3
                    ],
                )
                deltas = {
                    worker_id: count - requests_before[worker_id]
                    for worker_id, count in counters(
                        workers, "requests"
                    ).items()
                }
                recompiled = counters(workers, "schemas_compiled")
                return (
                    first,
                    second,
                    steady,
                    deltas,
                    compiles_before,
                    recompiled,
                )
            finally:
                await shutdown(dispatcher, *workers.values())

        first, second, steady, deltas, before, after = run(scenario())
        assert first[0]["fingerprint"] == second[0]["fingerprint"]
        assert all(r["decision"] == "yes" for r in steady)
        # steady state: both spellings route to ONE canonical worker
        assert sorted(deltas.values()) == [0, 0, 0, 6]
        # ... and the steady-state traffic compiles nothing new
        assert after == before

    def test_distinct_schemas_spread_over_workers(self):
        schemas = [
            schema_to_dict(id_chain_workload(n).schema)
            for n in range(2, 14)
        ]

        async def scenario():
            workers = {f"w{i}": await started_worker() for i in range(4)}
            dispatcher = await started_dispatcher(workers)
            try:
                frames = [
                    {"query": "Qlink0() :- R0(x)", "schema": schema}
                    for schema in schemas
                ]
                replies = await exchange(dispatcher, frames)
                touched = sum(
                    1
                    for server in workers.values()
                    if server.pool.stats()["counters"]["requests"]
                )
                return replies, touched
            finally:
                await shutdown(dispatcher, *workers.values())

        replies, touched = run(scenario())
        assert all(r.get("decision") == "yes" for r in replies)
        # 12 distinct fingerprints over 4 workers: sharding must not be
        # degenerate (everything on one node).
        assert touched >= 2


class TestWorkerLoss:
    def test_lost_worker_fails_in_flight_frames_typed_and_retryable(self):
        # A "worker" that accepts the connection, reads one line, then
        # slams it shut: the dispatcher must fail the in-flight frame
        # with a retryable WorkerLost error — not a hang, not garbage.
        async def scenario():
            async def handler(reader, writer):
                await reader.readline()
                writer.close()

            trap = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = trap.sockets[0].getsockname()[1]
            dispatcher = FleetDispatcher(port=0, channels_per_worker=1)
            await dispatcher.start()
            await dispatcher.add_worker("trap", "127.0.0.1", port)
            try:
                return await asyncio.wait_for(
                    exchange(
                        dispatcher, [{"query": UNIVERSITY_QUERY, "id": 3}]
                    ),
                    timeout=10,
                )
            finally:
                await shutdown(dispatcher)
                trap.close()
                await trap.wait_closed()

        (reply,) = run(scenario())
        error = reply["error"]
        assert error["type"] == "WorkerLost"
        assert error["retryable"] is True
        assert error["retry_after_ms"] > 0
        assert reply["id"] == 3

    def test_dead_worker_is_evicted_and_traffic_reroutes(self):
        async def scenario():
            victim = await started_worker()
            survivor = await started_worker()
            dispatcher = await started_dispatcher(
                {"victim": victim, "survivor": survivor}
            )
            try:
                await victim.close()  # the process "dies"
                # Whatever frame hits the dead worker first comes back
                # WorkerLost; eviction then reroutes the rest.  Poll
                # until the ring has healed.
                outcomes = []
                for attempt in range(50):
                    (reply,) = await exchange(
                        dispatcher,
                        [{"query": UNIVERSITY_QUERY, "id": attempt}],
                    )
                    outcomes.append(reply)
                    if reply.get("decision") == "yes":
                        break
                    error = reply["error"]
                    assert error["retryable"] is True
                    assert error["type"] in ("WorkerLost", "Overloaded")
                    await asyncio.sleep(0.05)
                return outcomes, dispatcher.workers
            finally:
                await shutdown(dispatcher, survivor)

        outcomes, workers = run(scenario())
        assert outcomes[-1]["decision"] == "yes"
        assert workers == ("survivor",)

    def test_readded_worker_serves_its_shard_again(self):
        async def scenario():
            worker = await started_worker()
            dispatcher = await started_dispatcher({"w0": worker})
            try:
                (before,) = await exchange(
                    dispatcher, [{"query": UNIVERSITY_QUERY}]
                )
                await dispatcher.remove_worker("w0")
                (during,) = await exchange(
                    dispatcher, [{"query": UNIVERSITY_QUERY}]
                )
                host, port = worker.address
                await dispatcher.add_worker("w0", host, port)
                (after,) = await exchange(
                    dispatcher, [{"query": UNIVERSITY_QUERY}]
                )
                return before, during, after
            finally:
                await shutdown(dispatcher, worker)

        before, during, after = run(scenario())
        assert before["decision"] == "yes"
        assert during["error"]["type"] == "Overloaded"
        assert during["error"]["retryable"] is True
        assert after["decision"] == "yes"


class TestStats:
    def test_stats_aggregate_ring_counters_and_worker_pools(self):
        async def scenario():
            workers = {
                "w0": await started_worker(),
                "w1": await started_worker(),
            }
            dispatcher = await started_dispatcher(workers)
            try:
                await exchange(
                    dispatcher, [{"query": UNIVERSITY_QUERY, "id": 1}]
                )
                (stats,) = await exchange(
                    dispatcher, [{"op": "stats", "id": "s"}]
                )
                return stats
            finally:
                await shutdown(dispatcher, *workers.values())

        stats = run(scenario())
        assert stats["op"] == "stats" and stats["id"] == "s"
        fleet = stats["fleet"]
        assert fleet["workers"] == 2
        assert sorted(fleet["ring"]["nodes"]) == ["w0", "w1"]
        assert fleet["counters"]["routed"] >= 1
        per_worker = {entry["worker"]: entry for entry in stats["workers"]}
        assert set(per_worker) == {"w0", "w1"}
        for entry in per_worker.values():
            # each worker contributes its own full stats frame,
            # including the pool's per-fingerprint shard heat
            assert "per_fingerprint" in entry["stats"]["pool"]

    def test_concurrent_clients_interleave_without_crosstalk(self):
        schemas = {
            n: schema_to_dict(id_chain_workload(n).schema)
            for n in (2, 3, 4)
        }

        async def one_client(dispatcher, n, schema):
            frames = [
                {"query": "Qlink0() :- R0(x)", "schema": schema, "id": f"{n}-{i}"}
                for i in range(6)
            ]
            return await exchange(dispatcher, frames)

        async def scenario():
            workers = {f"w{i}": await started_worker() for i in range(3)}
            dispatcher = await started_dispatcher(workers)
            try:
                batches = await asyncio.gather(
                    *(
                        one_client(dispatcher, n, schema)
                        for n, schema in schemas.items()
                    )
                )
                return batches
            finally:
                await shutdown(dispatcher, *workers.values())

        batches = run(scenario())
        for (n, _), replies in zip(schemas.items(), batches):
            for i, reply in enumerate(replies):
                assert reply["decision"] == "yes"
                assert reply["id"] == f"{n}-{i}"  # FIFO: no crosstalk


class TestDrain:
    def test_close_is_idempotent_and_releases_workers(self):
        async def scenario():
            worker = await started_worker()
            dispatcher = await started_dispatcher({"w0": worker})
            await dispatcher.close(drain_timeout=2)
            await dispatcher.close(drain_timeout=2)
            assert dispatcher.workers == ()
            await worker.close()

        run(scenario())
