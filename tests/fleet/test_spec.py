"""Unit tests for `WorkerSpec` — the spawn/health/backoff config that
``supervise`` and ``fleet`` share — and the supervisor's worker
lifecycle hooks the fleet's ring admission rides on."""

import threading

from repro.server import (
    BackoffPolicy,
    BreakerPolicy,
    Supervisor,
    WorkerSpec,
)


class FakeWorker:
    """Scripted stand-in for a WorkerHandle (same duck surface)."""

    def __init__(self) -> None:
        self.alive = True
        self.terminated = False
        self.exitcode = None
        self.pid = 4242

    def is_alive(self) -> bool:
        return self.alive

    def terminate(self) -> None:
        self.terminated = True
        self.alive = False
        self.exitcode = 0

    def kill(self) -> None:
        self.alive = False
        self.exitcode = -9

    def join(self, timeout=None) -> None:
        pass


class TestServeArgv:
    def test_minimal_spec(self):
        argv = WorkerSpec().serve_argv()
        assert argv == ["--host", "127.0.0.1", "--port", "0"]

    def test_full_spec_orders_schema_first(self):
        spec = WorkerSpec(
            schema="schema.json",
            host="0.0.0.0",
            port=9000,
            warm="manifest.json",
            serve_args=("--max-rounds", "50", "--no-subsumption"),
        )
        assert spec.serve_argv() == [
            "schema.json",
            "--host", "0.0.0.0",
            "--port", "9000",
            "--warm", "manifest.json",
            "--max-rounds", "50",
            "--no-subsumption",
        ]

    def test_serve_args_are_transported_verbatim(self):
        spec = WorkerSpec(serve_args=("--client-rate", "5.5"))
        assert spec.serve_argv()[-2:] == ["--client-rate", "5.5"]


class TestSupervisorWiring:
    def test_policies_flow_into_the_supervisor(self):
        backoff = BackoffPolicy(base_s=0.25, cap_s=2.0)
        breaker = BreakerPolicy(max_crashes=2, window_s=7.0)
        spec = WorkerSpec(
            backoff=backoff,
            breaker=breaker,
            health_interval_s=0.5,
            health_failures=7,
        )
        supervisor = spec.supervisor()
        assert isinstance(supervisor, Supervisor)
        assert supervisor.backoff is backoff
        assert supervisor.breaker is breaker
        assert supervisor.health_interval_s == 0.5
        assert supervisor.health_failures == 7

    def test_up_down_hooks_fire_around_the_worker_lifetime(self):
        # The fleet admits a worker to the ring from on_worker_up and
        # evicts it from on_worker_down: the hooks must bracket every
        # generation, in order, on the supervisor thread.
        events = []
        worker = FakeWorker()
        spec = WorkerSpec(breaker=BreakerPolicy(max_crashes=1))
        supervisor = spec.supervisor(
            on_worker_up=lambda w: events.append(("up", w)),
            on_worker_down=lambda w: events.append(("down", w)),
            spawn=lambda: worker,
            health_check=lambda: worker.is_alive(),
            health_interval_s=0.01,
            health_grace_s=0.0,
            sleep=lambda s: None,
        )

        def die_soon():
            worker.alive = False

        killer = threading.Timer(0.05, die_soon)
        killer.start()
        try:
            supervisor.run()
        except Exception:
            pass  # breaker trip ends the run; the hooks are the point
        finally:
            killer.cancel()
        assert [kind for kind, __ in events[:2]] == ["up", "down"]
        assert events[0][1] is worker and events[1][1] is worker

    def test_health_check_follows_the_discovered_address(self):
        # port=0 specs: the probe must ping whatever address the live
        # generation announced, not the requested port.
        spec = WorkerSpec(port=0)
        supervisor = spec.supervisor(spawn=lambda: FakeWorker())
        # No worker yet: the address-following probe fails closed.
        assert supervisor._health_check() is False
        worker = FakeWorker()
        worker.address = None
        supervisor.worker = worker
        assert supervisor._health_check() is False  # spawned, not ready
