"""Benchmark FIN-1: the finite closure of UIDs + FDs (Cor 7.3 / Thm 7.4).

Finite monotone answerability for UIDs + FDs reduces to unrestricted
answerability over the finite closure Σ*.  This benchmark times the
closure computation on UID cycles of growing length (each cycle + FD
squeeze reverses all its edges) and validates the reversals semantically
on finite witnesses.
"""

import pytest

from repro.constraints import fd, finite_closure, inclusion_dependency
from repro.data import Instance
from repro.logic import Atom, Constant

from _harness import RowReport, print_row

CYCLE_LENGTHS = [2, 4, 8]


def cycle_constraints(length):
    """A cardinality cycle: UID R_i[0] ⊆ R_{i+1}[1] gives
    |vals@(R_i,0)| ≤ |vals@(R_{i+1},1)|, and FD R_i: 0 → 1 gives
    |vals@(R_i,1)| ≤ |vals@(R_i,0)| — chaining around the cycle squeezes
    every inequality into an equality, so all UIDs and FDs reverse."""
    uids = []
    fds = []
    arities = {}
    for i in range(length):
        src = f"R{i}"
        dst = f"R{(i + 1) % length}"
        arities[src] = 2
        uids.append(inclusion_dependency(src, (0,), dst, (1,), 2, 2))
        fds.append(fd(src, [0], 1))
    return uids, fds, arities


@pytest.mark.parametrize("length", CYCLE_LENGTHS)
def test_finite_closure_cycle(benchmark, length):
    uids, fds_, arities = cycle_constraints(length)
    closure = benchmark(lambda: finite_closure(uids, fds_, arities))
    # Every UID in the cycle reverses.
    for i in range(length):
        src = (f"R{(i + 1) % length}", 1)
        dst = (f"R{i}", 0)
        assert (src, dst) in closure.uids
    # Every FD reverses too.
    for i in range(length):
        assert fd(f"R{i}", [1], 0) in closure.fds


def test_reversals_hold_on_finite_witness(benchmark):
    """A concrete finite model of the premises satisfies the closure."""
    uids, fds_, arities = cycle_constraints(2)

    def check():
        closure = finite_closure(uids, fds_, arities)
        witness = Instance(
            [
                Atom("R0", (Constant("a"), Constant("a"))),
                Atom("R1", (Constant("a"), Constant("a"))),
            ]
        )
        for dependency in uids + fds_:
            assert dependency.satisfied_by(witness)
        for dependency in closure.uid_tgds(arities):
            assert dependency.satisfied_by(witness)
        for dependency in closure.fds:
            assert dependency.satisfied_by(witness)
        return closure

    benchmark(check)


def test_print_table_row(benchmark):
    import time

    def row():
        measurements = []
        for length in CYCLE_LENGTHS:
            uids, fds_, arities = cycle_constraints(length)
            start = time.perf_counter()
            finite_closure(uids, fds_, arities)
            measurements.append(
                (f"UID cycle length {length}", time.perf_counter() - start)
            )
        return RowReport(
            "Finite variant (UIDs+FDs)",
            "finite closure Σ* reduces finite to unrestricted "
            "answerability (Thm 7.4 / Cor 7.3)",
            "cycle reversals validated on finite witnesses",
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
