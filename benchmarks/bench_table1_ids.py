"""Table 1, row "IDs": existence-check simplifiable, EXPTIME-complete.

Validates Theorem 4.2 behaviourally (result bounds act as existence
checks: the bound's value never changes the verdict; the existence-check
simplified schema decides identically) and benchmarks the ID decider on
the lookup-chain family, scaling the number of relations (the polynomial
dimension) — the exponential dimension (width) is in
``bench_table1_bounded_width_ids.py``.
"""

import pytest

from repro.answerability import (
    decide_monotone_answerability,
    decide_with_ids,
    existence_check_simplification,
    find_amondet_counterexample,
)
from repro.workloads.generators import lookup_chain_workload

from _harness import RowReport, print_row, time_decisions, validate_workloads

ANSWERABLE_SIZES = [1, 2, 3, 4]
BOUNDED_SIZES = [1, 2, 4, 6]


def _family(bound):
    sizes = ANSWERABLE_SIZES if bound is None else BOUNDED_SIZES
    return [lookup_chain_workload(n, dump_bound=bound) for n in sizes]


@pytest.mark.parametrize("size", ANSWERABLE_SIZES)
def test_decide_answerable_chain(benchmark, size):
    workload = lookup_chain_workload(size, dump_bound=None)
    result = benchmark(
        lambda: decide_monotone_answerability(workload.schema, workload.query)
    )
    assert result.is_yes


@pytest.mark.parametrize("size", BOUNDED_SIZES)
def test_decide_bounded_chain(benchmark, size):
    workload = lookup_chain_workload(size, dump_bound=50)
    result = benchmark(
        lambda: decide_monotone_answerability(workload.schema, workload.query)
    )
    assert result.is_no


def test_bound_value_invariance(benchmark):
    """Thm 4.2's consequence: the verdict is invariant in the bound k."""

    def check():
        verdicts = set()
        for bound in (1, 5, 100, 5000):
            workload = lookup_chain_workload(2, dump_bound=bound)
            verdicts.add(
                decide_monotone_answerability(
                    workload.schema, workload.query
                ).truth
            )
        return verdicts

    verdicts = benchmark(check)
    assert len(verdicts) == 1


def test_existence_check_simplification_preserves_verdict(benchmark):
    """Deciding on the simplified schema gives the same answers."""

    def check():
        agreements = 0
        for bound in (None, 10):
            for n in (1, 2, 3):
                workload = lookup_chain_workload(n, dump_bound=bound)
                direct = decide_monotone_answerability(
                    workload.schema, workload.query
                )
                simplified = existence_check_simplification(workload.schema)
                via_simpl = decide_with_ids(
                    simplified.schema, workload.query
                )
                assert direct.truth == via_simpl.truth, workload.name
                agreements += 1
        return agreements

    assert benchmark(check) == 6


def test_falsifier_cross_validation(benchmark):
    """The semantic falsifier certifies the NO of the bounded chain."""
    workload = lookup_chain_workload(1, dump_bound=2)

    def falsify():
        return find_amondet_counterexample(workload.schema, workload.query)

    counterexample = benchmark.pedantic(falsify, rounds=1, iterations=1)
    assert counterexample is not None
    assert counterexample.verify(workload.schema, workload.query)


def test_print_table_row(benchmark):
    def row():
        validation = validate_workloads(_family(None) + _family(25))
        measurements = time_decisions(_family(25), repeat=1)
        return RowReport(
            "IDs",
            "existence-check simplifiable (Thm 4.2); "
            "EXPTIME-complete (Thm 5.3)",
            validation,
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
