"""Ablation AB-1: linearization vs direct guarded chase for ID schemas.

The paper's Thm 5.4 route (linearize, then backward rewriting —
terminating and complete) against the naive route (existence-check
simplification + chase — may diverge).  The benchmark compares wall
clocks where both are definitive and counts the cases only linearization
settles (cyclic IDs).
"""

import pytest

from repro.answerability import decide_with_ids
from repro.constraints import tgd
from repro.logic import Constant, atom, boolean_cq
from repro.schema import Schema
from repro.workloads.generators import (
    lookup_chain_workload,
    random_id_workload,
)

from _harness import RowReport, print_row

CHAIN_SIZES = [1, 2, 4]


@pytest.mark.parametrize("size", CHAIN_SIZES)
@pytest.mark.parametrize("route", ["linearization", "chase"])
def test_route_timing(benchmark, size, route):
    workload = lookup_chain_workload(size, dump_bound=20)
    result = benchmark(
        lambda: decide_with_ids(
            workload.schema, workload.query, route=route, max_rounds=30
        )
    )
    assert result.is_no


def cyclic_schema():
    schema = Schema()
    schema.add_relation("R", 2)
    schema.add_method("m", "R", inputs=[0])
    schema.add_constraint(tgd("R(x, y) -> R(y, z)"))
    return schema


def test_linearization_settles_cyclic_ids(benchmark):
    """On a cyclic-ID NO case the chase diverges (UNKNOWN) while the
    linearized rewriting terminates with a definitive NO."""
    schema = cyclic_schema()
    # No constants: nothing is ever accessible, so Q is not answerable;
    # but the Σ-chase of CanonDB(Q) runs forever.
    q = boolean_cq([atom("R", "x", "y")])

    def both():
        lin = decide_with_ids(schema, q, route="linearization")
        cha = decide_with_ids(schema, q, route="chase", max_rounds=8)
        return lin, cha

    lin, cha = benchmark(both)
    assert lin.is_no
    assert cha.is_unknown


def test_agreement_on_random_schemas(benchmark):
    """Cross-validation: the routes never disagree when both definitive."""

    def sweep():
        agreements = disagreements = only_linearization = 0
        for seed in range(12):
            workload = random_id_workload(seed)
            lin = decide_with_ids(
                workload.schema, workload.query, route="linearization"
            )
            cha = decide_with_ids(
                workload.schema, workload.query, route="chase",
                max_rounds=12,
            )
            if cha.is_unknown:
                only_linearization += 1
            elif lin.truth == cha.truth:
                agreements += 1
            else:
                disagreements += 1
        return agreements, disagreements, only_linearization

    agreements, disagreements, only_lin = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    assert disagreements == 0
    assert agreements + only_lin == 12


def test_print_table_row(benchmark):
    import time

    def row():
        measurements = []
        for size in CHAIN_SIZES:
            workload = lookup_chain_workload(size, dump_bound=20)
            for route in ("linearization", "chase"):
                start = time.perf_counter()
                decide_with_ids(
                    workload.schema, workload.query, route=route,
                    max_rounds=30,
                )
                measurements.append(
                    (f"{workload.name} [{route}]",
                     time.perf_counter() - start)
                )
        return RowReport(
            "Ablation: linearization vs chase",
            "Prop 5.5 linearization is complete where the chase diverges",
            "routes agree on all definitive cases (see "
            "test_agreement_on_random_schemas)",
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
