"""Table 1, row "bounded-width IDs": existence-check, NP-complete.

The refinement of Theorem 5.4: at fixed ID width the linearized decision
procedure scales polynomially in the schema size (the NP dimension),
while growing the width inflates the saturation/linearization
exponentially (the dimension separating this row from the EXPTIME row
above it).  Both dimensions are benchmarked.
"""

import pytest

from repro.answerability import decide_with_ids, linearize
from repro.answerability.elimub import elim_ub
from repro.workloads.generators import (
    id_width_workload,
    lookup_chain_workload,
)

from _harness import RowReport, print_row, time_decisions, validate_workloads

CHAIN_SIZES = [2, 4, 6, 8]
WIDTHS = [1, 2, 3]


@pytest.mark.parametrize("size", CHAIN_SIZES)
def test_fixed_width_scaling(benchmark, size):
    """The NP dimension: width-1 chains of growing length."""
    workload = lookup_chain_workload(size, dump_bound=20)
    result = benchmark(
        lambda: decide_with_ids(workload.schema, workload.query)
    )
    assert result.is_no


@pytest.mark.parametrize("width", WIDTHS)
def test_width_scaling(benchmark, width):
    """The exponential dimension: growing ID width."""
    workload = id_width_workload(width)
    result = benchmark(
        lambda: decide_with_ids(workload.schema, workload.query)
    )
    assert result.is_yes


@pytest.mark.parametrize("width", WIDTHS)
def test_linearization_construction(benchmark, width):
    """Σ^Lin construction cost in isolation (the saturation engine)."""
    workload = id_width_workload(width)
    schema = elim_ub(workload.schema)
    system = benchmark(lambda: linearize(schema))
    assert system.rules


def test_rule_count_grows_with_width(benchmark):
    def count():
        return [
            len(linearize(elim_ub(id_width_workload(w).schema)).rules)
            for w in WIDTHS
        ]

    counts = benchmark.pedantic(count, rounds=1, iterations=1)
    assert counts == sorted(counts)


def test_print_table_row(benchmark):
    def row():
        family = [
            lookup_chain_workload(n, dump_bound=20) for n in CHAIN_SIZES
        ] + [id_width_workload(w) for w in WIDTHS]
        validation = validate_workloads(family)
        measurements = time_decisions(family, repeat=1)
        return RowReport(
            "Bounded-width IDs",
            "existence-check simplifiable; NP-complete (Thm 5.4, via "
            "linearization Prop 5.5)",
            validation,
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
