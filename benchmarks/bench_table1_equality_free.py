"""Table 1, row "Equality-free FO": choice simplifiable; undecidable.

Theorem 6.3 says choice simplification is sound for all equality-free
constraints (we validate the bound-invariance and the blow-up invariance
that powers the proof); Prop 8.2 says answerability is undecidable in
general — so this row benchmarks the *sound* machinery (choice
simplification + bounded chase, which may honestly return UNKNOWN) and
the blow-up itself, not a complete decider.
"""

import pytest

from repro.answerability import (
    blow_up_instance,
    choice_simplification,
    decide_with_choice_simplification,
)
from repro.data import Instance
from repro.logic import Atom, Constant, holds
from repro.workloads.generators import tgd_transfer_workload

from _harness import RowReport, print_row, time_decisions, validate_workloads

SOURCES = [1, 2, 4]
BLOWUP_SIZES = [5, 10, 20]


@pytest.mark.parametrize("sources", SOURCES)
def test_decide_tgd_family(benchmark, sources):
    workload = tgd_transfer_workload(sources)
    result = benchmark(
        lambda: decide_with_choice_simplification(
            workload.schema, workload.query
        )
    )
    assert result.is_yes


def test_bound_invariance_under_choice(benchmark):
    def check():
        verdicts = set()
        workload = tgd_transfer_workload(2)
        for bound in (1, 6, 300):
            schema = workload.schema.copy()
            methods = [
                m.with_result_bound(bound)
                if m.is_result_bounded()
                else m
                for m in schema.methods
            ]
            rebounded = schema.replace_methods(methods)
            verdicts.add(
                decide_with_choice_simplification(
                    rebounded, workload.query
                ).truth
            )
        return verdicts

    assert len(benchmark(check)) == 1


@pytest.mark.parametrize("size", BLOWUP_SIZES)
def test_blow_up_invariance(benchmark, size):
    """The engine of Thm 6.3: cloning preserves constraints + queries."""
    workload = tgd_transfer_workload(2)
    instance = Instance(
        [Atom("T", (Constant(i),)) for i in range(size)]
        + [Atom("S0", (Constant(0),)), Atom("S1", (Constant(1),))]
    )
    assert workload.schema.satisfied_by(instance)

    def blow_and_check():
        blown = blow_up_instance(instance, 2)
        assert workload.schema.satisfied_by(blown)
        assert holds(workload.query, blown)
        return len(blown)

    size_after = benchmark(blow_and_check)
    assert size_after == len(instance) * 2  # unary facts: 2 clones each


def test_choice_simplification_is_cheap(benchmark):
    workload = tgd_transfer_workload(4)
    result = benchmark(
        lambda: choice_simplification(workload.schema)
    )
    assert all(
        m.effective_bound() in (None, 1) for m in result.schema.methods
    )


def test_print_table_row(benchmark):
    def row():
        family = [tgd_transfer_workload(n) for n in SOURCES]
        validation = validate_workloads(family)
        measurements = time_decisions(family, repeat=1)
        return RowReport(
            "Equality-free FO (TGDs)",
            "choice simplifiable (Thm 6.3); undecidable in general "
            "(Prop 8.2) — sound bounded chase benchmarked",
            validation,
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
