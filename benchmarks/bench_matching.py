"""The compiled matching core: planned matcher vs the naive reference.

Every chase trigger search, activeness check, and containment probe
bottoms out in `repro.matching`.  This suite runs the *same* delta chase
engine with the two matcher implementations swapped — `Matcher` (planned,
memoized) vs `NaiveMatcher` (the pre-compilation reference search) — so
the speedup is attributable to plan compilation, ground probes, and the
generation-invalidated check cache alone:

* **closure-activeness** — restricted chase of transitive closure
  (full TGDs): per-round trigger joins plus an activeness check and a
  firing-time re-check per trigger.  Head-satisfaction checks are fully
  seeded here, so the planned matcher serves them as ground probes;
  this is the family the ROADMAP named as the dominant remaining chase
  cost.
* **existential-activeness** — closure through an existentially headed
  rule: activeness checks must search (not probe), exercising the
  check cache across the firing loop.
* **mixed-trigger-containment** — a batch of distinct reachability
  containments (``contains``) over one rule set: chase trigger search
  plus a per-round target probe per query, sharing one matcher across
  the batch the way a `CompiledSchema` does.

Each family asserts planned/naive agreement (outcomes, fact counts,
decisions) before timing, and records the planned matcher's cache
counters so the speedup can be attributed.  Results persist to
``BENCH_matching.json``; ``--smoke`` shrinks sizes for CI and writes a
sidecar so the committed artifact is untouched.
"""

from __future__ import annotations

import argparse
import gc
import time

from _harness import BenchRecord, write_bench_json

from repro.chase import chase
from repro.constraints import tgd
from repro.containment import contains
from repro.data import Instance
from repro.logic import Atom, Constant, boolean_cq, atom
from repro.matching import Matcher, NaiveMatcher


def _timed(run) -> float:
    # Fresh heap, collector paused: keep gen-2 sweeps out of the timed
    # region (these figures feed noise-clamped regression gates).
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        run()
        return time.perf_counter() - start
    finally:
        gc.enable()


def _best(run, repeats: int) -> float:
    return min(_timed(run) for __ in range(repeats))


def _path(n: int) -> Instance:
    return Instance(
        Atom("E", (Constant(i), Constant(i + 1))) for i in range(n)
    )


def _closure_rules():
    return [tgd("E(x, y) -> T(x, y)"), tgd("T(x, y), E(y, z) -> T(x, z)")]


def _existential_rules():
    return [
        tgd("E(x, y) -> T(x, y)"),
        tgd("T(x, y), E(y, z) -> T(x, z)"),
        tgd("T(x, y) -> W(x, w)"),
    ]


def _record(
    name: str,
    run_with,
    *,
    meta_of,
    agreement,
    planned_repeats: int = 5,
    naive_repeats: int = 2,
    extra_meta=None,
) -> BenchRecord:
    """Time `run_with(matcher)` on both matcher implementations.

    ``agreement(planned_result, naive_result)`` asserts the two runs
    computed the same thing; ``meta_of(result)`` extracts counters.
    """
    # The agreement run doubles as the counter-collection run.
    stats_matcher = Matcher()
    result = run_with(stats_matcher)
    naive_result = run_with(NaiveMatcher())
    agreement(result, naive_result)
    stats = stats_matcher.stats()

    naive_seconds = _best(lambda: run_with(NaiveMatcher()), naive_repeats)
    planned_seconds = _best(lambda: run_with(Matcher()), planned_repeats)
    speedup = (
        naive_seconds / planned_seconds if planned_seconds else float("inf")
    )
    meta = {
        "baseline_seconds": naive_seconds,
        "speedup": round(speedup, 2),
        "plans_compiled": stats["plans_compiled"],
        "plan_hits": stats["plan_hits"],
        "ground_probe_checks": stats["ground_probe_checks"],
        "check_hits": stats["check_hits"],
        "check_misses": stats["check_misses"],
    }
    meta.update(meta_of(result))
    if extra_meta:
        meta.update(extra_meta)
    print(
        f"  {name:34} naive {naive_seconds * 1000:9.2f} ms   "
        f"planned {planned_seconds * 1000:9.2f} ms   {speedup:6.1f}x"
    )
    return BenchRecord(name, planned_seconds, planned_repeats, meta)


def _chase_agreement(planned, naive) -> None:
    assert planned.outcome is naive.outcome, "outcomes diverge"
    assert len(planned.instance) == len(naive.instance), "fact counts diverge"
    assert planned.rounds == naive.rounds, "round counts diverge"
    assert planned.stats.searches == naive.stats.searches, (
        "search counts diverge"
    )


def _chase_meta(result) -> dict:
    return {
        "facts": len(result.instance),
        "rounds": result.rounds,
        "trigger_searches": result.stats.searches,
        "head_checks": result.stats.head_checks,
        "mode": "chase",
    }


def closure_family(size: int) -> BenchRecord:
    """Activeness-dominated closure: the ROADMAP's named chase target."""
    start = _path(size)
    rules = _closure_rules()
    return _record(
        f"closure-activeness-n{size}",
        lambda matcher: chase(start, rules, matcher=matcher),
        meta_of=_chase_meta,
        agreement=_chase_agreement,
    )


def existential_family(size: int) -> BenchRecord:
    """Closure plus an existential head: activeness checks must search,
    so the generation-invalidated check cache carries the win."""
    start = _path(size)
    rules = _existential_rules()
    return _record(
        f"existential-activeness-n{size}",
        lambda matcher: chase(start, rules, matcher=matcher),
        meta_of=_chase_meta,
        agreement=_chase_agreement,
    )


def containment_family(size: int, queries: int) -> BenchRecord:
    """Distinct reachability containments sharing one matcher: chase
    trigger search + per-round target probes, the `CompiledSchema`
    usage pattern."""
    rules = _closure_rules()
    step = max(1, size // queries)
    cases = []
    for k in range(1, queries + 1):
        hop = min(k * step, size)
        query = boolean_cq(
            [
                Atom("E", (Constant(i), Constant(i + 1)))
                for i in range(hop)
            ],
            name=f"path{hop}",
        )
        target = boolean_cq(
            [Atom("T", (Constant(0), Constant(hop)))], name=f"reach{hop}"
        )
        cases.append((query, target))
    # An unreachable target forces a full chase to fixpoint as well.
    cases.append(
        (
            boolean_cq(
                [Atom("E", (Constant(0), Constant(1)))], name="edge"
            ),
            boolean_cq([atom("T", "x", "x")], name="cycle"),
        )
    )

    def run(matcher):
        return [
            contains(query, target, rules, matcher=matcher)
            for query, target in cases
        ]

    def agreement(planned, naive) -> None:
        assert [d.truth for d in planned] == [d.truth for d in naive], (
            "containment decisions diverge"
        )

    return _record(
        f"mixed-trigger-containment-q{len(cases)}",
        run,
        meta_of=lambda decisions: {
            "queries": len(decisions),
            "yes": sum(1 for d in decisions if d.is_yes),
            "mode": "containment",
        },
        agreement=agreement,
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="bench_matching")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI smoke runs (written to a .smoke.json "
        "sidecar so the committed BENCH_matching.json is untouched)",
    )
    parser.add_argument("--out", default=None, help="output path override")
    args = parser.parse_args(argv)

    closure_sizes = [30] if args.smoke else [60, 120]
    existential_size = 20 if args.smoke else 60
    containment_size = 16 if args.smoke else 48
    containment_queries = 3 if args.smoke else 8

    print("matching core (planned Matcher vs NaiveMatcher, same engine):")
    records = [
        *(closure_family(size) for size in closure_sizes),
        existential_family(existential_size),
        containment_family(containment_size, containment_queries),
    ]

    from pathlib import Path

    from _harness import ROOT

    if args.out is not None:
        out = Path(args.out)
    elif args.smoke:
        out = ROOT / "BENCH_matching.smoke.json"
    else:
        out = None  # write_bench_json's default: BENCH_matching.json
    path = write_bench_json(
        "matching", records, extra={"smoke": args.smoke}, path=out
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
