"""Substrate benchmark AB-3: the chase engine itself.

Times the restricted chase on full-TGD closure workloads, existential
TGD chains, FD merge cascades, and the semi-oblivious policy — the
machinery every decider sits on.
"""

import pytest

from repro.chase import ChaseOutcome, chase
from repro.constraints import fd, tgd
from repro.data import Instance
from repro.logic import Atom, Constant, Null

SIZES = [20, 60, 120]


def _path(n):
    return Instance(
        Atom("E", (Constant(i), Constant(i + 1))) for i in range(n)
    )


@pytest.mark.parametrize("size", SIZES)
def test_full_tgd_transitive_closure(benchmark, size):
    """T(x,y) ∧ E(y,z) → T(x,z): quadratic closure of a path."""
    rules = [tgd("E(x, y) -> T(x, y)"), tgd("T(x, y), E(y, z) -> T(x, z)")]
    start = _path(size)
    result = benchmark.pedantic(
        lambda: chase(start, rules), rounds=2, iterations=1
    )
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance.facts_of("T")) == size * (size + 1) // 2


@pytest.mark.parametrize("size", SIZES)
def test_existential_chain(benchmark, size):
    """A(x) → B(x,z) → C(z): null creation and propagation."""
    rules = [tgd("A(x) -> B(x, z)"), tgd("B(x, z) -> C(z)")]
    start = Instance(Atom("A", (Constant(i),)) for i in range(size))
    result = benchmark(lambda: chase(start, rules))
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance.facts_of("C")) == size


@pytest.mark.parametrize("size", SIZES)
def test_fd_merge_cascade(benchmark, size):
    """n facts over one key: n-1 null merges."""
    start = Instance(
        Atom("R", (Constant("k"), Null(f"n{i}"))) for i in range(size)
    )
    result = benchmark.pedantic(
        lambda: chase(start, [fd("R", [0], 1)]), rounds=2, iterations=1
    )
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance) == 1


@pytest.mark.parametrize("size", [10, 30])
def test_semi_oblivious_vs_restricted(benchmark, size):
    """The semi-oblivious policy fires satisfied triggers too."""
    rules = [tgd("E(x, y) -> E(y, z)")]
    start = _path(size)

    def run():
        return chase(
            start, rules, policy="semi_oblivious", max_rounds=3,
            max_facts=50_000,
        )

    result = benchmark(run)
    assert len(result.instance) > size
