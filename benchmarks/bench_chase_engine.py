"""Substrate benchmark AB-3: the chase engine itself.

Times the restricted chase on full-TGD closure workloads, existential
TGD chains, FD merge cascades, and the semi-oblivious policy — the
machinery every decider sits on.  Besides the pytest-benchmark tests,
`collect_records` times every workload on both engines (``delta`` vs the
``naive`` reference) and `main` persists the comparison to
``BENCH_chase.json`` — the perf trajectory artifact future chase PRs
regress against.  Run it via ``python -m benchmarks --only chase``.
"""

import pytest

from repro.chase import ChaseOutcome, chase
from repro.constraints import fd, tgd
from repro.data import Instance
from repro.logic import Atom, Constant, Null

from _harness import BenchRecord, time_workload, write_bench_json

SIZES = [20, 60, 120]

#: Per-(workload, engine) repeat counts for the JSON run: the naive
#: engine is orders of magnitude slower on the large scaling points, so
#: it gets a single measured run where delta gets best-of-3.
_REPEATS = {"delta": 3, "naive": 1}


def _path(n):
    return Instance(
        Atom("E", (Constant(i), Constant(i + 1))) for i in range(n)
    )


def _closure_rules():
    return [tgd("E(x, y) -> T(x, y)"), tgd("T(x, y), E(y, z) -> T(x, z)")]


def chase_workloads():
    """The scaling families timed by the JSON artifact.

    Each entry is ``(name, build)`` where ``build(engine)`` runs one
    chase and returns its `ChaseResult`.  The last transitive-closure
    point is the "largest scaling point" of the acceptance criterion.
    """
    workloads = []
    for size in SIZES:
        start = _path(size)
        rules = _closure_rules()
        workloads.append((
            f"transitive-closure-n{size}",
            lambda engine, s=start, r=rules: chase(s, r, engine=engine),
        ))
    for size in [200, 1000]:
        start = Instance(Atom("A", (Constant(i),)) for i in range(size))
        rules = [tgd("A(x) -> B(x, z)"), tgd("B(x, z) -> C(z)")]
        workloads.append((
            f"existential-chain-n{size}",
            lambda engine, s=start, r=rules: chase(s, r, engine=engine),
        ))
    for size in [200, 600]:
        start = Instance(
            Atom("R", (Constant("k"), Null(f"n{i}"))) for i in range(size)
        )
        rules = [fd("R", [0], 1)]
        workloads.append((
            f"fd-merge-cascade-n{size}",
            lambda engine, s=start, r=rules: chase(s, r, engine=engine),
        ))
    start = _path(30)
    rules = [tgd("E(x, y) -> E(y, z)")]
    workloads.append((
        "semi-oblivious-n30",
        lambda engine, s=start, r=rules: chase(
            s, r, policy="semi_oblivious", max_rounds=3, max_facts=50_000,
            engine=engine,
        ),
    ))
    return workloads


def _result_meta(result):
    return {
        "facts": len(result.instance),
        "rounds": result.rounds,
        "outcome": result.outcome.value,
        "trigger_searches": result.stats.searches,
        "merges": result.stats.merges,
    }


def collect_records(engines=("delta", "naive")):
    """Time every workload on every engine; return `BenchRecord` rows."""
    records: list[BenchRecord] = []
    for name, build in chase_workloads():
        for engine in engines:
            record = time_workload(
                f"{name}",
                lambda engine=engine, build=build: build(engine),
                repeat=_REPEATS.get(engine, 1),
                meta_of=_result_meta,
            )
            record.meta["engine"] = engine
            records.append(record)
            print(
                f"  {name:32s} {engine:6s} {record.best_seconds * 1000:10.2f} ms"
                f"  ({record.meta['facts']} facts, "
                f"{record.meta['rounds']} rounds, "
                f"{record.meta['trigger_searches']} searches)"
            )
    return records


def _speedups(records):
    """delta-vs-naive speedup per workload name, where both were run."""
    by_key = {(r.name, r.meta.get("engine")): r for r in records}
    speedups = {}
    for (name, engine), record in by_key.items():
        if engine != "delta":
            continue
        reference = by_key.get((name, "naive"))
        if reference is not None and record.best_seconds > 0:
            speedups[name] = round(
                reference.best_seconds / record.best_seconds, 2
            )
    return speedups


def main() -> None:
    """Regenerate BENCH_chase.json (delta vs naive on all workloads)."""
    print("chase engine benchmark (delta vs naive):")
    records = collect_records()
    speedups = _speedups(records)
    target = write_bench_json(
        "chase", records, extra={"speedups_delta_vs_naive": speedups}
    )
    print(f"speedups (delta vs naive): {speedups}")
    print(f"wrote {target}")


# ----------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("size", SIZES)
def test_full_tgd_transitive_closure(benchmark, size):
    """T(x,y) ∧ E(y,z) → T(x,z): quadratic closure of a path."""
    rules = _closure_rules()
    start = _path(size)
    result = benchmark.pedantic(
        lambda: chase(start, rules), rounds=2, iterations=1
    )
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance.facts_of("T")) == size * (size + 1) // 2


@pytest.mark.parametrize("size", SIZES)
def test_existential_chain(benchmark, size):
    """A(x) → B(x,z) → C(z): null creation and propagation."""
    rules = [tgd("A(x) -> B(x, z)"), tgd("B(x, z) -> C(z)")]
    start = Instance(Atom("A", (Constant(i),)) for i in range(size))
    result = benchmark(lambda: chase(start, rules))
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance.facts_of("C")) == size


@pytest.mark.parametrize("size", SIZES)
def test_fd_merge_cascade(benchmark, size):
    """n facts over one key: n-1 null merges."""
    start = Instance(
        Atom("R", (Constant("k"), Null(f"n{i}"))) for i in range(size)
    )
    result = benchmark.pedantic(
        lambda: chase(start, [fd("R", [0], 1)]), rounds=2, iterations=1
    )
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance) == 1


@pytest.mark.parametrize("size", [10, 30])
def test_semi_oblivious_vs_restricted(benchmark, size):
    """The semi-oblivious policy fires satisfied triggers too."""
    rules = [tgd("E(x, y) -> E(y, z)")]
    start = _path(size)

    def run():
        return chase(
            start, rules, policy="semi_oblivious", max_rounds=3,
            max_facts=50_000,
        )

    result = benchmark(run)
    assert len(result.instance) > size
