"""Substrate benchmark AB-3: the chase engine itself.

Times the restricted chase on full-TGD closure workloads, existential
TGD chains, FD merge cascades, and the semi-oblivious policy — the
machinery every decider sits on.  Besides the pytest-benchmark tests,
`collect_records` times every workload on both engines (``delta`` vs the
``naive`` reference) plus, on the transitive-closure family, the delta
engine on the object-executor matcher (``delta/object``) so the interned
int-slot executor's speedup is measured in the same run on the same
host.  ``main`` persists the comparison to ``BENCH_chase.json`` — the
perf trajectory artifact future chase PRs regress against
(`check_regression.py` gates the closure-family int-vs-object speedup
at ≥2×).  Run it via ``python -m benchmarks --only chase``; ``--smoke``
shrinks sizes for CI, ``--parallelism N`` routes every chase through
the parallel trigger-collection pool.
"""

import argparse
import os
from pathlib import Path

import pytest

from repro.chase import ChaseOutcome, chase
from repro.constraints import fd, tgd
from repro.data import Instance
from repro.logic import Atom, Constant, Null
from repro.matching import Matcher

from _harness import ROOT, BenchRecord, time_workload, write_bench_json

SIZES = [20, 60, 120]

#: The previously-impractical scaling point: delta-only (the naive
#: reference needs minutes here) with full best-of-3 repeats.
LARGE_SIZE = 240

#: Per-(workload, engine) repeat counts for the JSON run: the naive
#: engine is orders of magnitude slower on the large scaling points, so
#: it gets a single measured run where delta gets best-of-3.
_REPEATS = {"delta": 3, "naive": 1, "delta/object": 3}


def _path(n):
    return Instance(
        Atom("E", (Constant(i), Constant(i + 1))) for i in range(n)
    )


def _closure_rules():
    return [tgd("E(x, y) -> T(x, y)"), tgd("T(x, y), E(y, z) -> T(x, z)")]


def chase_workloads(*, smoke: bool = False, parallelism: int = 0):
    """The scaling families timed by the JSON artifact.

    Each entry is ``(name, build)`` where ``build(engine, matcher=None)``
    runs one chase and returns its `ChaseResult`.  The
    transitive-closure points are the family the ≥2× executor gate is
    measured on; `LARGE_SIZE` is the "previously-impractical" scaling
    point of the acceptance criterion (delta-only).
    """

    def runner(start, rules, **fixed):
        return lambda engine, matcher=None, s=start, r=rules: chase(
            s, r, engine=engine, matcher=matcher, parallelism=parallelism,
            **fixed,
        )

    workloads = []
    closure_sizes = [20, 40] if smoke else SIZES + [LARGE_SIZE]
    for size in closure_sizes:
        workloads.append((
            f"transitive-closure-n{size}",
            runner(_path(size), _closure_rules()),
        ))
    for size in [200] if smoke else [200, 1000]:
        start = Instance(Atom("A", (Constant(i),)) for i in range(size))
        rules = [tgd("A(x) -> B(x, z)"), tgd("B(x, z) -> C(z)")]
        workloads.append((f"existential-chain-n{size}", runner(start, rules)))
    for size in [200] if smoke else [200, 600]:
        start = Instance(
            Atom("R", (Constant("k"), Null(f"n{i}"))) for i in range(size)
        )
        workloads.append((
            f"fd-merge-cascade-n{size}", runner(start, [fd("R", [0], 1)]),
        ))
    workloads.append((
        "semi-oblivious-n30",
        runner(
            _path(30), [tgd("E(x, y) -> E(y, z)")],
            policy="semi_oblivious", max_rounds=3, max_facts=50_000,
        ),
    ))
    return workloads


def _result_meta(result):
    return {
        "facts": len(result.instance),
        "rounds": result.rounds,
        "outcome": result.outcome.value,
        "trigger_searches": result.stats.searches,
        "merges": result.stats.merges,
    }


def collect_records(
    engines=("delta", "naive"), *, smoke=False, parallelism=0
):
    """Time every workload on every engine; return `BenchRecord` rows.

    Besides the requested engines, every transitive-closure workload is
    additionally timed as ``delta/object`` — the delta engine on a
    `Matcher(execution="object")` — so the int-executor speedup is a
    same-run, same-host ratio rather than a cross-commit wall-clock
    comparison.  The naive reference is skipped on the `LARGE_SIZE`
    closure point (it needs minutes there; that point exists precisely
    because the delta+int engine makes it practical).
    """
    records: list[BenchRecord] = []
    host_cpus = os.cpu_count()
    for name, build in chase_workloads(smoke=smoke, parallelism=parallelism):
        is_closure = name.startswith("transitive-closure")
        runs = list(engines)
        if is_closure:
            runs.append("delta/object")
        if name == f"transitive-closure-n{LARGE_SIZE}" and "naive" in runs:
            runs.remove("naive")
        for engine in runs:
            matcher_of = (
                (lambda: Matcher(execution="object"))
                if engine == "delta/object"
                else (lambda: Matcher(execution="int"))
            )
            record = time_workload(
                f"{name}",
                lambda build=build, engine=engine, matcher_of=matcher_of: (
                    build(engine.split("/")[0], matcher=matcher_of())
                ),
                repeat=_REPEATS.get(engine, 1),
                meta_of=_result_meta,
            )
            record.meta["engine"] = engine
            record.meta["host_cpus"] = host_cpus
            record.meta["parallelism"] = parallelism
            records.append(record)
            print(
                f"  {name:32s} {engine:12s} "
                f"{record.best_seconds * 1000:10.2f} ms"
                f"  ({record.meta['facts']} facts, "
                f"{record.meta['rounds']} rounds, "
                f"{record.meta['trigger_searches']} searches)"
            )
    return records


def _speedups(records, reference_engine, target_engine="delta"):
    """Per-workload speedup of `target_engine` over `reference_engine`."""
    by_key = {(r.name, r.meta.get("engine")): r for r in records}
    speedups = {}
    for (name, engine), record in by_key.items():
        if engine != target_engine:
            continue
        reference = by_key.get((name, reference_engine))
        if reference is not None and record.best_seconds > 0:
            speedups[name] = round(
                reference.best_seconds / record.best_seconds, 2
            )
    return speedups


def main(argv: list[str] | None = None) -> None:
    """Regenerate BENCH_chase.json (delta vs naive vs object executor)."""
    parser = argparse.ArgumentParser(prog="bench_chase_engine")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI smoke runs (written to a .smoke.json "
        "sidecar unless --out is given)",
    )
    parser.add_argument("--out", default=None, help="output path override")
    parser.add_argument(
        "--parallelism",
        type=int,
        default=0,
        help="chase trigger-collection worker threads (0 = sequential; "
        "the CI smoke step passes 2 to exercise the parallel engine)",
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    print(
        f"chase engine benchmark ({mode}, parallelism={args.parallelism}):"
    )
    records = collect_records(smoke=args.smoke, parallelism=args.parallelism)
    delta_vs_naive = _speedups(records, "naive")
    int_vs_object = _speedups(records, "delta/object")
    if args.out:
        out = Path(args.out)
    elif args.smoke:
        out = ROOT / "BENCH_chase.smoke.json"
    else:
        out = None
    target = write_bench_json(
        "chase",
        records,
        extra={
            "smoke": args.smoke,
            "host_cpus": os.cpu_count(),
            "parallelism": args.parallelism,
            "speedups_delta_vs_naive": delta_vs_naive,
            "speedups_int_vs_object": int_vs_object,
        },
        path=out,
    )
    print(f"speedups (delta vs naive): {delta_vs_naive}")
    print(f"speedups (int vs object executor): {int_vs_object}")
    print(f"wrote {target}")


# ----------------------------------------------------------------------
# pytest-benchmark entry points (pytest benchmarks/ --benchmark-only)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("size", SIZES)
def test_full_tgd_transitive_closure(benchmark, size):
    """T(x,y) ∧ E(y,z) → T(x,z): quadratic closure of a path."""
    rules = _closure_rules()
    start = _path(size)
    result = benchmark.pedantic(
        lambda: chase(start, rules), rounds=2, iterations=1
    )
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance.facts_of("T")) == size * (size + 1) // 2


@pytest.mark.parametrize("size", SIZES)
def test_existential_chain(benchmark, size):
    """A(x) → B(x,z) → C(z): null creation and propagation."""
    rules = [tgd("A(x) -> B(x, z)"), tgd("B(x, z) -> C(z)")]
    start = Instance(Atom("A", (Constant(i),)) for i in range(size))
    result = benchmark(lambda: chase(start, rules))
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance.facts_of("C")) == size


@pytest.mark.parametrize("size", SIZES)
def test_fd_merge_cascade(benchmark, size):
    """n facts over one key: n-1 null merges."""
    start = Instance(
        Atom("R", (Constant("k"), Null(f"n{i}"))) for i in range(size)
    )
    result = benchmark.pedantic(
        lambda: chase(start, [fd("R", [0], 1)]), rounds=2, iterations=1
    )
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert len(result.instance) == 1


@pytest.mark.parametrize("size", [10, 30])
def test_semi_oblivious_vs_restricted(benchmark, size):
    """The semi-oblivious policy fires satisfied triggers too."""
    rules = [tgd("E(x, y) -> E(y, z)")]
    start = _path(size)

    def run():
        return chase(
            start, rules, policy="semi_oblivious", max_rounds=3,
            max_facts=50_000,
        )

    result = benchmark(run)
    assert len(result.instance) > size


if __name__ == "__main__":
    main()
