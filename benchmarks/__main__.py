"""Entry point: ``PYTHONPATH=src python -m benchmarks``.

Runs every ``bench_*`` module in this directory.  Modules exposing a
``main()`` (currently the chase engine suite) are run directly and
persist their machine-readable ``BENCH_*.json`` artifacts; the remaining
pytest-benchmark modules are run through pytest and refresh
``TABLE1_REPORT.md``.

Options:

* ``--only PATTERN``  — run only bench modules whose name contains
  PATTERN (e.g. ``--only chase``);
* ``--skip-pytest``   — run only the direct (JSON-emitting) suites;
* ``--smoke``         — pass ``--smoke`` to direct suites that take
  arguments (small sizes, for CI).
"""

from __future__ import annotations

import argparse
import importlib.util
import inspect
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent


def _bench_modules() -> list[Path]:
    return sorted(HERE.glob("bench_*.py"))


def _load(path: Path):
    # The bench modules import the shared helpers flatly (``from
    # _harness import ...``), the way pytest loads them; mirror that.
    if str(HERE) not in sys.path:
        sys.path.insert(0, str(HERE))
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m benchmarks")
    parser.add_argument("--only", default="", metavar="PATTERN")
    parser.add_argument("--skip-pytest", action="store_true")
    parser.add_argument("--smoke", action="store_true")
    args = parser.parse_args(argv)

    selected = [
        path for path in _bench_modules() if args.only in path.name
    ]
    if not selected:
        print(f"no bench module matches {args.only!r}")
        return 2

    pytest_paths: list[str] = []
    for path in selected:
        module = _load(path)
        runner = getattr(module, "main", None)
        if callable(runner):
            print(f"=== {path.stem} ===")
            if inspect.signature(runner).parameters:
                runner(["--smoke"] if args.smoke else [])
            else:
                runner()
        else:
            pytest_paths.append(str(path))

    if pytest_paths and not args.skip_pytest:
        import pytest

        print(f"=== pytest benchmarks: {len(pytest_paths)} modules ===")
        code = pytest.main(["-q", "--benchmark-only", *pytest_paths])
        return int(code)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
