"""Table 1, row "Frontier-guarded TGDs": choice simplifiable;
2EXPTIME-complete (Thm 7.1).

Our executable counterpart is choice simplification + the guarded chase
(sound; complete when the chase terminates — which it does on this
family).  Benchmarks scale the number of FGTGD-linked relations and also
time the raw guarded-chase substrate.
"""

import pytest

from repro.chase import ChaseOutcome, chase
from repro.constraints import tgd
from repro.data import Instance
from repro.logic import Atom, Constant, atom, boolean_cq
from repro.schema import Schema
from repro.answerability import decide_with_choice_simplification

from _harness import RowReport, print_row, time_decisions, validate_workloads
from repro.workloads.generators import Workload


def fgtgd_workload(hops: int) -> Workload:
    """A frontier-guarded chain: Doc(x,y) hops through Cite_i to a
    terminal Flag relation; methods expose Doc (bound 1) and Flag
    (Boolean)."""
    schema = Schema()
    schema.add_relation("Doc", 2)
    schema.add_method("getDoc", "Doc", inputs=[], result_bound=1)
    previous = "Doc"
    for i in range(hops):
        name = f"Cite{i}"
        schema.add_relation(name, 2)
        # Frontier-guarded: the guard atom carries the exported x.
        schema.add_constraint(
            tgd(f"{previous}(x, y) -> {name}(x, z)")
        )
        previous = name
    schema.add_relation("Flag", 1)
    schema.add_method("chkFlag", "Flag", inputs=[0])
    schema.add_constraint(tgd(f"{previous}(x, y) -> Flag(x)"))
    # The Example 6.1 ingredient: a flagged value implies some document,
    # so an empty getDoc answer certifies Flag is empty.
    schema.add_constraint(tgd("Flag(x) -> Doc(u, v)"))
    query = boolean_cq([atom("Flag", "x")], name=f"Qfg{hops}")
    # Answerable: getDoc's single tuple forces Flag through the chain;
    # an empty answer refutes Flag via the reverse constraint.
    return Workload(f"fgtgd-{hops}", schema, query, True)


HOPS = [1, 2, 4]


@pytest.mark.parametrize("hops", HOPS)
def test_decide_fgtgd_chain(benchmark, hops):
    workload = fgtgd_workload(hops)
    result = benchmark(
        lambda: decide_with_choice_simplification(
            workload.schema, workload.query, max_rounds=30
        )
    )
    assert result.is_yes


@pytest.mark.parametrize("hops", HOPS)
def test_guarded_chase_substrate(benchmark, hops):
    """The chase engine on the FGTGD chain (the 2EXPTIME workhorse)."""
    workload = fgtgd_workload(hops)
    start = Instance([Atom("Doc", (Constant("a"), Constant("b")))])

    def run():
        return chase(
            start, workload.schema.constraints, max_rounds=hops + 5
        )

    result = benchmark(run)
    assert result.outcome is ChaseOutcome.FIXPOINT
    assert result.instance.facts_of("Flag")


def test_non_answerable_variant(benchmark):
    """Dropping the reverse constraint re-hides Flag: NO."""
    workload = fgtgd_workload(2)
    from repro.schema import Schema

    schema = Schema(
        workload.schema.relations,
        [c for c in workload.schema.constraints
         if "Flag(x) -> Doc" not in repr(c).replace("exists u, v. ", "")],
        workload.schema.methods,
    )
    result = benchmark(
        lambda: decide_with_choice_simplification(
            schema, workload.query, max_rounds=20
        )
    )
    assert result.is_no


def test_print_table_row(benchmark):
    def row():
        family = [fgtgd_workload(n) for n in HOPS]
        validation = validate_workloads(family)
        measurements = time_decisions(family, repeat=1)
        return RowReport(
            "Frontier-guarded TGDs",
            "choice simplifiable (Thm 6.3); 2EXPTIME-complete (Thm 7.1) "
            "— chase-based procedure, complete on this family",
            validation,
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
