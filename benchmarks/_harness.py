"""Shared helpers for the Table-1 reproduction benchmarks.

The paper's evaluation artifact is Table 1: per constraint fragment, (a)
which schema simplification is complete and (b) the complexity of
monotone answerability.  Each ``bench_table1_*`` module reproduces one
row by:

* **validating** the row's simplifiability claim on generated workloads
  (deciders agree with constructed ground truth, simplified and
  unsimplified routes agree, the semantic falsifier confirms NO cases);
* **benchmarking** the decision procedure on a scaling family, so the
  complexity *shape* is visible in the timings (NP rows scale
  polynomially in the schema-size parameter at fixed width; the
  EXPTIME/2EXPTIME dimensions blow up in width/arity).

`print_row` emits the paper-claim-vs-measured line that EXPERIMENTS.md
records.
"""

from __future__ import annotations

import gc
import json
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.answerability import decide_monotone_answerability
from repro.workloads.generators import Workload


@dataclass
class RowReport:
    row: str
    paper_claim: str
    validation: str
    measurements: list[tuple[str, float]]


# ----------------------------------------------------------------------
# Machine-readable benchmark records (the perf trajectory artifact)
# ----------------------------------------------------------------------

#: Repository root, where BENCH_*.json artifacts live.
ROOT = Path(__file__).resolve().parent.parent


@dataclass
class BenchRecord:
    """One timed workload: best-of-N wall clock plus workload counters."""

    name: str
    best_seconds: float
    repeats: int
    meta: dict = field(default_factory=dict)

    def as_json(self) -> dict:
        row = {
            "name": self.name,
            "best_seconds": self.best_seconds,
            "best_ms": round(self.best_seconds * 1000, 3),
            "repeats": self.repeats,
        }
        row.update(self.meta)
        return row


def time_workload(
    name: str,
    run: Callable[[], object],
    *,
    repeat: int = 3,
    meta_of: Optional[Callable[[object], dict]] = None,
) -> BenchRecord:
    """Best-of-`repeat` timing of `run`; `meta_of` extracts counters
    (fact counts, rounds, ...) from the last result.

    Each repeat starts from a freshly collected heap with the cyclic
    collector paused, so a generation-2 sweep triggered by the previous
    repeat's garbage doesn't land inside the timed region — the
    cross-engine ratios in BENCH_chase.json are gated in CI and must
    not flap on collector scheduling.
    """
    best = float("inf")
    result: object = None
    was_enabled = gc.isenabled()
    try:
        for __ in range(repeat):
            gc.collect()
            gc.disable()
            start = time.perf_counter()
            result = run()
            best = min(best, time.perf_counter() - start)
            if was_enabled:
                gc.enable()
    finally:
        if was_enabled:
            gc.enable()
    meta = meta_of(result) if meta_of is not None else {}
    return BenchRecord(name, best, repeat, meta)


def write_bench_json(
    benchmark: str,
    records: Sequence[BenchRecord],
    *,
    extra: Optional[dict] = None,
    path: Optional[Path] = None,
) -> Path:
    """Persist records to ``BENCH_<benchmark>.json`` at the repo root.

    The file is the machine-readable perf trajectory future perf PRs
    regress against; it is regenerated wholesale on each run.
    """
    target = path or (ROOT / f"BENCH_{benchmark}.json")
    payload = {
        "benchmark": benchmark,
        "schema_version": 1,
        "generated_at": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "workloads": [record.as_json() for record in records],
    }
    if extra:
        payload.update(extra)
    target.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return target


def validate_workloads(workloads: Sequence[Workload]) -> str:
    """Check every workload decides to its ground truth; return summary."""
    checked = 0
    for workload in workloads:
        result = decide_monotone_answerability(
            workload.schema, workload.query
        )
        assert not result.is_unknown, f"UNKNOWN on {workload.name}"
        if workload.expected_answerable is not None:
            assert result.is_yes == workload.expected_answerable, (
                f"{workload.name}: expected "
                f"{workload.expected_answerable}, got {result.truth}"
            )
        checked += 1
    return f"{checked}/{len(workloads)} workloads decide to ground truth"


def time_decisions(
    workloads: Sequence[Workload], repeat: int = 3
) -> list[tuple[str, float]]:
    """Best-of-`repeat` wall-clock decision time per workload."""
    rows = []
    for workload in workloads:
        best = float("inf")
        for __ in range(repeat):
            start = time.perf_counter()
            decide_monotone_answerability(workload.schema, workload.query)
            best = min(best, time.perf_counter() - start)
        rows.append((workload.name, best))
    return rows


#: Where row reports are persisted (pytest captures stdout, so the
#: benchmark run regenerates this artifact on disk as well).
REPORT_PATH = Path(__file__).resolve().parent.parent / "TABLE1_REPORT.md"

_HEADER = (
    "# Table 1 reproduction report\n\n"
    "Regenerated by `pytest benchmarks/ --benchmark-only` "
    "(one section per row; see EXPERIMENTS.md for commentary).\n"
)


def _render(report: RowReport) -> str:
    lines = [f"## {report.row}", ""]
    lines.append(f"* **paper claim**: {report.paper_claim}")
    lines.append(f"* **validation**: {report.validation}")
    if report.measurements:
        lines.append("* **measured decision times** (best of runs):")
        lines.append("")
        lines.append("  | workload | time |")
        lines.append("  |---|---|")
        for name, seconds in report.measurements:
            lines.append(f"  | {name} | {seconds * 1000:.2f} ms |")
    lines.append("")
    return "\n".join(lines)


def print_row(report: RowReport) -> None:
    """Print the row and persist it into TABLE1_REPORT.md (idempotent)."""
    print()
    print(f"--- Table 1 row: {report.row} ---")
    print(f"paper claim : {report.paper_claim}")
    print(f"validation  : {report.validation}")
    for name, seconds in report.measurements:
        print(f"  {name:42} {seconds * 1000:9.2f} ms")

    section = _render(report)
    if REPORT_PATH.exists():
        content = REPORT_PATH.read_text()
    else:
        content = _HEADER
    marker = f"## {report.row}\n"
    if marker in content:
        head, __, rest = content.partition(marker)
        after = rest.split("\n## ", 1)
        tail = f"## {after[1]}" if len(after) > 1 else ""
        content = head + section + ("\n" + tail if tail else "")
    else:
        content = content.rstrip("\n") + "\n\n" + section
    REPORT_PATH.write_text(content.rstrip("\n") + "\n")
