"""Cross-query rewriting reuse: the `RewriteEngine` vs per-query rewriting.

The ID-route deciders (Thm 5.3/5.4) answer through a backward UCQ
rewriting of the linearized system.  Before the engine, that rewriting
was recomputed from scratch for every query — the dominant cost on
distinct-query batches (`BENCH_service.json` recorded ~1.0x for
`lookup-chain-distinct`).  This suite measures what sharing one
`RewriteEngine` per compiled schema buys:

* **id-chain rewriting** — distinct queries ``R_0(x) .. R_n(x)`` down a
  linear ID chain: their rewriting frontiers are nested, so the shared
  engine expands each canonical state once ever while the per-query
  baseline re-derives the whole chain suffix for every query;
* **id-chain decide batch** — the same batch end to end through the ID
  decide route: legacy per-query free functions (fresh schema analysis
  + fresh rewriting, the pre-service API) vs one `Session` over one
  compiled schema owning one engine;
* **lookup-chain joins** — the `bench_service_throughput` distinct-join
  family: disjoint-relation joins share no frontier states, so the win
  here is the memoized per-atom rewrite steps and the compiled rule
  index (a smaller, honest number).

Each record carries the engine's cache counters (expansions reused,
atom-pattern hits) so the speedup can be attributed.  Results persist
to ``BENCH_rewriting.json``; ``--smoke`` shrinks sizes for CI.
"""

from __future__ import annotations

import argparse
import time

from _harness import BenchRecord, write_bench_json

from repro.answerability import decide_monotone_answerability
from repro.answerability.axioms import prime_query
from repro.containment.rewriting import RewriteEngine
from repro.logic.atoms import atom
from repro.logic.queries import boolean_cq
from repro.service import Session, compile_schema
from repro.workloads import id_chain_workload, lookup_chain_workload


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def _best(run, repeats: int = 4) -> float:
    return min(_timed(run) for __ in range(repeats))


def _chain_queries(depth: int):
    return [
        boolean_cq([atom(f"R{i}", "x")], name=f"Qlink{i}")
        for i in range(depth + 1)
    ]


def _join_queries(lengths: range):
    return [
        boolean_cq(
            [atom(f"L{i}", "x", f"y{i}") for i in range(length)],
            name=f"Qchain{length}",
        )
        for length in lengths
    ]


def _rewriting_family(name: str, schema, queries) -> BenchRecord:
    """Fresh `RewriteEngine` per query vs one shared engine, rewriting
    the primed queries of the linearized system (the ID-route hot path,
    isolated from compilation and matching)."""
    compiled = compile_schema(schema)
    system = compiled.linearization()
    targets = [prime_query(query) for query in queries]

    def per_query() -> None:
        for target in targets:
            RewriteEngine(system.rules).rewrite(target)

    def shared() -> None:
        engine = RewriteEngine(system.rules)
        for target in targets:
            engine.rewrite(target)

    # Agreement first: the shared engine must emit the same disjunct
    # sets as fresh per-query rewritings (determinism makes this ==).
    engine = RewriteEngine(system.rules)
    for target in targets:
        fresh = RewriteEngine(system.rules).rewrite(target)
        memoized = engine.rewrite(target)
        assert [repr(d.atoms) for d in fresh.disjuncts] == [
            repr(d.atoms) for d in memoized.disjuncts
        ], f"shared/fresh rewriting disagree on {target.name}"

    baseline = _best(per_query)
    with_engine = _best(shared)
    stats_engine = RewriteEngine(system.rules)
    for target in targets:
        stats_engine.rewrite(target)
    stats = stats_engine.stats()
    speedup = baseline / with_engine if with_engine else float("inf")
    print(
        f"  {name:34} per-query {baseline * 1000:9.2f} ms   "
        f"shared {with_engine * 1000:9.2f} ms   {speedup:6.1f}x"
    )
    return BenchRecord(
        name,
        with_engine,
        4,
        {
            "baseline_seconds": baseline,
            "speedup": round(speedup, 2),
            "queries": len(queries),
            "mode": "rewriting",
            "expansions_built": stats["expansions_built"],
            "expansions_reused": stats["expansions_reused"],
            "atom_patterns_compiled": stats["atom_patterns_compiled"],
            "atom_pattern_hits": stats["atom_pattern_hits"],
        },
    )


def _decide_family(name: str, schema, queries) -> BenchRecord:
    """The end-to-end distinct-query ID-route batch: legacy per-query
    free functions vs one session (compiled schema + shared engine)."""

    def legacy() -> None:
        for query in queries:
            decide_monotone_answerability(schema, query)

    def service() -> None:
        session = Session(compile_schema(schema))
        session.decide_many(queries)

    session = Session(compile_schema(schema))
    for query in queries:
        fresh = decide_monotone_answerability(schema, query)
        assert session.decide(query).decision == fresh.truth.value, (
            f"service/legacy disagree on {query.name}"
        )

    baseline = _best(legacy)
    with_service = _best(service)
    speedup = baseline / with_service if with_service else float("inf")
    print(
        f"  {name:34} legacy    {baseline * 1000:9.2f} ms   "
        f"shared {with_service * 1000:9.2f} ms   {speedup:6.1f}x"
    )
    return BenchRecord(
        name,
        with_service,
        4,
        {
            "baseline_seconds": baseline,
            "speedup": round(speedup, 2),
            "queries": len(queries),
            "mode": "decide-batch",
        },
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="bench_rewriting_reuse")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI smoke runs (written to a .smoke.json "
        "sidecar so the committed BENCH_rewriting.json is untouched)",
    )
    parser.add_argument("--out", default=None, help="output path override")
    args = parser.parse_args(argv)

    depth = 8 if args.smoke else 32
    joins = 4 if args.smoke else 8
    lengths = range(1, (3 if args.smoke else 4) + 1)

    chain = id_chain_workload(depth)
    chain_queries = _chain_queries(depth)
    join_schema = lookup_chain_workload(joins, dump_bound=None).schema
    join_queries = _join_queries(lengths)

    print("rewriting reuse (per-query baseline vs shared RewriteEngine)")
    records = [
        _rewriting_family(
            f"id-chain-{depth}-rewriting", chain.schema, chain_queries
        ),
        _decide_family(
            f"id-chain-{depth}-decide-batch", chain.schema, chain_queries
        ),
        _rewriting_family(
            f"lookup-chain-{joins}-join-rewriting", join_schema, join_queries
        ),
    ]

    from pathlib import Path

    from _harness import ROOT

    if args.out is not None:
        out = Path(args.out)
    elif args.smoke:
        out = ROOT / "BENCH_rewriting.smoke.json"
    else:
        out = None  # write_bench_json's default: BENCH_rewriting.json
    path = write_bench_json(
        "rewriting", records, extra={"smoke": args.smoke}, path=out
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
