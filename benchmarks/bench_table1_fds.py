"""Table 1, row "FDs": FD simplifiable, NP-complete (Thms 4.5, 5.2).

Validates the FD-simplification behaviour (determined projections are
answerable, undetermined ones are not; the bound's value is irrelevant)
and benchmarks the terminating-chase decider while scaling the number of
determined columns.
"""

import pytest

from repro.answerability import decide_with_fds, fd_simplification
from repro.workloads.generators import fd_determinacy_workload

from _harness import RowReport, print_row, time_decisions, validate_workloads

DETERMINED = [1, 2, 4, 6]


@pytest.mark.parametrize("determined", DETERMINED)
def test_determined_projection_answerable(benchmark, determined):
    workload = fd_determinacy_workload(determined)
    result = benchmark(
        lambda: decide_with_fds(workload.schema, workload.query)
    )
    assert result.is_yes


@pytest.mark.parametrize("determined", DETERMINED)
def test_undetermined_column_refused(benchmark, determined):
    workload = fd_determinacy_workload(determined, ask_undetermined=True)
    result = benchmark(
        lambda: decide_with_fds(workload.schema, workload.query)
    )
    assert result.is_no


def test_bound_irrelevant_under_fds(benchmark):
    """Thm 4.5: only DetBy matters, not the bound's size."""

    def check():
        verdicts = set()
        for bound in (1, 7, 250):
            workload = fd_determinacy_workload(2, bound=bound)
            verdicts.add(
                decide_with_fds(workload.schema, workload.query).truth
            )
        return verdicts

    assert len(benchmark(check)) == 1


def test_view_arity_follows_detby(benchmark):
    def shape():
        arities = []
        for determined in DETERMINED:
            workload = fd_determinacy_workload(determined)
            simplified = fd_simplification(workload.schema)
            rewrite = simplified.rewrites["by_key"]
            arities.append(rewrite.view_relation.arity)
        return arities

    arities = benchmark.pedantic(shape, rounds=1, iterations=1)
    # key + determined columns.
    assert arities == [d + 1 for d in DETERMINED]


def test_print_table_row(benchmark):
    def row():
        family = [fd_determinacy_workload(d) for d in DETERMINED] + [
            fd_determinacy_workload(d, ask_undetermined=True)
            for d in DETERMINED
        ]
        validation = validate_workloads(family)
        measurements = time_decisions(
            [fd_determinacy_workload(d) for d in DETERMINED], repeat=1
        )
        return RowReport(
            "FDs",
            "FD simplifiable (Thm 4.5); NP-complete (Thm 5.2)",
            validation,
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
