"""Table 1, row "FDs and UIDs": choice simplifiable; NP-hard, in EXPTIME.

Validates Theorem 6.4's consequence (the bound's value never matters for
UIDs + FDs — only whether it is present) and Theorem 7.2's decision
procedure (choice simplification + separability rewriting + GTGD chase),
scaling the number of UID-linked department relations.
"""

import pytest

from repro.answerability import (
    choice_simplification,
    decide_with_uids_and_fds,
)
from repro.workloads.generators import uid_fd_workload
from repro.workloads.paperschemas import (
    query_q3_boolean,
    university_schema,
)

from _harness import RowReport, print_row, time_decisions, validate_workloads

DEPARTMENTS = [1, 2, 4, 8]


@pytest.mark.parametrize("departments", DEPARTMENTS)
def test_decide_with_fd(benchmark, departments):
    workload = uid_fd_workload(departments, with_fd=True)
    result = benchmark(
        lambda: decide_with_uids_and_fds(workload.schema, workload.query)
    )
    assert result.is_yes


@pytest.mark.parametrize("departments", DEPARTMENTS)
def test_decide_without_fd(benchmark, departments):
    workload = uid_fd_workload(departments, with_fd=False)
    from repro.answerability import decide_monotone_answerability

    result = benchmark(
        lambda: decide_monotone_answerability(workload.schema, workload.query)
    )
    assert result.is_no


def test_choice_simplification_bound_invariance(benchmark):
    """Thm 6.4: replacing any bound by 1 preserves the verdict."""

    def check():
        verdicts = set()
        for bound in (1, 10, 400):
            workload = uid_fd_workload(2, bound=bound)
            verdicts.add(
                decide_with_uids_and_fds(
                    workload.schema, workload.query
                ).truth
            )
            simplified = choice_simplification(workload.schema).schema
            verdicts.add(
                decide_with_uids_and_fds(simplified, workload.query).truth
            )
        return verdicts

    assert len(benchmark(check)) == 1


def test_paper_q3(benchmark):
    """Example 1.5 through the Thm 7.2 machinery."""
    schema = university_schema(ud_bound=100, with_ud2=True, with_fd=True)
    result = benchmark(
        lambda: decide_with_uids_and_fds(schema, query_q3_boolean())
    )
    assert result.is_yes


def test_print_table_row(benchmark):
    def row():
        family = [
            uid_fd_workload(n, with_fd=True) for n in DEPARTMENTS
        ] + [uid_fd_workload(n, with_fd=False) for n in DEPARTMENTS]
        validation = validate_workloads(family)
        measurements = time_decisions(
            [uid_fd_workload(n, with_fd=True) for n in DEPARTMENTS],
            repeat=1,
        )
        return RowReport(
            "FDs and UIDs",
            "choice simplifiable (Thm 6.4); NP-hard, in EXPTIME (Thm 7.2)",
            validation,
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
