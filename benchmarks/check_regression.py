"""Gate a fresh benchmark pass against the committed BENCH_*.json files.

Usage (after regenerating the artifacts in the working tree, e.g. by
``python -m benchmarks --skip-pytest``)::

    python benchmarks/check_regression.py [--tolerance 0.4]

For every ``BENCH_*.json`` at the repo root the committed version is
read from git (``git show HEAD:...``) and compared with the fresh
working-tree file:

* workloads carrying a ``speedup`` field (the service/rewriting suites)
  must retain at least ``tolerance`` × the committed speedup — ratios
  are what shared CI runners can be gated on, absolute times are not;
* workloads without one (the chase suite) must not run slower than
  ``1 / tolerance`` × the committed ``best_seconds``, with sub-``--min-
  seconds`` timings clamped up to the noise floor first (microsecond
  workloads flap on scheduler jitter, not regressions);
* the chase artifact's ``speedups_int_vs_object`` map must keep a
  median ≥ `CLOSURE_SPEEDUP_FLOOR` (2×) across the transitive-closure
  family — the interned-executor speedup is a same-run, same-host
  ratio, so it is gated absolutely, not against the committed copy;
* the service artifact must record ``warm-restart`` workloads whose
  best cold-vs-warm ratio stays ≥ `WARM_RESTART_SPEEDUP_FLOOR` (5×) —
  same-run, same-host, so gated absolutely as well;
* a workload recorded in the committed file but absent from the fresh
  run is an error (silently dropped coverage reads as "no regression").

Exit code 0 when everything holds, 1 with a per-workload report when
anything regressed.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: The interned int-slot executor must stay ≥2× the object executor on
#: the transitive-closure family (median over the family's sizes — the
#: smallest point sits near the crossover and is noise-dominated).
CLOSURE_SPEEDUP_FLOOR = 2.0

#: A warm restart over the durable store must stay ≥5× faster than the
#: cold restart on the best service family (gated absolutely — it is a
#: same-run, same-host ratio, like the closure gate; the per-family
#: ratios are additionally gated against the committed copy by the
#: generic ``speedup`` comparison above).
WARM_RESTART_SPEEDUP_FLOOR = 5.0


def committed_version(path: Path) -> dict | None:
    proc = subprocess.run(
        ["git", "show", f"HEAD:{path.name}"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def _key(workload: dict) -> tuple:
    # The chase suite records one row per engine under the same name.
    return (workload["name"], workload.get("engine", ""))


def compare(
    name: str,
    committed: dict,
    fresh: dict,
    tolerance: float,
    min_seconds: float = 0.0,
):
    """Yield (workload, message) for every regression found."""
    fresh_by_name = {_key(w): w for w in fresh.get("workloads", [])}
    for recorded in committed.get("workloads", []):
        workload = "/".join(filter(None, _key(recorded)))
        current = fresh_by_name.get(_key(recorded))
        if current is None:
            yield workload, "present in committed artifact, missing from fresh run"
            continue
        if "speedup" in recorded:
            floor = recorded["speedup"] * tolerance
            if current.get("speedup", 0.0) < floor:
                yield workload, (
                    f"speedup {current.get('speedup')}x fell below "
                    f"{floor:.2f}x (committed {recorded['speedup']}x, "
                    f"tolerance {tolerance})"
                )
        else:
            # Noise clamp: a 2 ms workload that "doubles" to 4 ms is
            # scheduler jitter, not a regression — compare against the
            # noise floor instead of the raw committed figure.
            reference = max(recorded["best_seconds"], min_seconds)
            ceiling = reference / tolerance
            if current["best_seconds"] > ceiling:
                yield workload, (
                    f"best_seconds {current['best_seconds']:.4f} exceeded "
                    f"{ceiling:.4f} (committed "
                    f"{recorded['best_seconds']:.4f}, tolerance {tolerance}, "
                    f"noise floor {min_seconds})"
                )


def check_closure_speedup(fresh: dict):
    """Gate the chase artifact's int-vs-object closure-family speedup.

    Yields (workload, message) when the fresh run's median
    transitive-closure speedup falls below `CLOSURE_SPEEDUP_FLOOR`, or
    when the field vanished (a regenerated artifact that stopped
    measuring the ratio must not silently pass).
    """
    speedups = fresh.get("speedups_int_vs_object")
    if speedups is None:
        yield "speedups_int_vs_object", (
            "field missing from the fresh chase artifact (the executor "
            "comparison was not measured)"
        )
        return
    closure = sorted(
        value
        for name, value in speedups.items()
        if name.startswith("transitive-closure")
    )
    if not closure:
        yield "speedups_int_vs_object", "no transitive-closure entries"
        return
    median = closure[len(closure) // 2]
    if median < CLOSURE_SPEEDUP_FLOOR:
        yield "speedups_int_vs_object", (
            f"median closure-family int-vs-object speedup {median}x fell "
            f"below the {CLOSURE_SPEEDUP_FLOOR}x floor (all: {speedups})"
        )


def check_warm_restart(fresh: dict):
    """Gate the service artifact's cold-vs-warm restart families.

    Yields (workload, message) when the fresh run records no
    ``warm-restart`` workloads (a regenerated artifact that stopped
    measuring the restart must not silently pass) or when the best
    family's cold/warm ratio falls below `WARM_RESTART_SPEEDUP_FLOOR`.
    """
    restarts = [
        w
        for w in fresh.get("workloads", [])
        if w.get("mode") == "warm-restart"
    ]
    if not restarts:
        yield "warm-restart", (
            "no warm-restart workloads in the fresh service artifact "
            "(the durable-store restart was not measured)"
        )
        return
    best = max(w.get("speedup", 0.0) for w in restarts)
    if best < WARM_RESTART_SPEEDUP_FLOOR:
        yield "warm-restart", (
            f"best cold-vs-warm restart speedup {best}x fell below the "
            f"{WARM_RESTART_SPEEDUP_FLOOR}x floor (families: "
            + ", ".join(
                f"{w['name']}={w.get('speedup')}x" for w in restarts
            )
            + ")"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="check_regression")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.4,
        help="fraction of the committed number a fresh run must retain "
        "(default 0.4 — CI runners are noisy, only gate on collapses)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.005,
        help="noise floor for absolute-time comparisons: committed "
        "timings below this are clamped up to it before the tolerance "
        "is applied (default 5 ms)",
    )
    args = parser.parse_args(argv)

    failures = 0
    checked = 0
    for path in sorted(ROOT.glob("BENCH_*.json")):
        if ".smoke." in path.name:
            continue
        committed = committed_version(path)
        if committed is None:
            print(f"{path.name}: not committed yet, skipping")
            continue
        fresh = json.loads(path.read_text())
        if fresh.get("smoke"):
            print(f"{path.name}: fresh file is a --smoke run, refusing")
            failures += 1
            continue
        for workload, message in compare(
            path.name, committed, fresh, args.tolerance, args.min_seconds
        ):
            print(f"REGRESSION {path.name} :: {workload}: {message}")
            failures += 1
        if path.name == "BENCH_chase.json":
            for workload, message in check_closure_speedup(fresh):
                print(f"REGRESSION {path.name} :: {workload}: {message}")
                failures += 1
        if path.name == "BENCH_service.json":
            for workload, message in check_warm_restart(fresh):
                print(f"REGRESSION {path.name} :: {workload}: {message}")
                failures += 1
        checked += 1
        print(f"{path.name}: checked against HEAD")
    if not checked:
        print("no committed BENCH_*.json artifacts found")
        return 1
    if failures:
        print(f"{failures} regression(s)")
        return 1
    print("ok: no benchmark regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
