"""Ablation AB-2: what schema simplification buys (Ex 3.5 vs Ex 6.2).

Without simplification, the AMonDet containment for a bound-k method
needs the cardinality axioms of Example 3.5 (∃≥j for every j ≤ k) — the
construction the paper exists to avoid.  We quantify the saving: the
size of the naive axiom system grows linearly in k (we materialize its
∃≥j encoding size), while the simplified system is constant in k and
decides in constant time.
"""

import pytest

from repro.answerability import (
    build_amondet_containment,
    choice_simplification,
    decide_monotone_answerability,
)
from repro.workloads.paperschemas import query_q2, university_schema

from _harness import RowReport, print_row

BOUNDS = [1, 5, 25, 100]


def naive_axiom_size(bound: int) -> int:
    """Size (in atoms) of Example 3.5's cardinality axioms for bound k.

    For each j ≤ k the axiom carries j head atoms plus j(j-1)/2
    disequalities on each side; we count the atoms/disequalities the
    encoding would materialize (the chase cannot process them — that is
    the point)."""
    total = 0
    for j in range(1, bound + 1):
        body = j + j * (j - 1) // 2
        head = j + j * (j - 1) // 2
        total += body + head
    return total


@pytest.mark.parametrize("bound", BOUNDS)
def test_simplified_decision_constant_in_bound(benchmark, bound):
    schema = university_schema(ud_bound=bound)
    result = benchmark(
        lambda: decide_monotone_answerability(schema, query_q2())
    )
    assert result.is_yes


@pytest.mark.parametrize("bound", BOUNDS)
def test_simplified_axiom_count_constant(benchmark, bound):
    schema = university_schema(ud_bound=bound)

    def build():
        simplified = choice_simplification(schema).schema
        return len(build_amondet_containment(
            simplified, query_q2()).constraints)

    count = benchmark(build)
    reference = None
    # The count must not depend on the bound: compare against bound 1.
    base_schema = choice_simplification(
        university_schema(ud_bound=1)
    ).schema
    reference = len(
        build_amondet_containment(base_schema, query_q2()).constraints
    )
    assert count == reference


def test_naive_axioms_grow_quadratically(benchmark):
    sizes = benchmark(
        lambda: [naive_axiom_size(bound) for bound in BOUNDS]
    )
    assert sizes == sorted(sizes)
    assert sizes[-1] > 100 * sizes[0]


def test_print_table_row(benchmark):
    import time

    def row():
        measurements = []
        for bound in BOUNDS:
            schema = university_schema(ud_bound=bound)
            start = time.perf_counter()
            decide_monotone_answerability(schema, query_q2())
            elapsed = time.perf_counter() - start
            measurements.append(
                (
                    f"bound={bound:4} simplified decision "
                    f"(naive axioms would be {naive_axiom_size(bound)} "
                    "atoms)",
                    elapsed,
                )
            )
        return RowReport(
            "Ablation: simplification on/off",
            "Ex 3.5's cardinality axioms grow ~k²; simplification makes "
            "the problem bound-independent (Ex 6.2)",
            "simplified decisions constant in k",
            measurements,
        )

    report = benchmark.pedantic(row, rounds=1, iterations=1)
    print_row(report)
