"""Service-layer throughput: compiled schemas + session caching.

Measures what the `repro.service` layer buys over the legacy free
functions, which re-derive the per-schema analysis (classification,
simplification, AMonDet axioms, linearization) on every call:

* **repeated-query decide** — the same query against the same schema N
  times: the session answers from its LRU decision cache after the
  first call;
* **distinct-query batch** — N *different* queries against one schema
  (no cache hits): the speedup isolates the compiled-schema
  amortization;
* **batch JSON round-trip** — `decide_many` plus response serialization,
  the CLI ``batch`` hot path.

Each workload family records the uncached baseline (fresh
`decide_monotone_answerability` per query, exactly what the pre-service
API did), the session time, and the speedup, persisted to
``BENCH_service.json``.  Run directly or via ``python -m benchmarks
--only service``; ``--smoke`` shrinks the sizes for CI.
"""

from __future__ import annotations

import argparse
import json
import time

from _harness import BenchRecord, write_bench_json

from repro.answerability import decide_monotone_answerability
from repro.logic.queries import boolean_cq
from repro.logic.atoms import atom
from repro.service import Session, compile_schema
from repro.workloads import (
    fd_determinacy_workload,
    id_chain_workload,
    lookup_chain_workload,
    query_q2,
    tgd_transfer_workload,
    university_schema,
    uid_fd_workload,
)


def _chain_queries(lengths: range):
    """Distinct join queries over one lookup-chain schema."""
    queries = []
    for length in lengths:
        atoms = [atom(f"L{i}", "x", f"y{i}") for i in range(length)]
        queries.append(boolean_cq(atoms, name=f"Qchain{length}"))
    return queries


def _timed(run) -> float:
    start = time.perf_counter()
    run()
    return time.perf_counter() - start


def _family(
    name: str,
    schema,
    queries,
    *,
    repeats: int,
    serialize: bool = False,
) -> BenchRecord:
    """Time `repeats` passes over `queries`: legacy (fresh analysis per
    decide) vs a single session over a compiled schema."""

    def legacy() -> None:
        for __ in range(repeats):
            for query in queries:
                decide_monotone_answerability(schema, query)

    def service() -> None:
        session = Session(compile_schema(schema))
        for __ in range(repeats):
            responses = session.decide_many(queries)
            if serialize:
                for response in responses:
                    json.dumps(response.to_dict())

    # Verify agreement before timing (the point of the refactor is that
    # nothing semantic changed).
    session = Session(compile_schema(schema))
    for query in queries:
        legacy_result = decide_monotone_answerability(schema, query)
        assert (
            session.decide(query).decision == legacy_result.truth.value
        ), f"service/legacy disagree on {query!r}"

    baseline = min(_timed(legacy) for __ in range(4))
    with_service = min(_timed(service) for __ in range(4))
    speedup = baseline / with_service if with_service else float("inf")
    print(
        f"  {name:34} legacy {baseline * 1000:9.2f} ms   "
        f"service {with_service * 1000:9.2f} ms   {speedup:6.1f}x"
    )
    return BenchRecord(
        name,
        with_service,
        4,
        {
            "baseline_seconds": baseline,
            "speedup": round(speedup, 2),
            "queries": len(queries),
            "repeats": repeats,
            "mode": "repeated" if repeats > 1 else "distinct",
        },
    )


def _normalized(response) -> str:
    payload = response.to_dict()
    payload.pop("elapsed_ms", None)
    payload.pop("cached", None)
    return json.dumps(payload, sort_keys=True)


def _warm_restart_family(name: str, cases) -> BenchRecord:
    """Cold vs warm restart: first-pass latency over a durable store.

    ``cases`` is a list of ``(schema, queries)`` pairs — the working
    set a serving process held before it went down.  Both sides model
    the *restart*: fresh `Session`s over freshly compiled schemas,
    nothing carried over in memory.  The cold side recomputes every
    decision; the warm side reopens the cache directory the previous
    "process" populated and serves the same queries from the
    decision/rewrite tiers.  The timed region is the full restart
    cost: store open (warm side only), schema compiles, and the first
    pass over every query.
    """
    import shutil
    import tempfile

    from repro.cache import open_directory

    total = sum(len(queries) for __, queries in cases)

    # Oracle first: persisted-then-loaded must be byte-identical to a
    # storeless fresh session (minus timing/cache markers) — the
    # equivalence gate, asserted in the benchmark itself.
    def run_pass(store):
        outputs = []
        durable_hits = 0
        for schema, queries in cases:
            session = Session(compile_schema(schema), store=store)
            outputs += [
                _normalized(session.decide(query)) for query in queries
            ]
            durable_hits += getattr(session, "durable_hits", 0)
        return outputs, durable_hits

    fresh, __ = run_pass(None)
    workdir = tempfile.mkdtemp(prefix="bench-warm-restart-")
    try:
        store = open_directory(workdir)
        written, __ = run_pass(store)
        store.close()
        assert written == fresh, f"store write changed answers in {name}"

        reopened = open_directory(workdir)
        try:
            loaded, durable_hits = run_pass(reopened)
            assert durable_hits == total, (
                f"{name}: expected every decision from the store, got "
                f"{durable_hits}/{total} durable hits"
            )
        finally:
            reopened.close()
        assert loaded == fresh, f"persisted/fresh disagree in {name}"

        def cold() -> None:
            run_pass(None)

        def warm() -> None:
            restart_store = open_directory(workdir)
            try:
                run_pass(restart_store)
            finally:
                restart_store.close()

        cold_seconds = min(_timed(cold) for __ in range(4))
        warm_seconds = min(_timed(warm) for __ in range(4))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    print(
        f"  {name:34} cold   {cold_seconds * 1000:9.2f} ms   "
        f"warm    {warm_seconds * 1000:9.2f} ms   {speedup:6.1f}x"
    )
    return BenchRecord(
        name,
        warm_seconds,
        4,
        {
            "baseline_seconds": cold_seconds,
            "speedup": round(speedup, 2),
            "queries": total,
            "schemas": len(cases),
            "repeats": 1,
            "mode": "warm-restart",
            "baseline": "fresh sessions with no store: every decision "
            "recomputed after the restart (the warm side reopens the "
            "durable cache and serves the identical answers from it)",
        },
    )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="bench_service_throughput")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI smoke runs (written to a .smoke.json "
        "sidecar so the committed BENCH_service.json is untouched)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path (default: BENCH_service.json at the repo "
        "root, or BENCH_service.smoke.json under --smoke)",
    )
    args = parser.parse_args(argv)
    repeats = 5 if args.smoke else 50
    chain = 4 if args.smoke else 8
    # Backward UCQ rewriting grows ~5x per join atom; cap the distinct
    # query lengths so the family measures amortization, not rewriting.
    lengths = range(1, (3 if args.smoke else 4) + 1)

    fd_views = fd_determinacy_workload(6)
    uid_fd = uid_fd_workload(4)
    tgd_transfer = tgd_transfer_workload(4)
    chain_schema = lookup_chain_workload(chain, dump_bound=None).schema
    chain_queries = _chain_queries(lengths)
    id_depth = 6 if args.smoke else 16
    id_chain_schema = id_chain_workload(id_depth).schema
    id_chain_queries = [
        boolean_cq([atom(f"R{i}", "x")], name=f"Qlink{i}")
        for i in range(id_depth + 1)
    ]

    print("service-layer throughput (legacy free functions vs Session)")
    records = [
        # Same query over and over: LRU decision cache + compiled schema.
        _family(
            f"university-q2-repeat-{repeats}",
            university_schema(ud_bound=100),
            [query_q2()],
            repeats=repeats,
        ),
        _family(
            f"fd-views-repeat-{repeats}",
            fd_views.schema,
            [fd_views.query],
            repeats=repeats,
        ),
        _family(
            f"uid-fd-repeat-{repeats}",
            uid_fd.schema,
            [uid_fd.query],
            repeats=repeats,
        ),
        _family(
            f"tgd-transfer-repeat-{repeats}",
            tgd_transfer.schema,
            [tgd_transfer.query],
            repeats=repeats,
        ),
        # Distinct queries, one schema: every decide is a decision-cache
        # miss, so this isolates compiled-schema amortization plus the
        # shared rewrite engine's per-atom-step reuse (the join queries
        # span disjoint relations, so no frontier states are shared).
        _family(
            f"lookup-chain-{chain}-distinct",
            chain_schema,
            chain_queries,
            repeats=1,
        ),
        # Distinct queries with *nested* rewriting frontiers: the shared
        # rewrite engine expands each canonical state once for the whole
        # batch (see bench_rewriting_reuse for the isolated numbers).
        _family(
            f"id-chain-{id_depth}-distinct",
            id_chain_schema,
            id_chain_queries,
            repeats=1,
        ),
        # The CLI batch hot path: decide_many + JSON serialization; the
        # second pass is served from the decision cache.
        _family(
            f"batch-json-chain-{chain}",
            chain_schema,
            chain_queries,
            repeats=2,
            serialize=True,
        ),
        # Durable-store warm restarts: a fresh process over a reopened
        # cache directory vs the same fresh process recomputing — the
        # headline number of the persistence tier.  Agreement between
        # persisted and fresh answers is asserted inside the family.
        _warm_restart_family(
            "warm-restart-repeated-mix",
            # The four repeated-query families above, restarted as one
            # working set: a multi-fingerprint store serving each
            # schema's hot query from the decision tier.
            [
                (university_schema(ud_bound=100), [query_q2()]),
                (fd_views.schema, [fd_views.query]),
                (uid_fd.schema, [uid_fd.query]),
                (tgd_transfer.schema, [tgd_transfer.query]),
            ],
        ),
        _warm_restart_family(
            f"warm-restart-id-chain-{id_depth}",
            [(id_chain_schema, id_chain_queries)],
        ),
    ]
    from pathlib import Path

    from _harness import ROOT

    if args.out is not None:
        out = Path(args.out)
    elif args.smoke:
        out = ROOT / "BENCH_service.smoke.json"
    else:
        out = None  # write_bench_json's default: BENCH_service.json
    path = write_bench_json(
        "service",
        records,
        extra={"smoke": args.smoke},
        path=out,
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
