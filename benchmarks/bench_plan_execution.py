"""End-to-end benchmark AB-4: plan execution against simulated services.

Times (a) static plans and (b) universal plans against the directory
workload and the simulated providers, scaling the data; compares against
the direct-evaluation upper bound (what a mediator with full access
would pay).
"""

import pytest

from repro.accessibility import StingySelection
from repro.answerability import UniversalPlan, generate_static_plan
from repro.logic import Constant, atom, boolean_cq, evaluate_cq, holds
from repro.plans import execute
from repro.workloads import movie_service
from repro.workloads.generators import (
    directory_instance,
    lookup_chain_workload,
)

PEOPLE = [20, 60, 120]


@pytest.mark.parametrize("people", PEOPLE)
def test_static_plan_execution(benchmark, people):
    workload = lookup_chain_workload(1, dump_bound=None, query_length=1)
    plan = generate_static_plan(workload.schema, workload.query)
    assert plan is not None
    instance = directory_instance(people, lookups=1)

    def run():
        return execute(plan, instance, workload.schema, StingySelection())

    output = benchmark(run)
    assert bool(output) == holds(workload.query, instance)


@pytest.mark.parametrize("people", PEOPLE)
def test_universal_plan_execution(benchmark, people):
    workload = lookup_chain_workload(1, dump_bound=None, query_length=1)
    plan = UniversalPlan(workload.schema, workload.query)
    instance = directory_instance(people, lookups=1)

    def run():
        selection = StingySelection()
        return plan.run(instance, selection)

    run_result = benchmark(run)
    assert bool(run_result.answers) == holds(workload.query, instance)


@pytest.mark.parametrize("people", PEOPLE)
def test_direct_evaluation_baseline(benchmark, people):
    """What evaluation costs with unrestricted access (lower bound)."""
    workload = lookup_chain_workload(1, dump_bound=None, query_length=1)
    instance = directory_instance(people, lookups=1)
    answers = benchmark(lambda: evaluate_cq(workload.query, instance))
    assert bool(answers) == holds(workload.query, instance)


@pytest.mark.parametrize("titles", [50, 150])
def test_movie_service_end_to_end(benchmark, titles):
    schema, service = movie_service(titles=titles, listing_cap=10)
    query = boolean_cq(
        [atom("Title", Constant(7), "y", Constant(7))], name="Qr"
    )
    plan = UniversalPlan(schema, query)

    def run():
        selection = service.selection()
        selection.reset()
        return plan.run(service.data, selection)

    result = benchmark(run)
    assert bool(result.answers) == holds(query, service.data)
