"""Server throughput: concurrent clients vs the serial front ends.

Measures what the `repro.server` layer buys on **mixed-fingerprint**
traffic — the workload the per-fingerprint `SessionPool` exists for.
The request stream interleaves four schemas (FD, ID-chain, lookup-chain
and the university example: every Table-1 route family), so consecutive
requests almost never share a schema:

* **single-session serial** (the speedup baseline, and what the
  pre-server API offered a serving loop): one live `Session` at a
  time, torn down and recompiled whenever the incoming fingerprint
  changes — cross-fingerprint interleaving defeats every per-schema
  cache;
* **pooled batch serial** (the ``batch`` CLI path): a serial loop over
  one `SessionPool`, fingerprint routing but no concurrency — recorded
  for context, not gated;
* **server, N concurrent clients**: a live `DecideServer` (worker
  threads + per-fingerprint pooling), the stream sharded over N TCP
  connections.

The headline ``speedup`` is single-session-serial / server wall time.
Decisions are CPU-bound Python, so the win is *architectural* — the
pool amortizes per-fingerprint compilation and decision caches across
interleaved traffic while clients overlap framing and I/O — not GIL
parallelism.  Agreement between all three paths is asserted before
timing.  Results go to ``BENCH_server.json`` (``--smoke`` writes a
sidecar and shrinks sizes for CI).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path

from _harness import ROOT, BenchRecord, write_bench_json

from repro.io import schema_from_dict, schema_to_dict
from repro.server import DecideServer, SessionPool
from repro.service import Session
from repro.workloads import (
    fd_determinacy_workload,
    id_chain_workload,
    lookup_chain_workload,
    university_schema,
)

CLIENTS = 8


def schema_families(smoke: bool):
    """(name, description, queries) per fingerprint in the mix."""
    chain = 3 if smoke else 4
    depth = 4 if smoke else 8
    fd = fd_determinacy_workload(4)
    fd_query = ", ".join(
        f"{a.relation}({', '.join(map(str, a.terms))})"
        for a in fd.query.atoms
    )
    return [
        (
            "university",
            schema_to_dict(university_schema(ud_bound=100)),
            ["Udirectory(i, a, p)", "Prof(i, n, 10000)"],
        ),
        (
            "lookup-chain",
            schema_to_dict(lookup_chain_workload(chain).schema),
            ["L0(x, y)", "L0(x, y), L1(x, z)", "L2(x, y)"],
        ),
        (
            "id-chain",
            schema_to_dict(id_chain_workload(depth).schema),
            [f"R{i}(x)" for i in range(depth + 1)],
        ),
        ("fd-views", schema_to_dict(fd.schema), [fd_query]),
    ]


def build_stream(families, rounds: int) -> list[dict]:
    """Interleaved requests: consecutive frames change fingerprint."""
    stream = []
    for round_index in range(rounds):
        for __, description, queries in families:
            stream.append(
                {
                    "query": queries[round_index % len(queries)],
                    "schema": description,
                    "id": len(stream),
                }
            )
    return stream


# ----------------------------------------------------------------------
# The three execution paths
# ----------------------------------------------------------------------
def run_single_session_serial(stream) -> dict[int, str]:
    """One live session; fingerprint switches recompile everything."""
    decisions: dict[int, str] = {}
    session = None
    current = None
    for request in stream:
        text = json.dumps(request["schema"], sort_keys=True)
        if text != current:
            session = Session(schema_from_dict(request["schema"]))
            current = text
        decisions[request["id"]] = session.decide(
            request["query"]
        ).decision
    return decisions


def run_pooled_batch_serial(stream) -> dict[int, str]:
    """The batch CLI path: serial loop over a fingerprint-routed pool."""
    from repro.io import DecideRequest

    pool = SessionPool(pool_size=1)
    decisions: dict[int, str] = {}
    for request in stream:
        response = pool.process(
            DecideRequest(
                query=request["query"],
                schema=request["schema"],
                id=request["id"],
            )
        )
        decisions[request["id"]] = response.decision
    return decisions


async def _run_server_clients(
    stream, clients: int, metrics=None
) -> dict[int, str]:
    pool = SessionPool(pool_size=2)
    server = await DecideServer(
        pool, port=0, workers=clients, metrics=metrics
    ).start()
    host, port = server.address
    decisions: dict[int, str] = {}

    async def client(shard) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        for request in shard:
            writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        for __ in shard:
            payload = json.loads(await reader.readline())
            decisions[payload["id"]] = payload["decision"]
        writer.close()
        await writer.wait_closed()

    try:
        await asyncio.gather(
            *(client(stream[i::clients]) for i in range(clients))
        )
    finally:
        await server.close()
    return decisions


def run_server_concurrent(
    stream, clients: int = CLIENTS, metrics=None
) -> dict[int, str]:
    """A fresh server per run: cold pool, like the serial baselines."""
    return asyncio.run(_run_server_clients(stream, clients, metrics))


# ----------------------------------------------------------------------
# Metrics overhead: the concurrent-client scenario, registry on vs off
# ----------------------------------------------------------------------
def run_metrics_overhead(stream, repeat: int) -> BenchRecord:
    """The identical concurrent-client pass with and without a live
    `MetricsRegistry` on the server: per-request counter/histogram
    updates, the stage timer on every decide, and provider
    registration.  The ISSUE budget is ≤5% overhead; CI gates only on
    collapse (the inverted ratio rides the generic ``speedup`` gate),
    the exact percentage is recorded for the nightly report."""
    from repro.obs import MetricsRegistry

    # Interleave off/on passes so machine drift (thermal, co-tenant
    # load) hits both sides equally — a sequential off-block/on-block
    # ordering reads drift as overhead.  Best-of-N on each side needs
    # enough rounds that both sides see at least one quiet window; the
    # passes are cheap (~0.1 s each), so take plenty.
    rounds = max(repeat * 2, 12)
    off = float("inf")
    on = float("inf")
    registry = None
    for __ in range(rounds):
        off = min(off, _timed(lambda: run_server_concurrent(stream))[0])
        candidate = MetricsRegistry()
        elapsed, __decisions = _timed(
            lambda: run_server_concurrent(stream, metrics=candidate)
        )
        if elapsed < on:
            on, registry = elapsed, candidate
    overhead_pct = (on / off - 1.0) * 100.0
    histogram = registry.histogram("repro_request_ms", labels=("op",))
    p50 = histogram.percentile(50, op="decide")
    p99 = histogram.percentile(99, op="decide")
    print(
        f"  metrics overhead: off {off * 1000:9.2f} ms   "
        f"on {on * 1000:9.2f} ms   {overhead_pct:+.1f}%   "
        f"(registry decide p50 {p50:.2f} ms, p99 {p99:.2f} ms)"
    )
    return BenchRecord(
        f"metrics-overhead-{CLIENTS}-clients",
        on,
        rounds,
        {
            "baseline_seconds": off,
            "metrics_on_seconds": on,
            "metrics_off_seconds": off,
            "overhead_pct": round(overhead_pct, 2),
            # Gated ratio: off/on wall time.  ~1.0 when the registry is
            # within budget; the 0.4x CI tolerance only fires if metrics
            # ever make the server several times slower.
            "speedup": round(off / on, 3) if on else float("inf"),
            "registry_p50_ms_decide": round(p50, 3),
            "registry_p99_ms_decide": round(p99, 3),
            "requests": len(stream),
            "clients": CLIENTS,
            "mode": "metrics-overhead",
            "baseline": "the identical mixed-fingerprint concurrent-"
            "client pass with no MetricsRegistry attached",
        },
    )


# ----------------------------------------------------------------------
# Degraded mode: one hostile client vs the well-behaved cohort
# ----------------------------------------------------------------------
WELL_BEHAVED = 4
HOSTILE_CONNECTIONS = 4  # == workers: unquotaed, it clogs every thread


def _slow_query_stream(smoke: bool):
    """Uncacheable expensive requests: each carries a distinct constant,
    so every one is a full rewrite (no decision-cache shortcut)."""
    workload = lookup_chain_workload(3 if smoke else 4)
    base = ", ".join(
        f"{a.relation}({', '.join(map(str, a.terms))})"
        for a in workload.query.atoms
    )
    description = schema_to_dict(workload.schema)

    def frame(k: int) -> dict:
        return {
            "query": f"{base}, L0({7000 + k}, hz)",
            "schema": description,
            "id": f"hostile-{k}",
        }

    return frame


async def _run_degraded(smoke: bool, quotas: bool) -> list[float]:
    """Well-behaved per-request latencies with a hostile client attached.

    The hostile client drives `HOSTILE_CONNECTIONS` connections from one
    address (127.0.0.2), each looping expensive uncacheable requests;
    the cohort are `WELL_BEHAVED` clients on their own addresses
    (127.0.1.*) sending cheap cached queries serially.  With ``quotas``
    the server caps the hostile address at one in-flight request — its
    surplus is shed with `Overloaded` frames (which the hostile client
    honors, sleeping on ``retry_after_ms`` like a well-behaved retrier).
    """
    pool = SessionPool(university_schema(ud_bound=100), pool_size=2)
    kwargs = {"max_inflight_per_client": 1} if quotas else {}
    server = await DecideServer(pool, port=0, workers=4, **kwargs).start()
    host, port = server.address
    hostile_frame = _slow_query_stream(smoke)
    stop = asyncio.Event()
    counter = iter(range(10**9))

    async def hostile_connection() -> None:
        reader, writer = await asyncio.open_connection(
            host, port, local_addr=("127.0.0.2", 0)
        )
        try:
            while not stop.is_set():
                writer.write(
                    json.dumps(hostile_frame(next(counter))).encode()
                    + b"\n"
                )
                await writer.drain()
                reply = json.loads(await reader.readline())
                error = reply.get("error")
                if error is not None:
                    hint = error.get("retry_after_ms") or 25.0
                    await asyncio.sleep(min(hint, 50.0) / 1000.0)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    async def well_behaved(index: int, requests: int) -> list[float]:
        reader, writer = await asyncio.open_connection(
            host, port, local_addr=(f"127.0.1.{index + 1}", 0)
        )
        latencies = []
        for i in range(requests + 1):
            start = time.perf_counter()
            writer.write(b'{"query": "Udirectory(i, a, p)"}\n')
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply.get("decision") == "yes", reply
            if i > 0:  # first request warms the pool, untimed
                latencies.append(time.perf_counter() - start)
        writer.close()
        await writer.wait_closed()
        return latencies

    requests = 8 if smoke else 20
    try:
        hostiles = [
            asyncio.ensure_future(hostile_connection())
            for __ in range(HOSTILE_CONNECTIONS)
        ]
        # Let the hostile connections saturate the workers first.
        await asyncio.sleep(0.3 if smoke else 0.8)
        cohorts = await asyncio.gather(
            *(well_behaved(i, requests) for i in range(WELL_BEHAVED))
        )
        stop.set()
        for task in hostiles:
            task.cancel()
        await asyncio.gather(*hostiles, return_exceptions=True)
    finally:
        await server.close(drain_timeout=5.0)
    return sorted(latency for cohort in cohorts for latency in cohort)


# ----------------------------------------------------------------------
# Fleet scaling: shard-cache capacity across worker processes
# ----------------------------------------------------------------------
FLEET_CLIENTS = 8
FLEET_MAX_FINGERPRINTS = 4
FLEET_ROUNDS = 10
FLEET_ROUNDS_SMOKE = 4


def fleet_schema_set(smoke: bool) -> list[dict]:
    """A working set deliberately larger than one worker's fingerprint
    budget: 12 distinct schemas against ``--max-fingerprints 4``.  One
    worker LRU-thrashes (every request recompiles its evicted schema);
    four workers shard it ~3 fingerprints each and stay hot.  This is
    the honest single-core scaling story: the fleet multiplies
    *live-fingerprint capacity*, not CPU (decisions are GIL-bound
    either way — ``host_cpus`` is recorded so multi-core runs can be
    read apart).  Deep chains keep the recompile an order of magnitude
    above the per-request wire cost, so the capacity effect is what
    the clock sees."""
    sizes = range(17, 23) if smoke else range(17, 29)
    return [
        schema_to_dict(id_chain_workload(n).schema) for n in sizes
    ]


def build_fleet_stream(schemas: list[dict], rounds: int) -> list[dict]:
    stream = []
    for __ in range(rounds):
        for description in schemas:
            stream.append(
                {
                    "query": "R0(x)",
                    "schema": description,
                    "id": len(stream),
                }
            )
    return stream


async def _run_fleet(
    stream, workers: int
) -> tuple[float, dict[int, str]]:
    """Time ``stream`` through a dispatcher over ``workers`` supervised
    subprocess workers (spawn/teardown excluded: this measures serving
    throughput, not cold start)."""
    from repro.server import Fleet, FleetDispatcher, WorkerSpec

    dispatcher = FleetDispatcher(port=0, channels_per_worker=2)
    await dispatcher.start()
    specs = [
        WorkerSpec(
            port=0,
            serve_args=(
                "--workers", "2",
                "--pool-size", "1",
                "--max-fingerprints", str(FLEET_MAX_FINGERPRINTS),
                "--drain-timeout", "5",
            ),
        )
        for __ in range(workers)
    ]
    fleet = Fleet(specs, dispatcher)
    decisions: dict[int, str] = {}
    try:
        await fleet.start(timeout_s=120)
        host, port = dispatcher.address

        async def client(shard) -> None:
            reader, writer = await asyncio.open_connection(host, port)
            for request in shard:
                writer.write(json.dumps(request).encode("utf-8") + b"\n")
            await writer.drain()
            for __ in shard:
                payload = json.loads(await reader.readline())
                assert "error" not in payload, payload
                decisions[payload["id"]] = payload["decision"]
            writer.close()
            await writer.wait_closed()

        start = time.perf_counter()
        await asyncio.gather(
            *(
                client(stream[i::FLEET_CLIENTS])
                for i in range(FLEET_CLIENTS)
            )
        )
        elapsed = time.perf_counter() - start
    finally:
        await fleet.close(drain_timeout=5.0)
    return elapsed, decisions


def run_fleet_scaling(smoke: bool) -> BenchRecord:
    import os

    schemas = fleet_schema_set(smoke)
    rounds = FLEET_ROUNDS_SMOKE if smoke else FLEET_ROUNDS
    stream = build_fleet_stream(schemas, rounds)
    fleet_sizes = (1, 2) if smoke else (1, 2, 4, 8)

    # Agreement: the fleet must decide exactly like a plain serial
    # session, normalized by request id — sharding and failover must
    # never change an answer.
    expected = run_single_session_serial(stream)

    points: dict[str, float] = {}
    for workers in fleet_sizes:
        elapsed, decisions = asyncio.run(_run_fleet(stream, workers))
        assert decisions == expected, (
            f"fleet({workers}) diverged from the serial session"
        )
        points[str(workers)] = elapsed
        print(
            f"  fleet x{workers} workers: {elapsed * 1000:9.2f} ms "
            f"({len(stream) / elapsed:7.0f} req/s)"
        )

    reference = "4" if "4" in points else max(points, key=int)
    speedup = points["1"] / points[reference]
    print(
        f"  fleet scaling: {speedup:.1f}x at {reference} workers vs 1 "
        f"(shard-cache capacity, {len(schemas)} fingerprints over "
        f"max {FLEET_MAX_FINGERPRINTS}/worker)"
    )
    return BenchRecord(
        "fleet-scaling-mixed-fingerprint",
        points[reference],
        1,
        {
            "speedup": round(speedup, 2),
            "baseline_seconds": points["1"],
            "points_seconds": {k: round(v, 4) for k, v in points.items()},
            "requests": len(stream),
            "fingerprints": len(schemas),
            "max_fingerprints_per_worker": FLEET_MAX_FINGERPRINTS,
            "clients": FLEET_CLIENTS,
            "workers_compared": [1, int(reference)],
            "host_cpus": os.cpu_count(),
            "mode": "shard-cache-capacity",
            "baseline": "the same dispatcher + stream over ONE worker, "
            "whose fingerprint LRU thrashes on the working set; N "
            "workers shard it and stay hot (single-core honest: this "
            "measures aggregate cache capacity, not GIL parallelism)",
        },
    )


# ----------------------------------------------------------------------
# Fleet worker-kill warm restart: re-serving a shard from the store
# ----------------------------------------------------------------------
FLEET_RESTART_WORKERS = 2


def restart_schema_set(smoke: bool) -> list[dict]:
    """Deep-chain fingerprints sized to *fit* each worker's budget (no
    LRU thrash — the scenario isolates restart cost, not capacity)."""
    sizes = range(17, 21) if smoke else range(17, 25)
    return [schema_to_dict(id_chain_workload(n).schema) for n in sizes]


async def _run_fleet_restart(
    stream, schemas: list[dict], cache_dir
) -> dict:
    """2 supervised workers; populate, SIGKILL one, wait for the ring
    to re-admit its replacement, then time a full request pass.

    With ``cache_dir`` both workers share one durable store: the
    restarted worker re-warms its compiled schemas from the store
    before reporting ready and serves its shard's decisions as durable
    hits.  Without it the replacement starts empty and recompiles every
    fingerprint it owns on first touch — the pass the clock sees.
    """
    import os
    import signal

    from repro.server import Fleet, FleetDispatcher, WorkerSpec

    extra = () if cache_dir is None else ("--cache-dir", str(cache_dir))
    dispatcher = FleetDispatcher(port=0, channels_per_worker=2)
    await dispatcher.start()
    specs = [
        WorkerSpec(
            port=0,
            health_interval_s=0.2,
            serve_args=(
                "--workers", "2",
                "--pool-size", "1",
                "--max-fingerprints", str(len(schemas)),
                "--drain-timeout", "5",
                *extra,
            ),
        )
        for __ in range(FLEET_RESTART_WORKERS)
    ]
    fleet = Fleet(specs, dispatcher)
    loop = asyncio.get_running_loop()
    try:
        await fleet.start(timeout_s=120)
        host, port = dispatcher.address

        async def run_pass() -> tuple[dict[int, str], int]:
            decisions: dict[int, str] = {}
            cached = 0

            async def client(shard) -> None:
                nonlocal cached
                reader, writer = await asyncio.open_connection(host, port)
                for request in shard:
                    writer.write(
                        json.dumps(request).encode("utf-8") + b"\n"
                    )
                await writer.drain()
                for __ in shard:
                    payload = json.loads(await reader.readline())
                    assert "error" not in payload, payload
                    decisions[payload["id"]] = payload["decision"]
                    cached += bool(payload.get("cached"))
                writer.close()
                await writer.wait_closed()

            await asyncio.gather(
                *(
                    client(stream[i::FLEET_CLIENTS])
                    for i in range(FLEET_CLIENTS)
                )
            )
            return decisions, cached

        populate, __ = await run_pass()

        victim_id = sorted(dispatcher.workers)[0]
        victim_pid = dispatcher._workers[victim_id].pid
        os.kill(victim_pid, signal.SIGKILL)
        readmit_start = loop.time()
        deadline = readmit_start + 120
        while True:
            replacement = dispatcher._workers.get(victim_id)
            if (
                replacement is not None
                and replacement.pid != victim_pid
                and len(dispatcher.workers) == FLEET_RESTART_WORKERS
            ):
                break
            assert loop.time() < deadline, (
                f"ring never re-admitted {victim_id} "
                f"(killed pid {victim_pid})"
            )
            await asyncio.sleep(0.05)
        readmit_seconds = loop.time() - readmit_start

        start = time.perf_counter()
        decisions, cached = await run_pass()
        elapsed = time.perf_counter() - start
        assert decisions == populate, "restart changed an answer"
        return {
            "pass_seconds": elapsed,
            "readmit_seconds": readmit_seconds,
            "cached_responses": cached,
            "decisions": decisions,
        }
    finally:
        await fleet.close(drain_timeout=5.0)


def run_fleet_restart(smoke: bool) -> BenchRecord:
    import shutil
    import tempfile

    schemas = restart_schema_set(smoke)
    rounds = 2
    stream = build_fleet_stream(schemas, rounds)
    expected = run_single_session_serial(stream)

    cache_dir = tempfile.mkdtemp(prefix="bench-fleet-restart-")
    try:
        warm = asyncio.run(_run_fleet_restart(stream, schemas, cache_dir))
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    cold = asyncio.run(_run_fleet_restart(stream, schemas, None))
    assert warm["decisions"] == expected, "warm fleet diverged"
    assert cold["decisions"] == expected, "cold fleet diverged"
    # The warm pass must be served entirely from caches — the restarted
    # worker's shard from the durable store, the survivor's from its
    # in-memory LRU; any recompute shows up as an uncached response.
    assert warm["cached_responses"] == len(stream), (
        f"warm restart recomputed: {warm['cached_responses']} of "
        f"{len(stream)} responses cached"
    )

    speedup = (
        cold["pass_seconds"] / warm["pass_seconds"]
        if warm["pass_seconds"]
        else float("inf")
    )
    print(
        f"  fleet worker-kill restart: cold pass "
        f"{cold['pass_seconds'] * 1000:9.2f} ms   warm pass "
        f"{warm['pass_seconds'] * 1000:9.2f} ms   {speedup:5.1f}x "
        f"(shared --cache-dir, {len(schemas)} fingerprints)"
    )
    return BenchRecord(
        "fleet-worker-kill-warm-restart",
        warm["pass_seconds"],
        1,
        {
            "baseline_seconds": cold["pass_seconds"],
            "speedup": round(speedup, 2),
            "requests": len(stream),
            "fingerprints": len(schemas),
            "workers": FLEET_RESTART_WORKERS,
            "clients": FLEET_CLIENTS,
            "readmit_seconds_warm": round(warm["readmit_seconds"], 3),
            "readmit_seconds_cold": round(cold["readmit_seconds"], 3),
            "cached_responses_warm": warm["cached_responses"],
            "cached_responses_cold": cold["cached_responses"],
            "mode": "warm-restart-fleet",
            "baseline": "the identical SIGKILL + re-admit cycle with no "
            "--cache-dir: the replacement worker recompiles every "
            "fingerprint of its shard on first touch, while the warm "
            "side re-admits from the shared store and serves its shard "
            "as durable cache hits",
        },
    )


def _percentile(sorted_values: list[float], fraction: float) -> float:
    index = min(len(sorted_values) - 1, int(fraction * len(sorted_values)))
    return sorted_values[index]


def _timed(run) -> tuple[float, dict[int, str]]:
    start = time.perf_counter()
    result = run()
    return time.perf_counter() - start, result


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="bench_server")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI (written to a .smoke.json sidecar)",
    )
    parser.add_argument("--out", default=None, help="output path")
    args = parser.parse_args(argv)

    repeat = 2 if args.smoke else 3
    rounds = 10 if args.smoke else 40
    families = schema_families(args.smoke)
    stream = build_stream(families, rounds)

    # Agreement first: all three paths must decide identically.
    expected = run_single_session_serial(stream)
    assert run_pooled_batch_serial(stream) == expected
    assert run_server_concurrent(stream) == expected
    print(
        f"agreement: {len(stream)} mixed-fingerprint requests over "
        f"{len(families)} schemas decide identically on all paths"
    )

    single = min(
        _timed(lambda: run_single_session_serial(stream))[0]
        for __ in range(repeat)
    )
    pooled = min(
        _timed(lambda: run_pooled_batch_serial(stream))[0]
        for __ in range(repeat)
    )
    concurrent = min(
        _timed(lambda: run_server_concurrent(stream))[0]
        for __ in range(repeat)
    )
    speedup = single / concurrent if concurrent else float("inf")
    pooled_speedup = single / pooled if pooled else float("inf")
    print(
        f"  single-session serial {single * 1000:9.2f} ms   "
        f"pooled batch {pooled * 1000:9.2f} ms   "
        f"server x{CLIENTS} clients {concurrent * 1000:9.2f} ms   "
        f"{speedup:5.1f}x"
    )
    # Metrics overhead: the same concurrent scenario with a live
    # registry (per-request instruments + stage timer) vs without.
    metrics_record = run_metrics_overhead(stream, repeat)
    # Fleet scaling: N supervised worker processes behind the
    # consistent-hash dispatcher vs one.
    fleet_record = run_fleet_scaling(args.smoke)
    # Worker-kill warm restart: a SIGKILLed worker re-serving its shard
    # from the shared durable store vs recompiling it from scratch.
    restart_record = run_fleet_restart(args.smoke)
    # Degraded mode: the well-behaved cohort's latency with a hostile
    # slow client attached, with and without per-client quotas.
    unquotaed = asyncio.run(_run_degraded(args.smoke, quotas=False))
    quotaed = asyncio.run(_run_degraded(args.smoke, quotas=True))
    p99_off = _percentile(unquotaed, 0.99)
    p99_on = _percentile(quotaed, 0.99)
    p99_ratio = p99_off / p99_on if p99_on else float("inf")
    print(
        f"  degraded mode: well-behaved p50/p99 "
        f"{_percentile(unquotaed, 0.5) * 1000:.2f}/{p99_off * 1000:.2f} ms "
        f"unquotaed vs "
        f"{_percentile(quotaed, 0.5) * 1000:.2f}/{p99_on * 1000:.2f} ms "
        f"with quotas ({p99_ratio:.0f}x at p99)"
    )

    records = [
        BenchRecord(
            f"mixed-fingerprint-{CLIENTS}-clients",
            concurrent,
            repeat,
            {
                "baseline_seconds": single,
                "pooled_batch_seconds": pooled,
                "speedup": round(speedup, 2),
                "pooled_batch_speedup": round(pooled_speedup, 2),
                "requests": len(stream),
                "fingerprints": len(families),
                "clients": CLIENTS,
                "mode": "mixed-fingerprint",
                "baseline": "single-session sequential decide "
                "(recompiles on every fingerprint switch)",
            },
        ),
        metrics_record,
        fleet_record,
        restart_record,
        BenchRecord(
            "degraded-mode-hostile-client",
            p99_on,
            1,
            {
                "mode": "degraded",
                "well_behaved_clients": WELL_BEHAVED,
                "hostile_connections": HOSTILE_CONNECTIONS,
                "p50_ms_unquotaed": round(
                    _percentile(unquotaed, 0.5) * 1000, 3
                ),
                "p99_ms_unquotaed": round(p99_off * 1000, 3),
                "p50_ms_quotaed": round(
                    _percentile(quotaed, 0.5) * 1000, 3
                ),
                "p99_ms_quotaed": round(p99_on * 1000, 3),
                "p99_ratio": round(p99_ratio, 2),
                # The regression gate reads `speedup` at 0.4x tolerance;
                # the raw p99 ratio is too noisy on shared runners, so
                # the gated value is clamped at 5x — the claim defended
                # is "quotas keep helping", not the exact multiplier.
                "speedup": round(min(p99_ratio, 5.0), 2),
                "baseline": "well-behaved p99 with the hostile client "
                "and no per-client quotas",
            },
        ),
    ]

    if args.out is not None:
        out = Path(args.out)
    elif args.smoke:
        out = ROOT / "BENCH_server.smoke.json"
    else:
        out = None  # write_bench_json's default: BENCH_server.json
    path = write_bench_json(
        "server", records, extra={"smoke": args.smoke}, path=out
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
