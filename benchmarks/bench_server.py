"""Server throughput: concurrent clients vs the serial front ends.

Measures what the `repro.server` layer buys on **mixed-fingerprint**
traffic — the workload the per-fingerprint `SessionPool` exists for.
The request stream interleaves four schemas (FD, ID-chain, lookup-chain
and the university example: every Table-1 route family), so consecutive
requests almost never share a schema:

* **single-session serial** (the speedup baseline, and what the
  pre-server API offered a serving loop): one live `Session` at a
  time, torn down and recompiled whenever the incoming fingerprint
  changes — cross-fingerprint interleaving defeats every per-schema
  cache;
* **pooled batch serial** (the ``batch`` CLI path): a serial loop over
  one `SessionPool`, fingerprint routing but no concurrency — recorded
  for context, not gated;
* **server, N concurrent clients**: a live `DecideServer` (worker
  threads + per-fingerprint pooling), the stream sharded over N TCP
  connections.

The headline ``speedup`` is single-session-serial / server wall time.
Decisions are CPU-bound Python, so the win is *architectural* — the
pool amortizes per-fingerprint compilation and decision caches across
interleaved traffic while clients overlap framing and I/O — not GIL
parallelism.  Agreement between all three paths is asserted before
timing.  Results go to ``BENCH_server.json`` (``--smoke`` writes a
sidecar and shrinks sizes for CI).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time
from pathlib import Path

from _harness import ROOT, BenchRecord, write_bench_json

from repro.io import schema_from_dict, schema_to_dict
from repro.server import DecideServer, SessionPool
from repro.service import Session
from repro.workloads import (
    fd_determinacy_workload,
    id_chain_workload,
    lookup_chain_workload,
    university_schema,
)

CLIENTS = 8


def schema_families(smoke: bool):
    """(name, description, queries) per fingerprint in the mix."""
    chain = 3 if smoke else 4
    depth = 4 if smoke else 8
    fd = fd_determinacy_workload(4)
    fd_query = ", ".join(
        f"{a.relation}({', '.join(map(str, a.terms))})"
        for a in fd.query.atoms
    )
    return [
        (
            "university",
            schema_to_dict(university_schema(ud_bound=100)),
            ["Udirectory(i, a, p)", "Prof(i, n, 10000)"],
        ),
        (
            "lookup-chain",
            schema_to_dict(lookup_chain_workload(chain).schema),
            ["L0(x, y)", "L0(x, y), L1(x, z)", "L2(x, y)"],
        ),
        (
            "id-chain",
            schema_to_dict(id_chain_workload(depth).schema),
            [f"R{i}(x)" for i in range(depth + 1)],
        ),
        ("fd-views", schema_to_dict(fd.schema), [fd_query]),
    ]


def build_stream(families, rounds: int) -> list[dict]:
    """Interleaved requests: consecutive frames change fingerprint."""
    stream = []
    for round_index in range(rounds):
        for __, description, queries in families:
            stream.append(
                {
                    "query": queries[round_index % len(queries)],
                    "schema": description,
                    "id": len(stream),
                }
            )
    return stream


# ----------------------------------------------------------------------
# The three execution paths
# ----------------------------------------------------------------------
def run_single_session_serial(stream) -> dict[int, str]:
    """One live session; fingerprint switches recompile everything."""
    decisions: dict[int, str] = {}
    session = None
    current = None
    for request in stream:
        text = json.dumps(request["schema"], sort_keys=True)
        if text != current:
            session = Session(schema_from_dict(request["schema"]))
            current = text
        decisions[request["id"]] = session.decide(
            request["query"]
        ).decision
    return decisions


def run_pooled_batch_serial(stream) -> dict[int, str]:
    """The batch CLI path: serial loop over a fingerprint-routed pool."""
    from repro.io import DecideRequest

    pool = SessionPool(pool_size=1)
    decisions: dict[int, str] = {}
    for request in stream:
        response = pool.process(
            DecideRequest(
                query=request["query"],
                schema=request["schema"],
                id=request["id"],
            )
        )
        decisions[request["id"]] = response.decision
    return decisions


async def _run_server_clients(stream, clients: int) -> dict[int, str]:
    pool = SessionPool(pool_size=2)
    server = await DecideServer(pool, port=0, workers=clients).start()
    host, port = server.address
    decisions: dict[int, str] = {}

    async def client(shard) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        for request in shard:
            writer.write(json.dumps(request).encode("utf-8") + b"\n")
        await writer.drain()
        for __ in shard:
            payload = json.loads(await reader.readline())
            decisions[payload["id"]] = payload["decision"]
        writer.close()
        await writer.wait_closed()

    try:
        await asyncio.gather(
            *(client(stream[i::clients]) for i in range(clients))
        )
    finally:
        await server.close()
    return decisions


def run_server_concurrent(stream, clients: int = CLIENTS) -> dict[int, str]:
    """A fresh server per run: cold pool, like the serial baselines."""
    return asyncio.run(_run_server_clients(stream, clients))


def _timed(run) -> tuple[float, dict[int, str]]:
    start = time.perf_counter()
    result = run()
    return time.perf_counter() - start, result


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="bench_server")
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny sizes for CI (written to a .smoke.json sidecar)",
    )
    parser.add_argument("--out", default=None, help="output path")
    args = parser.parse_args(argv)

    repeat = 2 if args.smoke else 3
    rounds = 10 if args.smoke else 40
    families = schema_families(args.smoke)
    stream = build_stream(families, rounds)

    # Agreement first: all three paths must decide identically.
    expected = run_single_session_serial(stream)
    assert run_pooled_batch_serial(stream) == expected
    assert run_server_concurrent(stream) == expected
    print(
        f"agreement: {len(stream)} mixed-fingerprint requests over "
        f"{len(families)} schemas decide identically on all paths"
    )

    single = min(
        _timed(lambda: run_single_session_serial(stream))[0]
        for __ in range(repeat)
    )
    pooled = min(
        _timed(lambda: run_pooled_batch_serial(stream))[0]
        for __ in range(repeat)
    )
    concurrent = min(
        _timed(lambda: run_server_concurrent(stream))[0]
        for __ in range(repeat)
    )
    speedup = single / concurrent if concurrent else float("inf")
    pooled_speedup = single / pooled if pooled else float("inf")
    print(
        f"  single-session serial {single * 1000:9.2f} ms   "
        f"pooled batch {pooled * 1000:9.2f} ms   "
        f"server x{CLIENTS} clients {concurrent * 1000:9.2f} ms   "
        f"{speedup:5.1f}x"
    )
    records = [
        BenchRecord(
            f"mixed-fingerprint-{CLIENTS}-clients",
            concurrent,
            repeat,
            {
                "baseline_seconds": single,
                "pooled_batch_seconds": pooled,
                "speedup": round(speedup, 2),
                "pooled_batch_speedup": round(pooled_speedup, 2),
                "requests": len(stream),
                "fingerprints": len(families),
                "clients": CLIENTS,
                "mode": "mixed-fingerprint",
                "baseline": "single-session sequential decide "
                "(recompiles on every fingerprint switch)",
            },
        ),
    ]

    if args.out is not None:
        out = Path(args.out)
    elif args.smoke:
        out = ROOT / "BENCH_server.smoke.json"
    else:
        out = None  # write_bench_json's default: BENCH_server.json
    path = write_bench_json(
        "server", records, extra={"smoke": args.smoke}, path=out
    )
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
