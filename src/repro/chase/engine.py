"""The chase: restricted and semi-oblivious variants, TGD + EGD/FD steps.

The chase (paper §2, "Query containment and chase proofs") repairs an
instance against a set of dependencies:

* firing a **TGD** on an active trigger adds head facts, instantiating
  existential variables with fresh labeled nulls;
* firing an **FD/EGD** identifies two terms (preferring to keep constants
  and canonical-database nulls); identifying two distinct constants is a
  *hard violation* and the chase **fails** (the premises are
  unsatisfiable, which makes containment hold vacuously).

Two trigger policies are supported:

* ``restricted`` (default): only *active* triggers fire — triggers whose
  head is not yet satisfied.  Reaching a fixpoint yields a universal model
  (complete for containment).
* ``semi_oblivious``: each (dependency, frontier-binding) pair fires at
  most once but fires even when the head is satisfied.  This is the tree
  chase used by the Johnson–Klug depth argument (App E.4) and by the
  paper's oblivious blow-up constructions.

Two engines implement those semantics:

* ``delta`` (default): a semi-naive engine.  Each round only considers
  triggers whose body image touches the *delta* — facts added or
  rewritten since the previous round — seeding the homomorphism search
  per body atom from the new fact via a relation→(rule, atom) map built
  once per run.  Equalities are resolved incrementally: a per-FD
  ``(determiner-key → values)`` witness table pulls the next violation in
  O(1), the ``facts_containing`` occurrence index confines a merge to the
  facts actually mentioning the removed term, and merges are tracked in a
  union-find rather than by rewriting the substitution dict.

Both engines search through a `repro.matching` matcher (the ``matcher``
argument; the process default when omitted): join orders and per-atom
instructions are compiled once per (body, seed-shape) and reused across
rounds, activeness/head-satisfaction checks are served as ground probes
or from the generation-invalidated check cache, and — under the
semi-oblivious policy — the delta engine enumerates triggers through
`distinct_matches`, so frontier bindings that already fired prune the
body search instead of being filtered after a full homomorphism was
built.
* ``naive``: the reference engine.  Every round re-enumerates all
  triggers over the whole instance and rescans relations for FD/EGD
  violations.  It is kept as the executable specification the delta
  engine is cross-checked against (``tests/chase/test_delta_equivalence``).

Both engines run in rounds with identical observable semantics: a round
applies EGDs to fixpoint, then fires all triggers discovered on the
current instance.  ``max_rounds`` / ``max_facts`` bound the run; the
outcome reports whether a fixpoint was reached, the bound was hit, or the
chase failed.
"""

from __future__ import annotations

import enum
import re
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from ..constraints.egd import EGD
from ..constraints.fd import FDWitnessIndex, FunctionalDependency
from ..constraints.tgd import TGD
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.terms import Constant, GroundTerm, Null, NullFactory, Term, Variable
from ..matching.intexec import (
    int_plan_of,
    int_seeded_context,
    int_slot_search,
)
from ..obs.timing import stage
from ..matching.matcher import default_matcher
from ..runtime import Budget

Dependency = Union[TGD, EGD, FunctionalDependency]


class ChaseOutcome(enum.Enum):
    """How a chase run ended."""

    FIXPOINT = "fixpoint"          # all dependencies satisfied
    BOUND_REACHED = "bound"        # max_rounds or max_facts hit
    FAILED = "failed"              # EGD tried to merge distinct constants
    EARLY_STOP = "early-stop"      # the caller's stop condition fired


@dataclass(frozen=True)
class TGDStep:
    """Record of one TGD firing (used to extract plans from proofs)."""

    dependency: TGD
    trigger: dict
    produced: tuple[Atom, ...]
    round_index: int


@dataclass(frozen=True)
class MergeStep:
    """Record of one EGD/FD merge."""

    dependency: Union[EGD, FunctionalDependency]
    removed: GroundTerm
    kept: GroundTerm
    round_index: int


ChaseStep = Union[TGDStep, MergeStep]


@dataclass
class ChaseStats:
    """Work counters for one chase run (engine comparison / benchmarks)."""

    #: Body homomorphisms yielded while enumerating TGD triggers.
    triggers_enumerated: int = 0
    #: Head-satisfaction searches (activeness checks + firing re-checks).
    head_checks: int = 0
    #: Body homomorphisms examined while looking for EGD violations.
    egd_checks: int = 0
    #: EGD/FD merges performed.
    merges: int = 0

    @property
    def searches(self) -> int:
        """Total trigger-homomorphism searches performed."""
        return self.triggers_enumerated + self.head_checks + self.egd_checks


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: Instance
    outcome: ChaseOutcome
    rounds: int
    steps: list[ChaseStep] = field(default_factory=list)
    #: Composite substitution applied by EGD merges (original -> final).
    substitution: dict[GroundTerm, GroundTerm] = field(default_factory=dict)
    stats: ChaseStats = field(default_factory=ChaseStats)

    @property
    def failed(self) -> bool:
        return self.outcome is ChaseOutcome.FAILED

    @property
    def terminated(self) -> bool:
        return self.outcome in (ChaseOutcome.FIXPOINT, ChaseOutcome.EARLY_STOP)


class _Unsatisfiable(Exception):
    """Raised internally when an EGD merges two distinct constants."""


# ----------------------------------------------------------------------
# Term identification: deterministic kept-term choice + union-find
# ----------------------------------------------------------------------

_LABEL_NUMBER = re.compile(r"(\D*?)(\d+)(.*)\Z", re.DOTALL)


def _null_age_key(null: Null) -> tuple:
    """Total order on nulls approximating creation order.

    Factory labels are ``{prefix}{index}`` or ``{prefix}{index}:{hint}``;
    parsing the index numerically makes ``c2`` older than ``c10``.  The
    order is a pure function of the label, so merge results are
    reproducible across hash-seed randomization.
    """
    match = _LABEL_NUMBER.match(null.label)
    if match:
        prefix, number, rest = match.groups()
        return (0, prefix, int(number), rest, null.label)
    return (1, null.label)


def _choose_kept(
    left: GroundTerm, right: GroundTerm
) -> tuple[GroundTerm, GroundTerm]:
    """Pick (kept, removed) for a merge: constants win, then older nulls."""
    if isinstance(left, Constant):
        if isinstance(right, Constant):
            raise _Unsatisfiable(
                f"cannot identify constants {left} and {right}"
            )
        return left, right
    if isinstance(right, Constant):
        return right, left
    if _null_age_key(left) <= _null_age_key(right):
        return left, right
    return right, left


class _UnionFind:
    """Union-find over merged terms; resolves each original to its root."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[GroundTerm, GroundTerm] = {}

    def record(self, removed: GroundTerm, kept: GroundTerm) -> None:
        self._parent[removed] = kept

    def find(self, term: GroundTerm) -> GroundTerm:
        parent = self._parent
        root = term
        while root in parent:
            root = parent[root]
        while term != root:
            next_term = parent[term]
            parent[term] = root
            term = next_term
        return root

    def resolved(self) -> dict[GroundTerm, GroundTerm]:
        """The composite substitution: every merged term -> its root."""
        return {term: self.find(term) for term in list(self._parent)}


def _merge_terms(
    instance: Instance,
    left: GroundTerm,
    right: GroundTerm,
    substitution: dict[GroundTerm, GroundTerm],
) -> tuple[GroundTerm, GroundTerm]:
    """Identify two terms in the instance; return (kept, removed).

    This is the naive-engine variant: it rewrites the running
    substitution dict in place.  The kept term is chosen by
    `_choose_kept`, and only facts actually containing the removed term
    (per the occurrence index) are rewritten.
    """
    if left == right:
        return left, right
    kept, removed = _choose_kept(left, right)
    affected = list(instance.facts_containing(removed))
    for fact in affected:
        instance.discard(fact)
    for fact in affected:
        instance.add(
            Atom(
                fact.relation,
                tuple(kept if t == removed else t for t in fact.terms),
            )
        )
    # Update the composite substitution.
    for source, target in list(substitution.items()):
        if target == removed:
            substitution[source] = kept
    substitution[removed] = kept
    return kept, removed


def _fd_violation(
    instance: Instance, dependency: FunctionalDependency
) -> Optional[tuple[GroundTerm, GroundTerm]]:
    """Find one violation of the FD, as a pair of terms to merge."""
    witness: dict[tuple, GroundTerm] = {}
    for fact in instance.facts_of(dependency.relation):
        key, value = dependency.project(fact)
        previous = witness.setdefault(key, value)
        if previous != value:
            return previous, value
    return None


def _egd_violation(
    instance: Instance, dependency: EGD, stats: ChaseStats, matcher
) -> Optional[tuple[GroundTerm, GroundTerm]]:
    for assignment in matcher.homomorphisms(dependency.body, instance):
        stats.egd_checks += 1
        left = assignment[dependency.left]
        right = assignment[dependency.right]
        if left != right:
            return left, right
    return None


def _apply_equalities(
    instance: Instance,
    egds: Sequence[Union[EGD, FunctionalDependency]],
    substitution: dict[GroundTerm, GroundTerm],
    steps: Optional[list[ChaseStep]],
    round_index: int,
    stats: ChaseStats,
    matcher,
) -> None:
    """Apply FD/EGD merges to fixpoint (raises on constant clashes)."""
    changed = True
    while changed:
        changed = False
        for dependency in egds:
            while True:
                if isinstance(dependency, FunctionalDependency):
                    violation = _fd_violation(instance, dependency)
                else:
                    violation = _egd_violation(
                        instance, dependency, stats, matcher
                    )
                if violation is None:
                    break
                kept, removed = _merge_terms(
                    instance, violation[0], violation[1], substitution
                )
                stats.merges += 1
                if steps is not None:
                    steps.append(
                        MergeStep(dependency, removed, kept, round_index)
                    )
                changed = True


def _frontier_key(
    dependency_index: int, dependency: TGD, trigger: dict
) -> tuple:
    """Key identifying a semi-oblivious firing: rule + frontier binding."""
    frontier = dependency.exported_variables()
    return (
        dependency_index,
        tuple(trigger[v] for v in frontier if v in trigger),
    )


def _instantiate_head(
    dependency: TGD, trigger: dict, factory: NullFactory
) -> tuple[Atom, ...]:
    """The facts a firing produces: the trigger's exported bindings plus
    a fresh null per existential head variable.  Shared by both engines
    so their null-naming cannot drift apart."""
    head_map = dict(trigger)
    for existential in dependency.existential_variables():
        head_map[existential] = factory.fresh(existential.name)
    return tuple(a.substitute(head_map) for a in dependency.head)


def _seed_from_fact(atom: Atom, fact: Atom) -> Optional[dict[Term, GroundTerm]]:
    """Partial assignment forcing `atom` onto `fact`, or None on clash.

    Constants (and rigid nulls) in the body atom must match the fact
    literally; repeated variables must see equal terms.
    """
    if len(atom.terms) != len(fact.terms):
        return None
    seed: dict[Term, GroundTerm] = {}
    for term, value in zip(atom.terms, fact.terms):
        if isinstance(term, Variable):
            bound = seed.get(term)
            if bound is None:
                seed[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return seed


# ----------------------------------------------------------------------
# Delta (semi-naive) engine
# ----------------------------------------------------------------------


class _DeltaState:
    """Mutable state of a delta chase run.

    All instance mutations flow through `_add` / `_discard` so the FD
    witness tables and the two delta queues (equality worklist, next
    round's trigger delta) stay in sync with the fact set.
    """

    __slots__ = (
        "instance", "uf", "egds", "fd_indexes", "equality_delta",
        "trigger_delta", "stats", "steps", "matcher",
    )

    def __init__(
        self,
        start: Instance,
        equality_deps: Sequence[Union[EGD, FunctionalDependency]],
        steps: Optional[list[ChaseStep]],
        stats: ChaseStats,
        matcher,
    ) -> None:
        self.matcher = matcher
        self.instance = Instance()
        self.uf = _UnionFind()
        self.egds = [d for d in equality_deps if isinstance(d, EGD)]
        self.fd_indexes = [
            FDWitnessIndex(d)
            for d in equality_deps
            if isinstance(d, FunctionalDependency)
        ]
        self.equality_delta: deque[Atom] = deque()
        self.trigger_delta: list[Atom] = []
        self.stats = stats
        self.steps = steps
        for fact in start:
            self._add(fact)

    # -- mutation ------------------------------------------------------
    def _add(self, fact: Atom) -> bool:
        if not self.instance.add(fact):
            return False
        for index in self.fd_indexes:
            index.on_add(fact)
        if self.egds:
            self.equality_delta.append(fact)
        self.trigger_delta.append(fact)
        return True

    def _discard(self, fact: Atom) -> None:
        if self.instance.discard(fact):
            for index in self.fd_indexes:
                index.on_remove(fact)

    def _merge(
        self,
        left: GroundTerm,
        right: GroundTerm,
        dependency: Union[EGD, FunctionalDependency],
        round_index: int,
    ) -> None:
        """Identify two terms using the occurrence index."""
        if left == right:
            return
        kept, removed = _choose_kept(left, right)
        affected = list(self.instance.facts_containing(removed))
        for fact in affected:
            self._discard(fact)
        for fact in affected:
            self._add(
                Atom(
                    fact.relation,
                    tuple(kept if t == removed else t for t in fact.terms),
                )
            )
        self.uf.record(removed, kept)
        self.stats.merges += 1
        if self.steps is not None:
            self.steps.append(MergeStep(dependency, removed, kept, round_index))

    # -- equality fixpoint ---------------------------------------------
    def _drain_fd_violations(self, round_index: int) -> None:
        """Merge until every FD witness table is clean."""
        progress = True
        while progress:
            progress = False
            for index in self.fd_indexes:
                violation = index.next_violation()
                if violation is not None:
                    self._merge(
                        violation[0], violation[1], index.fd, round_index
                    )
                    progress = True

    def _next_equality_fact(self) -> Optional[Atom]:
        while self.equality_delta:
            fact = self.equality_delta.popleft()
            if fact in self.instance:
                return fact
        return None

    def _process_egd_fact(self, fact: Atom, round_index: int) -> None:
        """Resolve every EGD violation whose body image touches `fact`."""
        for egd in self.egds:
            for atom_index in egd.body_atoms_of_relation(fact.relation):
                while fact in self.instance:
                    seed = _seed_from_fact(egd.body[atom_index], fact)
                    if seed is None:
                        break
                    violation = None
                    for h in self.matcher.homomorphisms(
                        egd.body, self.instance, seed=seed
                    ):
                        self.stats.egd_checks += 1
                        if h[egd.left] != h[egd.right]:
                            violation = (h[egd.left], h[egd.right])
                            break
                    if violation is None:
                        break
                    self._merge(violation[0], violation[1], egd, round_index)
                if fact not in self.instance:
                    # The fact itself was rewritten; its replacement is
                    # queued on the equality delta and restarts the scan.
                    return

    def apply_equalities(self, round_index: int) -> None:
        """Apply FD/EGD merges to fixpoint, driven by the delta worklist."""
        while True:
            self._drain_fd_violations(round_index)
            if not self.egds:
                return
            fact = self._next_equality_fact()
            if fact is None:
                return
            self._process_egd_fact(fact, round_index)

    # -- trigger collection --------------------------------------------
    def take_trigger_delta(self) -> list[Atom]:
        delta = self.trigger_delta
        self.trigger_delta = []
        return delta


class _RuleExec:
    """Per-rule compiled state for the delta engine's trigger pipeline.

    Caches the variable tuples a rule's collection phase keeps
    re-deriving and, for the int executor, a per-plan *spec*:

    * ``body_slots`` — the plan's slot numbers of the body variables,
      in ``body_variables()`` order, so the per-rule dedup key is a
      plain projection of the slot row (ids are plan-independent:
      they come from the instance interner);
    * ``exported_pairs`` — ``(variable, slot)`` pairs for externing a
      trigger's frontier binding;
    * ``head_specs`` — for *full* TGDs only: per head atom, the
      relation plus a template of ``(True, slot)`` / ``(False, term)``
      entries from which the head's concrete int rows are built and
      membership-tested directly, bypassing the matcher entirely for
      the chase's hottest check (head satisfaction of closure rules).
    """

    __slots__ = (
        "index", "dependency", "body_vars", "exported", "is_full", "_specs",
    )

    def __init__(self, index: int, dependency: TGD) -> None:
        self.index = index
        self.dependency = dependency
        self.body_vars = dependency.body_variables()
        self.exported = dependency.exported_variables()
        self.is_full = not dependency.existential_variables()
        self._specs: dict = {}

    def spec_for(self, plan) -> tuple:
        """The int-space spec under this plan (idempotent; benign races)."""
        spec = self._specs.get(plan)
        if spec is None:
            slot_of = int_plan_of(plan).slot_of
            body_slots = tuple(slot_of[v] for v in self.body_vars)
            exported_pairs = tuple((v, slot_of[v]) for v in self.exported)
            if self.is_full:
                head_specs = tuple(
                    (
                        atom.relation,
                        tuple(
                            (True, slot_of[term])
                            if isinstance(term, Variable)
                            else (False, term)
                            for term in atom.terms
                        ),
                    )
                    for atom in self.dependency.head
                )
            else:
                head_specs = None
            spec = (body_slots, exported_pairs, head_specs)
            self._specs[plan] = spec
        return spec


def _head_rows_present(instance: Instance, head_rows: tuple) -> bool:
    """Are all of a full TGD's instantiated head rows already stored?

    Rows may carry the ``-1`` sentinel for a rigid head constant the
    instance has never interned; such a row can't be present, so the
    probe fails and the trigger fires — harmless for a full TGD, whose
    firing is a no-op exactly when the head facts already exist.
    """
    rows_by_relation = instance._rows
    for relation, row in head_rows:
        rows = rows_by_relation.get(relation)
        if rows is None or row not in rows:
            return False
    return True


def _collect_semi_oblivious(
    exec_: _RuleExec,
    seeds: list,
    instance: Instance,
    matcher,
    fired: set,
    budget: Optional[Budget],
    record_env: bool,
) -> tuple[list, int, int]:
    """Semi-oblivious collection for one rule: one trigger per unfired
    frontier binding (`distinct_matches` prunes fired ones mid-search)."""
    dependency = exec_.dependency
    body = dependency.body
    pending = []
    enumerated = 0
    for atom_index, fact, __ in seeds:
        seed = _seed_from_fact(body[atom_index], fact)
        if seed is None:
            continue
        for trigger in matcher.distinct_matches(
            dependency.body,
            instance,
            on=exec_.exported,
            seed=seed,
            skip=fired,
            budget=budget,
        ):
            enumerated += 1
            pending.append((exec_.index, dependency, trigger, {}, None))
    return pending, enumerated, 0


def _collect_restricted_int(
    exec_: _RuleExec,
    seeds: list,
    instance: Instance,
    matcher,
    budget: Optional[Budget],
    record_env: bool,
) -> tuple[list, int, int]:
    """Restricted collection for one rule, entirely in int space.

    Seeds arrive as ``(atom_index, fact, row)`` triples — the fact's
    interned int row rides along from the delta bucketing — and are
    unified against the body atom in int space (rigid positions and
    repeated variables are plain id comparisons, and the seed slots
    fill straight from the row with no term-space round trip).
    Triggers are enumerated as raw slot rows, deduped on the int
    projection of the body variables, and — for full TGDs — activeness
    is checked by direct int-row membership probes; the probed rows are
    kept on the pending entry so the firing-time re-check repeats the
    probe without touching the matcher.  Environments are only externed
    for the survivors (frontier binding, plus the full trigger when
    steps are being recorded).
    """
    dependency = exec_.dependency
    body = dependency.body
    pending = []
    seen: set[tuple] = set()
    enumerated = 0
    head_checks = 0
    id_terms = instance.id_terms
    term_id = instance.term_id
    rows_by_relation = instance._rows
    body_vars = exec_.body_vars
    # Plan + resolved context per body atom: every seed of one atom has
    # the same key shape, so the plan lookup, spec derivation, the
    # seed-independent half of the execution prologue, and the atom's
    # row-unification spec run once per atom per round instead of once
    # per delta fact.
    contexts: dict[int, tuple] = {}
    for atom_index, fact, row in seeds:
        context = contexts.get(atom_index)
        if context is None:
            atom = body[atom_index]
            variables = {
                term for term in atom.terms if isinstance(term, Variable)
            }
            plan = matcher.plan_for(
                body, instance, seed=dict.fromkeys(variables)
            )
            iplan, rig, views = int_seeded_context(plan, instance)
            slot_of = iplan.slot_of
            fill = []      # (position, slot): first occurrence per var
            repeats = []   # (position, first position): must agree
            rigids = []    # (position, id): constants/rigid nulls
            first_at: dict = {}
            for position, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    first = first_at.get(term)
                    if first is None:
                        first_at[term] = position
                        fill.append((position, slot_of[term]))
                    else:
                        repeats.append((position, first))
                else:
                    rigids.append((position, term_id(term)))
            context = (
                exec_.spec_for(plan),
                (iplan, rig, views),
                (len(atom.terms), tuple(fill), tuple(repeats), tuple(rigids)),
            )
            contexts[atom_index] = context
        spec, resolved, seed_spec = context
        body_slots, exported_pairs, head_specs = spec
        iplan, rig, views = resolved
        arity, fill, repeats, rigids = seed_spec
        # Unify the delta row against the atom: ids never collide, so
        # these integer comparisons are exact term comparisons.
        if len(row) != arity:
            continue
        if any(row[position] != expected for position, expected in rigids):
            continue
        if any(row[position] != row[first] for position, first in repeats):
            continue
        slots = [-1] * iplan.n_slots
        for position, slot in fill:
            slots[slot] = row[position]
        for slots in int_slot_search(iplan, rig, views, slots, budget):
            enumerated += 1
            key = tuple(slots[s] for s in body_slots)
            if key in seen:
                continue
            seen.add(key)
            head_checks += 1
            head_rows = None
            if head_specs is not None:
                rows_list = []
                present = True
                direct = True
                for relation, template in head_specs:
                    row = tuple(
                        slots[index] if is_slot else term_id(index)
                        for is_slot, index in template
                    )
                    rows = rows_by_relation.get(relation)
                    if rows is None or row not in rows:
                        present = False
                        # A -1 entry (a rigid head constant the
                        # instance never interned) cannot be probed or
                        # rebuilt from ids; such triggers take the
                        # matcher path below.
                        if -1 in row:
                            direct = False
                    rows_list.append((relation, row))
                if present:
                    continue  # head satisfied: trigger not active
                if direct:
                    head_rows = tuple(rows_list)
            exported = {
                v: id_terms[slots[s]] for v, s in exported_pairs
            }
            if head_rows is None and matcher.has(
                dependency.head, instance, seed=exported
            ):
                continue
            if record_env:
                trigger = {
                    v: id_terms[slots[s]]
                    for v, s in zip(body_vars, body_slots)
                }
            else:
                # Head instantiation only reads the frontier binding,
                # so the exported map doubles as the trigger.
                trigger = exported
            pending.append(
                (exec_.index, dependency, trigger, exported, head_rows)
            )
    return pending, enumerated, head_checks


def _collect_restricted_obj(
    exec_: _RuleExec,
    seeds: list,
    instance: Instance,
    matcher,
    budget: Optional[Budget],
    record_env: bool,
) -> tuple[list, int, int]:
    """Restricted collection for one rule over dict environments (the
    path taken for matchers without an int executor, e.g. the naive
    reference matcher).  Mirrors `_collect_restricted_int` exactly."""
    dependency = exec_.dependency
    body = dependency.body
    pending = []
    seen: set[tuple] = set()
    enumerated = 0
    head_checks = 0
    body_vars = exec_.body_vars
    for atom_index, fact, __ in seeds:
        seed = _seed_from_fact(body[atom_index], fact)
        if seed is None:
            continue
        for trigger in matcher.homomorphisms(
            dependency.body, instance, seed=seed, budget=budget
        ):
            enumerated += 1
            key = tuple(trigger[v] for v in body_vars)
            if key in seen:
                continue
            seen.add(key)
            exported = {
                v: trigger[v] for v in exec_.exported if v in trigger
            }
            head_checks += 1
            if matcher.has(dependency.head, instance, seed=exported):
                continue  # head satisfied: trigger not active
            pending.append((
                exec_.index,
                dependency,
                dict(trigger) if record_env else exported,
                exported,
                None,
            ))
    return pending, enumerated, head_checks


def _chase_delta(
    start: Instance,
    tgds: Sequence[TGD],
    equality_deps: Sequence[Union[EGD, FunctionalDependency]],
    *,
    max_rounds: Optional[int],
    max_facts: Optional[int],
    policy: str,
    record_steps: bool,
    factory: NullFactory,
    stop_when: Optional[Callable[[Instance], bool]],
    matcher,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> ChaseResult:
    """Semi-naive chase: only delta-touching triggers are enumerated.

    Each round is a collect/fire pair.  Collection — the read-only
    enumeration of delta-touching triggers — is sharded **per rule**:
    every rule's seeds, dedup set, and (semi-oblivious) fired registry
    are rule-local, so the per-rule collectors are independent and,
    when ``parallelism > 1``, run on a thread pool.  Collector results
    are merged in rule-index order, which reproduces the sequential
    engine's firing order exactly: the merged pending list is
    identical whatever the thread schedule, so parallel runs are
    deterministic (and null names match the sequential engine's,
    because heads are instantiated at *firing* time, in merged order).
    """
    stats = ChaseStats()
    steps: Optional[list[ChaseStep]] = [] if record_steps else None
    state = _DeltaState(start, equality_deps, steps, stats, matcher)
    # Static relation → (rule index, body atom index) dependency map.
    body_map: dict[str, list[tuple[int, int]]] = {}
    for index, dependency in enumerate(tgds):
        for atom_index, atom in enumerate(dependency.body):
            body_map.setdefault(atom.relation, []).append((index, atom_index))
    rule_execs = [
        _RuleExec(index, dependency) for index, dependency in enumerate(tgds)
    ]
    # Semi-oblivious firing registry: per rule, the frontier bindings
    # already fired.  The matcher consults it *during* enumeration, so
    # duplicate frontier keys prune the body search instead of being
    # filtered after a full homomorphism was built.
    fired: dict[int, set[tuple]] = {
        index: set() for index in range(len(tgds))
    }
    use_int = getattr(matcher, "execution", None) == "int"
    record_env = steps is not None
    pool: Optional[ThreadPoolExecutor] = None
    if parallelism > 1 and len(tgds) > 1:
        pool = ThreadPoolExecutor(
            max_workers=min(parallelism, len(tgds)),
            thread_name_prefix="chase-collect",
        )
    rounds = 0

    def result(outcome: ChaseOutcome) -> ChaseResult:
        return ChaseResult(
            state.instance, outcome, rounds, steps or [],
            state.uf.resolved(), stats,
        )

    def collect(rule_index: int, seeds: list) -> tuple[list, int, int]:
        exec_ = rule_execs[rule_index]
        if policy == "semi_oblivious":
            return _collect_semi_oblivious(
                exec_, seeds, state.instance, matcher,
                fired[rule_index], budget, record_env,
            )
        if use_int:
            return _collect_restricted_int(
                exec_, seeds, state.instance, matcher, budget, record_env
            )
        return _collect_restricted_obj(
            exec_, seeds, state.instance, matcher, budget, record_env
        )

    try:
        try:
            state.apply_equalities(0)
        except _Unsatisfiable:
            return result(ChaseOutcome.FAILED)
        if stop_when is not None and stop_when(state.instance):
            return result(ChaseOutcome.EARLY_STOP)

        while True:
            # Cooperative cancellation: the round boundary is the chase's
            # coarse check; matcher calls below carry the budget for the
            # fine-grained (per backtrack batch) checks inside a round.
            if budget is not None:
                budget.check()
            if max_rounds is not None and rounds >= max_rounds:
                return result(ChaseOutcome.BOUND_REACHED)
            rounds += 1
            # Bucket the delta's seeds per rule as (atom index, fact,
            # interned row) triples; unification against the body atom
            # happens inside the collectors (in int space on the int
            # path).  A trigger can be reachable from several of its
            # delta facts; the rule-local dedup sets collapse the
            # duplicates.
            delta = state.take_trigger_delta()
            instance = state.instance
            term_ids = instance._term_ids
            seeds_by_rule: dict[int, list] = {}
            for fact in delta:
                if fact not in instance:
                    continue  # rewritten away by a later merge
                targets = body_map.get(fact.relation)
                if not targets:
                    continue
                row = tuple(term_ids[term] for term in fact.terms)
                for rule_index, atom_index in targets:
                    seeds_by_rule.setdefault(rule_index, []).append(
                        (atom_index, fact, row)
                    )

            # Collect per rule — in parallel when a pool is up — and
            # merge in rule order (the naive engine's order): under the
            # restricted policy the firing-time re-check makes a round's
            # outcome depend on firing order, so matching the reference
            # order keeps engines and thread counts interchangeable.
            active = sorted(seeds_by_rule)
            if pool is not None and len(active) > 1:
                futures = [
                    pool.submit(collect, rule_index, seeds_by_rule[rule_index])
                    for rule_index in active
                ]
                collected = [future.result() for future in futures]
            else:
                collected = [
                    collect(rule_index, seeds_by_rule[rule_index])
                    for rule_index in active
                ]
            pending: list = []
            for entries, enumerated, head_checks in collected:
                pending.extend(entries)
                stats.triggers_enumerated += enumerated
                stats.head_checks += head_checks

            added_any = False
            id_terms = instance.id_terms
            for __, dependency, trigger, exported, head_rows in pending:
                if policy == "restricted":
                    # Re-check activeness: an earlier firing in this
                    # round may already satisfy this trigger.  Full-TGD
                    # entries re-probe their instantiated head rows
                    # directly; the rest go through the matcher's
                    # generation-tagged check cache.
                    stats.head_checks += 1
                    if head_rows is not None:
                        if _head_rows_present(instance, head_rows):
                            continue
                    elif matcher.has(
                        dependency.head, instance, seed=exported
                    ):
                        continue
                if head_rows is not None:
                    # Full TGD with fully interned head rows: the
                    # produced facts are the rows read back through the
                    # interner — no substitution pass needed.
                    produced = tuple(
                        Atom(
                            relation,
                            tuple(id_terms[value] for value in row),
                        )
                        for relation, row in head_rows
                    )
                else:
                    produced = _instantiate_head(
                        dependency, trigger, factory
                    )
                new_here = [f for f in produced if state._add(f)]
                if new_here:
                    added_any = True
                    if steps is not None:
                        steps.append(
                            TGDStep(
                                dependency, trigger, tuple(new_here), rounds
                            )
                        )
                if max_facts is not None and len(instance) > max_facts:
                    return result(ChaseOutcome.BOUND_REACHED)

            try:
                state.apply_equalities(rounds)
            except _Unsatisfiable:
                return result(ChaseOutcome.FAILED)

            if stop_when is not None and stop_when(state.instance):
                return result(ChaseOutcome.EARLY_STOP)
            if not added_any:
                return result(ChaseOutcome.FIXPOINT)
    finally:
        if pool is not None:
            pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# Naive (reference) engine
# ----------------------------------------------------------------------


def _chase_naive(
    start: Instance,
    tgds: Sequence[TGD],
    equality_deps: Sequence[Union[EGD, FunctionalDependency]],
    *,
    max_rounds: Optional[int],
    max_facts: Optional[int],
    policy: str,
    record_steps: bool,
    factory: NullFactory,
    stop_when: Optional[Callable[[Instance], bool]],
    matcher,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> ChaseResult:
    """Round-based reference chase: full re-enumeration every round.

    ``parallelism`` is accepted for signature parity with the delta
    engine and ignored: the reference engine stays strictly sequential
    so cross-checks compare against an unsharded specification.
    """
    stats = ChaseStats()
    instance = start.copy()
    steps: Optional[list[ChaseStep]] = [] if record_steps else None
    substitution: dict[GroundTerm, GroundTerm] = {}
    fired: set[tuple] = set()
    rounds = 0

    def result(outcome: ChaseOutcome) -> ChaseResult:
        return ChaseResult(
            instance, outcome, rounds, steps or [], substitution, stats
        )

    try:
        _apply_equalities(
            instance, equality_deps, substitution, steps, 0, stats, matcher
        )
    except _Unsatisfiable:
        return result(ChaseOutcome.FAILED)
    if stop_when is not None and stop_when(instance):
        return result(ChaseOutcome.EARLY_STOP)

    while True:
        if budget is not None:
            budget.check()
        if max_rounds is not None and rounds >= max_rounds:
            return result(ChaseOutcome.BOUND_REACHED)
        rounds += 1
        new_facts: list[tuple[TGD, dict, tuple[Atom, ...]]] = []
        # Collect triggers against the instance as of the round start.
        for index, dependency in enumerate(tgds):
            for trigger in list(
                matcher.homomorphisms(
                    dependency.body, instance, budget=budget
                )
            ):
                stats.triggers_enumerated += 1
                if policy == "semi_oblivious":
                    key = _frontier_key(index, dependency, trigger)
                    if key in fired:
                        continue
                    fired.add(key)
                else:
                    stats.head_checks += 1
                    if not dependency.is_active_trigger(
                        trigger, instance, matcher
                    ):
                        continue
                produced = _instantiate_head(dependency, trigger, factory)
                new_facts.append((dependency, dict(trigger), produced))

        added_any = False
        for dependency, trigger, produced in new_facts:
            if policy == "restricted":
                # Re-check activeness: an earlier firing in this round may
                # already satisfy this trigger.
                exported = {
                    v: trigger[v]
                    for v in dependency.exported_variables()
                    if v in trigger
                }
                stats.head_checks += 1
                if matcher.has(dependency.head, instance, seed=exported):
                    continue
            new_here = [f for f in produced if instance.add(f)]
            if new_here:
                added_any = True
                if steps is not None:
                    steps.append(
                        TGDStep(dependency, trigger, tuple(new_here), rounds)
                    )
            if max_facts is not None and len(instance) > max_facts:
                return result(ChaseOutcome.BOUND_REACHED)

        try:
            _apply_equalities(
                instance, equality_deps, substitution, steps, rounds,
                stats, matcher,
            )
        except _Unsatisfiable:
            return result(ChaseOutcome.FAILED)

        if stop_when is not None and stop_when(instance):
            return result(ChaseOutcome.EARLY_STOP)
        if not added_any:
            return result(ChaseOutcome.FIXPOINT)


def chase(
    start: Instance,
    dependencies: Iterable[Dependency],
    *,
    max_rounds: Optional[int] = None,
    max_facts: Optional[int] = None,
    policy: str = "restricted",
    record_steps: bool = False,
    null_factory: Optional[NullFactory] = None,
    stop_when: Optional[Callable[[Instance], bool]] = None,
    engine: str = "delta",
    matcher=None,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> ChaseResult:
    """Chase `start` with the dependencies.

    The input instance is not modified.  See the module docstring for the
    policies and outcome semantics.  ``stop_when`` is checked after every
    round (and once before the first round) and short-circuits the run —
    used by the containment solver to stop as soon as the target query
    matches.

    ``engine`` selects the implementation:

    * ``"delta"`` (default) — the semi-naive engine: per-round delta fact
      sets, trigger search seeded from new facts only, indexed equality
      merging, union-find substitution tracking.  This is the fast path.
    * ``"naive"`` — the reference engine that re-enumerates all triggers
      over the whole instance every round.  Same observable semantics
      (outcomes, final instance up to null renaming); kept for
      cross-checking and as an executable specification.

    ``matcher`` supplies the homomorphism engine — any object with the
    `repro.matching.Matcher` interface.  ``None`` (default) uses the
    process-wide planned matcher; callers holding a
    `repro.service.CompiledSchema` should pass its per-fingerprint
    matcher so compiled plans and check caches are shared across runs,
    and the cross-check/benchmark suites pass
    `repro.matching.NaiveMatcher` to run the same engine on the
    uncompiled reference search.

    ``budget`` makes the run cooperatively cancellable: it is checked
    at every round boundary (alongside ``max_rounds``/``max_facts``)
    and threaded into the matcher's trigger searches, so an exhausted
    deadline raises `repro.runtime.DeadlineExceeded` out of the chase
    within one backtrack batch.

    ``parallelism`` shards each round's trigger *collection* (the
    read-only enumeration phase) by rule across a thread pool of that
    many workers.  ``0`` (the default) and ``1`` run sequentially;
    results are deterministic and identical for every value, because
    per-rule results are merged in rule order before any fact is added
    (the firing phase stays sequential).  Only the delta engine
    parallelizes; the naive reference engine ignores the setting.
    """
    if policy not in ("restricted", "semi_oblivious"):
        raise ValueError(f"unknown chase policy: {policy}")
    if engine not in ("delta", "naive"):
        raise ValueError(f"unknown chase engine: {engine}")
    if parallelism < 0:
        raise ValueError(
            f"parallelism must be non-negative, got {parallelism}"
        )
    tgds = [d for d in dependencies if isinstance(d, TGD)]
    equality_deps = [
        d
        for d in dependencies
        if isinstance(d, (EGD, FunctionalDependency))
    ]
    factory = null_factory or NullFactory(prefix="c")
    runner = _chase_delta if engine == "delta" else _chase_naive
    with stage("chase"):
        return runner(
            start,
            tgds,
            equality_deps,
            max_rounds=max_rounds,
            max_facts=max_facts,
            policy=policy,
            record_steps=record_steps,
            factory=factory,
            stop_when=stop_when,
            matcher=matcher if matcher is not None else default_matcher(),
            budget=budget,
            parallelism=parallelism,
        )


def satisfies(instance: Instance, dependencies: Iterable[Dependency]) -> bool:
    """True iff the instance satisfies all the dependencies."""
    return all(dep.satisfied_by(instance) for dep in dependencies)
