"""The chase: restricted and semi-oblivious variants, TGD + EGD/FD steps.

The chase (paper §2, "Query containment and chase proofs") repairs an
instance against a set of dependencies:

* firing a **TGD** on an active trigger adds head facts, instantiating
  existential variables with fresh labeled nulls;
* firing an **FD/EGD** identifies two terms (preferring to keep constants
  and canonical-database nulls); identifying two distinct constants is a
  *hard violation* and the chase **fails** (the premises are
  unsatisfiable, which makes containment hold vacuously).

Two trigger policies are supported:

* ``restricted`` (default): only *active* triggers fire — triggers whose
  head is not yet satisfied.  Reaching a fixpoint yields a universal model
  (complete for containment).
* ``semi_oblivious``: each (dependency, frontier-binding) pair fires at
  most once but fires even when the head is satisfied.  This is the tree
  chase used by the Johnson–Klug depth argument (App E.4) and by the
  paper's oblivious blow-up constructions.

The engine runs in rounds.  A round applies EGDs to fixpoint, then fires
all triggers discovered on the current instance.  ``max_rounds`` /
``max_facts`` bound the run; the outcome reports whether a fixpoint was
reached, the bound was hit, or the chase failed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from ..constraints.egd import EGD
from ..constraints.fd import FunctionalDependency
from ..constraints.tgd import TGD
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.homomorphism import find_homomorphism, homomorphisms
from ..logic.terms import Constant, GroundTerm, NullFactory

Dependency = Union[TGD, EGD, FunctionalDependency]


class ChaseOutcome(enum.Enum):
    """How a chase run ended."""

    FIXPOINT = "fixpoint"          # all dependencies satisfied
    BOUND_REACHED = "bound"        # max_rounds or max_facts hit
    FAILED = "failed"              # EGD tried to merge distinct constants
    EARLY_STOP = "early-stop"      # the caller's stop condition fired


@dataclass(frozen=True)
class TGDStep:
    """Record of one TGD firing (used to extract plans from proofs)."""

    dependency: TGD
    trigger: dict
    produced: tuple[Atom, ...]
    round_index: int


@dataclass(frozen=True)
class MergeStep:
    """Record of one EGD/FD merge."""

    dependency: Union[EGD, FunctionalDependency]
    removed: GroundTerm
    kept: GroundTerm
    round_index: int


ChaseStep = Union[TGDStep, MergeStep]


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: Instance
    outcome: ChaseOutcome
    rounds: int
    steps: list[ChaseStep] = field(default_factory=list)
    #: Composite substitution applied by EGD merges (original -> final).
    substitution: dict[GroundTerm, GroundTerm] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.outcome is ChaseOutcome.FAILED

    @property
    def terminated(self) -> bool:
        return self.outcome in (ChaseOutcome.FIXPOINT, ChaseOutcome.EARLY_STOP)


class _Unsatisfiable(Exception):
    """Raised internally when an EGD merges two distinct constants."""


def _merge_terms(
    instance: Instance,
    left: GroundTerm,
    right: GroundTerm,
    substitution: dict[GroundTerm, GroundTerm],
) -> tuple[GroundTerm, GroundTerm]:
    """Identify two terms in the instance; return (kept, removed)."""
    if left == right:
        return left, right
    if isinstance(left, Constant) and isinstance(right, Constant):
        raise _Unsatisfiable(f"cannot identify constants {left} and {right}")
    if isinstance(right, Constant):
        left, right = right, left
    # `left` is kept; `right` (a null) is replaced everywhere.
    affected = [
        fact
        for fact in list(instance)
        if right in fact.terms
    ]
    for fact in affected:
        instance.discard(fact)
    for fact in affected:
        instance.add(
            Atom(
                fact.relation,
                tuple(left if t == right else t for t in fact.terms),
            )
        )
    # Update the composite substitution.
    for source, target in list(substitution.items()):
        if target == right:
            substitution[source] = left
    substitution[right] = left
    return left, right


def _fd_violation(
    instance: Instance, dependency: FunctionalDependency
) -> Optional[tuple[GroundTerm, GroundTerm]]:
    """Find one violation of the FD, as a pair of terms to merge."""
    determiner = sorted(dependency.determiner)
    witness: dict[tuple, GroundTerm] = {}
    for fact in instance.facts_of(dependency.relation):
        key = tuple(fact.terms[i] for i in determiner)
        value = fact.terms[dependency.determined]
        previous = witness.setdefault(key, value)
        if previous != value:
            return previous, value
    return None


def _egd_violation(
    instance: Instance, dependency: EGD
) -> Optional[tuple[GroundTerm, GroundTerm]]:
    for assignment in homomorphisms(dependency.body, instance):
        left = assignment[dependency.left]
        right = assignment[dependency.right]
        if left != right:
            return left, right
    return None


def _apply_equalities(
    instance: Instance,
    egds: Sequence[Union[EGD, FunctionalDependency]],
    substitution: dict[GroundTerm, GroundTerm],
    steps: Optional[list[ChaseStep]],
    round_index: int,
) -> None:
    """Apply FD/EGD merges to fixpoint (raises on constant clashes)."""
    changed = True
    while changed:
        changed = False
        for dependency in egds:
            while True:
                if isinstance(dependency, FunctionalDependency):
                    violation = _fd_violation(instance, dependency)
                else:
                    violation = _egd_violation(instance, dependency)
                if violation is None:
                    break
                kept, removed = _merge_terms(
                    instance, violation[0], violation[1], substitution
                )
                if steps is not None:
                    steps.append(
                        MergeStep(dependency, removed, kept, round_index)
                    )
                changed = True


def _frontier_key(
    dependency_index: int, dependency: TGD, trigger: dict
) -> tuple:
    """Key identifying a semi-oblivious firing: rule + frontier binding."""
    frontier = dependency.exported_variables()
    return (
        dependency_index,
        tuple(trigger[v] for v in frontier if v in trigger),
    )


def chase(
    start: Instance,
    dependencies: Iterable[Dependency],
    *,
    max_rounds: Optional[int] = None,
    max_facts: Optional[int] = None,
    policy: str = "restricted",
    record_steps: bool = False,
    null_factory: Optional[NullFactory] = None,
    stop_when: Optional[Callable[[Instance], bool]] = None,
) -> ChaseResult:
    """Chase `start` with the dependencies.

    The input instance is not modified.  See the module docstring for the
    policies and outcome semantics.  ``stop_when`` is checked after every
    round (and once before the first round) and short-circuits the run —
    used by the containment solver to stop as soon as the target query
    matches.
    """
    if policy not in ("restricted", "semi_oblivious"):
        raise ValueError(f"unknown chase policy: {policy}")
    instance = start.copy()
    tgds = [d for d in dependencies if isinstance(d, TGD)]
    equality_deps = [
        d
        for d in dependencies
        if isinstance(d, (EGD, FunctionalDependency))
    ]
    factory = null_factory or NullFactory(prefix="c")
    steps: Optional[list[ChaseStep]] = [] if record_steps else None
    substitution: dict[GroundTerm, GroundTerm] = {}
    fired: set[tuple] = set()
    rounds = 0

    def result(outcome: ChaseOutcome) -> ChaseResult:
        return ChaseResult(
            instance, outcome, rounds, steps or [], substitution
        )

    try:
        _apply_equalities(instance, equality_deps, substitution, steps, 0)
    except _Unsatisfiable:
        return result(ChaseOutcome.FAILED)
    if stop_when is not None and stop_when(instance):
        return result(ChaseOutcome.EARLY_STOP)

    while True:
        if max_rounds is not None and rounds >= max_rounds:
            return result(ChaseOutcome.BOUND_REACHED)
        rounds += 1
        new_facts: list[tuple[TGD, dict, tuple[Atom, ...]]] = []
        # Collect triggers against the instance as of the round start.
        for index, dependency in enumerate(tgds):
            for trigger in list(dependency.triggers(instance)):
                if policy == "semi_oblivious":
                    key = _frontier_key(index, dependency, trigger)
                    if key in fired:
                        continue
                    fired.add(key)
                elif not dependency.is_active_trigger(trigger, instance):
                    continue
                head_map = dict(trigger)
                for existential in dependency.existential_variables():
                    head_map[existential] = factory.fresh(existential.name)
                produced = tuple(
                    a.substitute(head_map) for a in dependency.head
                )
                new_facts.append((dependency, dict(trigger), produced))

        added_any = False
        for dependency, trigger, produced in new_facts:
            if policy == "restricted":
                # Re-check activeness: an earlier firing in this round may
                # already satisfy this trigger.
                exported = {
                    v: trigger[v]
                    for v in dependency.exported_variables()
                    if v in trigger
                }
                if find_homomorphism(
                    dependency.head, instance, seed=exported
                ) is not None:
                    continue
            new_here = [f for f in produced if instance.add(f)]
            if new_here:
                added_any = True
                if steps is not None:
                    steps.append(
                        TGDStep(dependency, trigger, tuple(new_here), rounds)
                    )
            if max_facts is not None and len(instance) > max_facts:
                return result(ChaseOutcome.BOUND_REACHED)

        try:
            _apply_equalities(
                instance, equality_deps, substitution, steps, rounds
            )
        except _Unsatisfiable:
            return result(ChaseOutcome.FAILED)

        if stop_when is not None and stop_when(instance):
            return result(ChaseOutcome.EARLY_STOP)
        if not added_any:
            return result(ChaseOutcome.FIXPOINT)


def satisfies(instance: Instance, dependencies: Iterable[Dependency]) -> bool:
    """True iff the instance satisfies all the dependencies."""
    return all(dep.satisfied_by(instance) for dep in dependencies)
