"""The chase: restricted and semi-oblivious variants, TGD + EGD/FD steps.

The chase (paper §2, "Query containment and chase proofs") repairs an
instance against a set of dependencies:

* firing a **TGD** on an active trigger adds head facts, instantiating
  existential variables with fresh labeled nulls;
* firing an **FD/EGD** identifies two terms (preferring to keep constants
  and canonical-database nulls); identifying two distinct constants is a
  *hard violation* and the chase **fails** (the premises are
  unsatisfiable, which makes containment hold vacuously).

Two trigger policies are supported:

* ``restricted`` (default): only *active* triggers fire — triggers whose
  head is not yet satisfied.  Reaching a fixpoint yields a universal model
  (complete for containment).
* ``semi_oblivious``: each (dependency, frontier-binding) pair fires at
  most once but fires even when the head is satisfied.  This is the tree
  chase used by the Johnson–Klug depth argument (App E.4) and by the
  paper's oblivious blow-up constructions.

Two engines implement those semantics:

* ``delta`` (default): a semi-naive engine.  Each round only considers
  triggers whose body image touches the *delta* — facts added or
  rewritten since the previous round — seeding the homomorphism search
  per body atom from the new fact via a relation→(rule, atom) map built
  once per run.  Equalities are resolved incrementally: a per-FD
  ``(determiner-key → values)`` witness table pulls the next violation in
  O(1), the ``facts_containing`` occurrence index confines a merge to the
  facts actually mentioning the removed term, and merges are tracked in a
  union-find rather than by rewriting the substitution dict.

Both engines search through a `repro.matching` matcher (the ``matcher``
argument; the process default when omitted): join orders and per-atom
instructions are compiled once per (body, seed-shape) and reused across
rounds, activeness/head-satisfaction checks are served as ground probes
or from the generation-invalidated check cache, and — under the
semi-oblivious policy — the delta engine enumerates triggers through
`distinct_matches`, so frontier bindings that already fired prune the
body search instead of being filtered after a full homomorphism was
built.
* ``naive``: the reference engine.  Every round re-enumerates all
  triggers over the whole instance and rescans relations for FD/EGD
  violations.  It is kept as the executable specification the delta
  engine is cross-checked against (``tests/chase/test_delta_equivalence``).

Both engines run in rounds with identical observable semantics: a round
applies EGDs to fixpoint, then fires all triggers discovered on the
current instance.  ``max_rounds`` / ``max_facts`` bound the run; the
outcome reports whether a fixpoint was reached, the bound was hit, or the
chase failed.
"""

from __future__ import annotations

import enum
import re
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from ..constraints.egd import EGD
from ..constraints.fd import FDWitnessIndex, FunctionalDependency
from ..constraints.tgd import TGD
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.terms import Constant, GroundTerm, Null, NullFactory, Term, Variable
from ..matching.matcher import default_matcher
from ..runtime import Budget

Dependency = Union[TGD, EGD, FunctionalDependency]


class ChaseOutcome(enum.Enum):
    """How a chase run ended."""

    FIXPOINT = "fixpoint"          # all dependencies satisfied
    BOUND_REACHED = "bound"        # max_rounds or max_facts hit
    FAILED = "failed"              # EGD tried to merge distinct constants
    EARLY_STOP = "early-stop"      # the caller's stop condition fired


@dataclass(frozen=True)
class TGDStep:
    """Record of one TGD firing (used to extract plans from proofs)."""

    dependency: TGD
    trigger: dict
    produced: tuple[Atom, ...]
    round_index: int


@dataclass(frozen=True)
class MergeStep:
    """Record of one EGD/FD merge."""

    dependency: Union[EGD, FunctionalDependency]
    removed: GroundTerm
    kept: GroundTerm
    round_index: int


ChaseStep = Union[TGDStep, MergeStep]


@dataclass
class ChaseStats:
    """Work counters for one chase run (engine comparison / benchmarks)."""

    #: Body homomorphisms yielded while enumerating TGD triggers.
    triggers_enumerated: int = 0
    #: Head-satisfaction searches (activeness checks + firing re-checks).
    head_checks: int = 0
    #: Body homomorphisms examined while looking for EGD violations.
    egd_checks: int = 0
    #: EGD/FD merges performed.
    merges: int = 0

    @property
    def searches(self) -> int:
        """Total trigger-homomorphism searches performed."""
        return self.triggers_enumerated + self.head_checks + self.egd_checks


@dataclass
class ChaseResult:
    """Outcome of a chase run."""

    instance: Instance
    outcome: ChaseOutcome
    rounds: int
    steps: list[ChaseStep] = field(default_factory=list)
    #: Composite substitution applied by EGD merges (original -> final).
    substitution: dict[GroundTerm, GroundTerm] = field(default_factory=dict)
    stats: ChaseStats = field(default_factory=ChaseStats)

    @property
    def failed(self) -> bool:
        return self.outcome is ChaseOutcome.FAILED

    @property
    def terminated(self) -> bool:
        return self.outcome in (ChaseOutcome.FIXPOINT, ChaseOutcome.EARLY_STOP)


class _Unsatisfiable(Exception):
    """Raised internally when an EGD merges two distinct constants."""


# ----------------------------------------------------------------------
# Term identification: deterministic kept-term choice + union-find
# ----------------------------------------------------------------------

_LABEL_NUMBER = re.compile(r"(\D*?)(\d+)(.*)\Z", re.DOTALL)


def _null_age_key(null: Null) -> tuple:
    """Total order on nulls approximating creation order.

    Factory labels are ``{prefix}{index}`` or ``{prefix}{index}:{hint}``;
    parsing the index numerically makes ``c2`` older than ``c10``.  The
    order is a pure function of the label, so merge results are
    reproducible across hash-seed randomization.
    """
    match = _LABEL_NUMBER.match(null.label)
    if match:
        prefix, number, rest = match.groups()
        return (0, prefix, int(number), rest, null.label)
    return (1, null.label)


def _choose_kept(
    left: GroundTerm, right: GroundTerm
) -> tuple[GroundTerm, GroundTerm]:
    """Pick (kept, removed) for a merge: constants win, then older nulls."""
    if isinstance(left, Constant):
        if isinstance(right, Constant):
            raise _Unsatisfiable(
                f"cannot identify constants {left} and {right}"
            )
        return left, right
    if isinstance(right, Constant):
        return right, left
    if _null_age_key(left) <= _null_age_key(right):
        return left, right
    return right, left


class _UnionFind:
    """Union-find over merged terms; resolves each original to its root."""

    __slots__ = ("_parent",)

    def __init__(self) -> None:
        self._parent: dict[GroundTerm, GroundTerm] = {}

    def record(self, removed: GroundTerm, kept: GroundTerm) -> None:
        self._parent[removed] = kept

    def find(self, term: GroundTerm) -> GroundTerm:
        parent = self._parent
        root = term
        while root in parent:
            root = parent[root]
        while term != root:
            next_term = parent[term]
            parent[term] = root
            term = next_term
        return root

    def resolved(self) -> dict[GroundTerm, GroundTerm]:
        """The composite substitution: every merged term -> its root."""
        return {term: self.find(term) for term in list(self._parent)}


def _merge_terms(
    instance: Instance,
    left: GroundTerm,
    right: GroundTerm,
    substitution: dict[GroundTerm, GroundTerm],
) -> tuple[GroundTerm, GroundTerm]:
    """Identify two terms in the instance; return (kept, removed).

    This is the naive-engine variant: it rewrites the running
    substitution dict in place.  The kept term is chosen by
    `_choose_kept`, and only facts actually containing the removed term
    (per the occurrence index) are rewritten.
    """
    if left == right:
        return left, right
    kept, removed = _choose_kept(left, right)
    affected = list(instance.facts_containing(removed))
    for fact in affected:
        instance.discard(fact)
    for fact in affected:
        instance.add(
            Atom(
                fact.relation,
                tuple(kept if t == removed else t for t in fact.terms),
            )
        )
    # Update the composite substitution.
    for source, target in list(substitution.items()):
        if target == removed:
            substitution[source] = kept
    substitution[removed] = kept
    return kept, removed


def _fd_violation(
    instance: Instance, dependency: FunctionalDependency
) -> Optional[tuple[GroundTerm, GroundTerm]]:
    """Find one violation of the FD, as a pair of terms to merge."""
    witness: dict[tuple, GroundTerm] = {}
    for fact in instance.facts_of(dependency.relation):
        key, value = dependency.project(fact)
        previous = witness.setdefault(key, value)
        if previous != value:
            return previous, value
    return None


def _egd_violation(
    instance: Instance, dependency: EGD, stats: ChaseStats, matcher
) -> Optional[tuple[GroundTerm, GroundTerm]]:
    for assignment in matcher.homomorphisms(dependency.body, instance):
        stats.egd_checks += 1
        left = assignment[dependency.left]
        right = assignment[dependency.right]
        if left != right:
            return left, right
    return None


def _apply_equalities(
    instance: Instance,
    egds: Sequence[Union[EGD, FunctionalDependency]],
    substitution: dict[GroundTerm, GroundTerm],
    steps: Optional[list[ChaseStep]],
    round_index: int,
    stats: ChaseStats,
    matcher,
) -> None:
    """Apply FD/EGD merges to fixpoint (raises on constant clashes)."""
    changed = True
    while changed:
        changed = False
        for dependency in egds:
            while True:
                if isinstance(dependency, FunctionalDependency):
                    violation = _fd_violation(instance, dependency)
                else:
                    violation = _egd_violation(
                        instance, dependency, stats, matcher
                    )
                if violation is None:
                    break
                kept, removed = _merge_terms(
                    instance, violation[0], violation[1], substitution
                )
                stats.merges += 1
                if steps is not None:
                    steps.append(
                        MergeStep(dependency, removed, kept, round_index)
                    )
                changed = True


def _frontier_key(
    dependency_index: int, dependency: TGD, trigger: dict
) -> tuple:
    """Key identifying a semi-oblivious firing: rule + frontier binding."""
    frontier = dependency.exported_variables()
    return (
        dependency_index,
        tuple(trigger[v] for v in frontier if v in trigger),
    )


def _instantiate_head(
    dependency: TGD, trigger: dict, factory: NullFactory
) -> tuple[Atom, ...]:
    """The facts a firing produces: the trigger's exported bindings plus
    a fresh null per existential head variable.  Shared by both engines
    so their null-naming cannot drift apart."""
    head_map = dict(trigger)
    for existential in dependency.existential_variables():
        head_map[existential] = factory.fresh(existential.name)
    return tuple(a.substitute(head_map) for a in dependency.head)


def _seed_from_fact(atom: Atom, fact: Atom) -> Optional[dict[Term, GroundTerm]]:
    """Partial assignment forcing `atom` onto `fact`, or None on clash.

    Constants (and rigid nulls) in the body atom must match the fact
    literally; repeated variables must see equal terms.
    """
    if len(atom.terms) != len(fact.terms):
        return None
    seed: dict[Term, GroundTerm] = {}
    for term, value in zip(atom.terms, fact.terms):
        if isinstance(term, Variable):
            bound = seed.get(term)
            if bound is None:
                seed[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return seed


# ----------------------------------------------------------------------
# Delta (semi-naive) engine
# ----------------------------------------------------------------------


class _DeltaState:
    """Mutable state of a delta chase run.

    All instance mutations flow through `_add` / `_discard` so the FD
    witness tables and the two delta queues (equality worklist, next
    round's trigger delta) stay in sync with the fact set.
    """

    __slots__ = (
        "instance", "uf", "egds", "fd_indexes", "equality_delta",
        "trigger_delta", "stats", "steps", "matcher",
    )

    def __init__(
        self,
        start: Instance,
        equality_deps: Sequence[Union[EGD, FunctionalDependency]],
        steps: Optional[list[ChaseStep]],
        stats: ChaseStats,
        matcher,
    ) -> None:
        self.matcher = matcher
        self.instance = Instance()
        self.uf = _UnionFind()
        self.egds = [d for d in equality_deps if isinstance(d, EGD)]
        self.fd_indexes = [
            FDWitnessIndex(d)
            for d in equality_deps
            if isinstance(d, FunctionalDependency)
        ]
        self.equality_delta: deque[Atom] = deque()
        self.trigger_delta: list[Atom] = []
        self.stats = stats
        self.steps = steps
        for fact in start:
            self._add(fact)

    # -- mutation ------------------------------------------------------
    def _add(self, fact: Atom) -> bool:
        if not self.instance.add(fact):
            return False
        for index in self.fd_indexes:
            index.on_add(fact)
        if self.egds:
            self.equality_delta.append(fact)
        self.trigger_delta.append(fact)
        return True

    def _discard(self, fact: Atom) -> None:
        if self.instance.discard(fact):
            for index in self.fd_indexes:
                index.on_remove(fact)

    def _merge(
        self,
        left: GroundTerm,
        right: GroundTerm,
        dependency: Union[EGD, FunctionalDependency],
        round_index: int,
    ) -> None:
        """Identify two terms using the occurrence index."""
        if left == right:
            return
        kept, removed = _choose_kept(left, right)
        affected = list(self.instance.facts_containing(removed))
        for fact in affected:
            self._discard(fact)
        for fact in affected:
            self._add(
                Atom(
                    fact.relation,
                    tuple(kept if t == removed else t for t in fact.terms),
                )
            )
        self.uf.record(removed, kept)
        self.stats.merges += 1
        if self.steps is not None:
            self.steps.append(MergeStep(dependency, removed, kept, round_index))

    # -- equality fixpoint ---------------------------------------------
    def _drain_fd_violations(self, round_index: int) -> None:
        """Merge until every FD witness table is clean."""
        progress = True
        while progress:
            progress = False
            for index in self.fd_indexes:
                violation = index.next_violation()
                if violation is not None:
                    self._merge(
                        violation[0], violation[1], index.fd, round_index
                    )
                    progress = True

    def _next_equality_fact(self) -> Optional[Atom]:
        while self.equality_delta:
            fact = self.equality_delta.popleft()
            if fact in self.instance:
                return fact
        return None

    def _process_egd_fact(self, fact: Atom, round_index: int) -> None:
        """Resolve every EGD violation whose body image touches `fact`."""
        for egd in self.egds:
            for atom_index in egd.body_atoms_of_relation(fact.relation):
                while fact in self.instance:
                    seed = _seed_from_fact(egd.body[atom_index], fact)
                    if seed is None:
                        break
                    violation = None
                    for h in self.matcher.homomorphisms(
                        egd.body, self.instance, seed=seed
                    ):
                        self.stats.egd_checks += 1
                        if h[egd.left] != h[egd.right]:
                            violation = (h[egd.left], h[egd.right])
                            break
                    if violation is None:
                        break
                    self._merge(violation[0], violation[1], egd, round_index)
                if fact not in self.instance:
                    # The fact itself was rewritten; its replacement is
                    # queued on the equality delta and restarts the scan.
                    return

    def apply_equalities(self, round_index: int) -> None:
        """Apply FD/EGD merges to fixpoint, driven by the delta worklist."""
        while True:
            self._drain_fd_violations(round_index)
            if not self.egds:
                return
            fact = self._next_equality_fact()
            if fact is None:
                return
            self._process_egd_fact(fact, round_index)

    # -- trigger collection --------------------------------------------
    def take_trigger_delta(self) -> list[Atom]:
        delta = self.trigger_delta
        self.trigger_delta = []
        return delta


def _chase_delta(
    start: Instance,
    tgds: Sequence[TGD],
    equality_deps: Sequence[Union[EGD, FunctionalDependency]],
    *,
    max_rounds: Optional[int],
    max_facts: Optional[int],
    policy: str,
    record_steps: bool,
    factory: NullFactory,
    stop_when: Optional[Callable[[Instance], bool]],
    matcher,
    budget: Optional[Budget] = None,
) -> ChaseResult:
    """Semi-naive chase: only delta-touching triggers are enumerated."""
    stats = ChaseStats()
    steps: Optional[list[ChaseStep]] = [] if record_steps else None
    state = _DeltaState(start, equality_deps, steps, stats, matcher)
    # Static relation → (rule index, body atom index) dependency map.
    body_map: dict[str, list[tuple[int, int]]] = {}
    for index, dependency in enumerate(tgds):
        for atom_index, atom in enumerate(dependency.body):
            body_map.setdefault(atom.relation, []).append((index, atom_index))
    # Semi-oblivious firing registry: per rule, the frontier bindings
    # already fired.  The matcher consults it *during* enumeration, so
    # duplicate frontier keys prune the body search instead of being
    # filtered after a full homomorphism was built.
    fired: dict[int, set[tuple]] = {
        index: set() for index in range(len(tgds))
    }
    rounds = 0

    def result(outcome: ChaseOutcome) -> ChaseResult:
        return ChaseResult(
            state.instance, outcome, rounds, steps or [],
            state.uf.resolved(), stats,
        )

    try:
        state.apply_equalities(0)
    except _Unsatisfiable:
        return result(ChaseOutcome.FAILED)
    if stop_when is not None and stop_when(state.instance):
        return result(ChaseOutcome.EARLY_STOP)

    while True:
        # Cooperative cancellation: the round boundary is the chase's
        # coarse check; matcher calls below carry the budget for the
        # fine-grained (per backtrack batch) checks inside a round.
        if budget is not None:
            budget.check()
        if max_rounds is not None and rounds >= max_rounds:
            return result(ChaseOutcome.BOUND_REACHED)
        rounds += 1
        # Collect triggers whose body image touches the delta; dedupe on
        # the full body binding (a trigger can be reachable from several
        # of its delta facts).
        delta = state.take_trigger_delta()
        pending: list[tuple[int, TGD, dict, dict, tuple[Atom, ...]]] = []
        seen: set[tuple] = set()
        instance = state.instance
        for fact in delta:
            if fact not in instance:
                continue  # rewritten away by a later merge
            for rule_index, atom_index in body_map.get(fact.relation, ()):
                dependency = tgds[rule_index]
                seed = _seed_from_fact(dependency.body[atom_index], fact)
                if seed is None:
                    continue
                if policy == "semi_oblivious":
                    # Frontier fast path: enumerate one trigger per
                    # *unfired* frontier binding, pruning the rest of
                    # the body search for bindings already fired.
                    triggers = matcher.distinct_matches(
                        dependency.body,
                        instance,
                        on=dependency.exported_variables(),
                        seed=seed,
                        skip=fired[rule_index],
                        budget=budget,
                    )
                    for trigger in triggers:
                        stats.triggers_enumerated += 1
                        produced = _instantiate_head(
                            dependency, trigger, factory
                        )
                        pending.append(
                            (rule_index, dependency, trigger, {}, produced)
                        )
                    continue
                body_vars = dependency.body_variables()
                for trigger in matcher.homomorphisms(
                    dependency.body, instance, seed=seed, budget=budget
                ):
                    stats.triggers_enumerated += 1
                    key = (
                        rule_index,
                        tuple(trigger[v] for v in body_vars),
                    )
                    if key in seen:
                        continue
                    seen.add(key)
                    exported = {
                        v: trigger[v]
                        for v in dependency.exported_variables()
                        if v in trigger
                    }
                    stats.head_checks += 1
                    if matcher.has(
                        dependency.head, instance, seed=exported
                    ):
                        continue  # head satisfied: trigger not active
                    produced = _instantiate_head(
                        dependency, trigger, factory
                    )
                    pending.append(
                        (rule_index, dependency, trigger, exported, produced)
                    )

        # Fire in rule order (the naive engine's order): under the
        # restricted policy the firing-time re-check makes the round's
        # outcome depend on firing order, so matching the reference
        # order keeps the engines' results identical up to null renaming.
        pending.sort(key=lambda entry: entry[0])
        added_any = False
        for __, dependency, trigger, exported, produced in pending:
            if policy == "restricted":
                # Re-check activeness: an earlier firing in this round may
                # already satisfy this trigger.  A check-cache hit here
                # means no relation of the head changed since the
                # enumeration-time check, so nothing is re-searched.
                stats.head_checks += 1
                if matcher.has(
                    dependency.head, instance, seed=exported
                ):
                    continue
            new_here = [f for f in produced if state._add(f)]
            if new_here:
                added_any = True
                if steps is not None:
                    steps.append(
                        TGDStep(dependency, trigger, tuple(new_here), rounds)
                    )
            if max_facts is not None and len(instance) > max_facts:
                return result(ChaseOutcome.BOUND_REACHED)

        try:
            state.apply_equalities(rounds)
        except _Unsatisfiable:
            return result(ChaseOutcome.FAILED)

        if stop_when is not None and stop_when(state.instance):
            return result(ChaseOutcome.EARLY_STOP)
        if not added_any:
            return result(ChaseOutcome.FIXPOINT)


# ----------------------------------------------------------------------
# Naive (reference) engine
# ----------------------------------------------------------------------


def _chase_naive(
    start: Instance,
    tgds: Sequence[TGD],
    equality_deps: Sequence[Union[EGD, FunctionalDependency]],
    *,
    max_rounds: Optional[int],
    max_facts: Optional[int],
    policy: str,
    record_steps: bool,
    factory: NullFactory,
    stop_when: Optional[Callable[[Instance], bool]],
    matcher,
    budget: Optional[Budget] = None,
) -> ChaseResult:
    """Round-based reference chase: full re-enumeration every round."""
    stats = ChaseStats()
    instance = start.copy()
    steps: Optional[list[ChaseStep]] = [] if record_steps else None
    substitution: dict[GroundTerm, GroundTerm] = {}
    fired: set[tuple] = set()
    rounds = 0

    def result(outcome: ChaseOutcome) -> ChaseResult:
        return ChaseResult(
            instance, outcome, rounds, steps or [], substitution, stats
        )

    try:
        _apply_equalities(
            instance, equality_deps, substitution, steps, 0, stats, matcher
        )
    except _Unsatisfiable:
        return result(ChaseOutcome.FAILED)
    if stop_when is not None and stop_when(instance):
        return result(ChaseOutcome.EARLY_STOP)

    while True:
        if budget is not None:
            budget.check()
        if max_rounds is not None and rounds >= max_rounds:
            return result(ChaseOutcome.BOUND_REACHED)
        rounds += 1
        new_facts: list[tuple[TGD, dict, tuple[Atom, ...]]] = []
        # Collect triggers against the instance as of the round start.
        for index, dependency in enumerate(tgds):
            for trigger in list(
                matcher.homomorphisms(
                    dependency.body, instance, budget=budget
                )
            ):
                stats.triggers_enumerated += 1
                if policy == "semi_oblivious":
                    key = _frontier_key(index, dependency, trigger)
                    if key in fired:
                        continue
                    fired.add(key)
                else:
                    stats.head_checks += 1
                    if not dependency.is_active_trigger(
                        trigger, instance, matcher
                    ):
                        continue
                produced = _instantiate_head(dependency, trigger, factory)
                new_facts.append((dependency, dict(trigger), produced))

        added_any = False
        for dependency, trigger, produced in new_facts:
            if policy == "restricted":
                # Re-check activeness: an earlier firing in this round may
                # already satisfy this trigger.
                exported = {
                    v: trigger[v]
                    for v in dependency.exported_variables()
                    if v in trigger
                }
                stats.head_checks += 1
                if matcher.has(dependency.head, instance, seed=exported):
                    continue
            new_here = [f for f in produced if instance.add(f)]
            if new_here:
                added_any = True
                if steps is not None:
                    steps.append(
                        TGDStep(dependency, trigger, tuple(new_here), rounds)
                    )
            if max_facts is not None and len(instance) > max_facts:
                return result(ChaseOutcome.BOUND_REACHED)

        try:
            _apply_equalities(
                instance, equality_deps, substitution, steps, rounds,
                stats, matcher,
            )
        except _Unsatisfiable:
            return result(ChaseOutcome.FAILED)

        if stop_when is not None and stop_when(instance):
            return result(ChaseOutcome.EARLY_STOP)
        if not added_any:
            return result(ChaseOutcome.FIXPOINT)


def chase(
    start: Instance,
    dependencies: Iterable[Dependency],
    *,
    max_rounds: Optional[int] = None,
    max_facts: Optional[int] = None,
    policy: str = "restricted",
    record_steps: bool = False,
    null_factory: Optional[NullFactory] = None,
    stop_when: Optional[Callable[[Instance], bool]] = None,
    engine: str = "delta",
    matcher=None,
    budget: Optional[Budget] = None,
) -> ChaseResult:
    """Chase `start` with the dependencies.

    The input instance is not modified.  See the module docstring for the
    policies and outcome semantics.  ``stop_when`` is checked after every
    round (and once before the first round) and short-circuits the run —
    used by the containment solver to stop as soon as the target query
    matches.

    ``engine`` selects the implementation:

    * ``"delta"`` (default) — the semi-naive engine: per-round delta fact
      sets, trigger search seeded from new facts only, indexed equality
      merging, union-find substitution tracking.  This is the fast path.
    * ``"naive"`` — the reference engine that re-enumerates all triggers
      over the whole instance every round.  Same observable semantics
      (outcomes, final instance up to null renaming); kept for
      cross-checking and as an executable specification.

    ``matcher`` supplies the homomorphism engine — any object with the
    `repro.matching.Matcher` interface.  ``None`` (default) uses the
    process-wide planned matcher; callers holding a
    `repro.service.CompiledSchema` should pass its per-fingerprint
    matcher so compiled plans and check caches are shared across runs,
    and the cross-check/benchmark suites pass
    `repro.matching.NaiveMatcher` to run the same engine on the
    uncompiled reference search.

    ``budget`` makes the run cooperatively cancellable: it is checked
    at every round boundary (alongside ``max_rounds``/``max_facts``)
    and threaded into the matcher's trigger searches, so an exhausted
    deadline raises `repro.runtime.DeadlineExceeded` out of the chase
    within one backtrack batch.
    """
    if policy not in ("restricted", "semi_oblivious"):
        raise ValueError(f"unknown chase policy: {policy}")
    if engine not in ("delta", "naive"):
        raise ValueError(f"unknown chase engine: {engine}")
    tgds = [d for d in dependencies if isinstance(d, TGD)]
    equality_deps = [
        d
        for d in dependencies
        if isinstance(d, (EGD, FunctionalDependency))
    ]
    factory = null_factory or NullFactory(prefix="c")
    runner = _chase_delta if engine == "delta" else _chase_naive
    return runner(
        start,
        tgds,
        equality_deps,
        max_rounds=max_rounds,
        max_facts=max_facts,
        policy=policy,
        record_steps=record_steps,
        factory=factory,
        stop_when=stop_when,
        matcher=matcher if matcher is not None else default_matcher(),
        budget=budget,
    )


def satisfies(instance: Instance, dependencies: Iterable[Dependency]) -> bool:
    """True iff the instance satisfies all the dependencies."""
    return all(dep.satisfied_by(instance) for dep in dependencies)
