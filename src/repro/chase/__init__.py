"""The chase engine."""

from .engine import (
    ChaseOutcome,
    ChaseResult,
    ChaseStats,
    ChaseStep,
    MergeStep,
    TGDStep,
    chase,
    satisfies,
)

__all__ = [
    "ChaseOutcome", "ChaseResult", "ChaseStats", "ChaseStep", "MergeStep",
    "TGDStep", "chase", "satisfies",
]
