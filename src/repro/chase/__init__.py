"""The chase engine."""

from .engine import (
    ChaseOutcome,
    ChaseResult,
    ChaseStep,
    MergeStep,
    TGDStep,
    chase,
    satisfies,
)

__all__ = [
    "ChaseOutcome", "ChaseResult", "ChaseStep", "MergeStep", "TGDStep",
    "chase", "satisfies",
]
