"""The planned, memoizing homomorphism matcher.

`Matcher` is the execution engine over `repro.matching.plan`:

* **plan cache** — compiled `MatchPlan`s memoized per
  (atoms, rigidity, seed-shape) key in a bounded LRU, so the join order
  and instruction tuples are derived once per shape ever;
* **check cache** — boolean `has` results cached on the instance's
  ``match_cache`` and invalidated by its per-relation generation
  counters: an entry stays valid exactly while no fact of any relation
  the plan touches was added or removed.  Both positive and negative
  results are cached (the restricted chase's activeness re-checks are
  the canonical consumer);
* **ground probes** — plans whose every atom is ground under the seed
  shape skip both search and cache and test fact membership directly;
* **distinct enumeration** — `distinct_matches` yields one full match
  per distinct projection on a given term tuple, pruning the subtree as
  soon as a projection is complete and already seen.  This is the
  semi-oblivious chase's frontier fast path: duplicate frontier keys
  are rejected *before* the remaining body atoms are enumerated.

The module also hosts the two query-shape predicates the rewriting
engine needs — exact isomorphism (an injective, variable-to-variable
planned search against the frozen right-hand side) and homomorphic
subsumption — so every decision procedure in the library bottoms out in
the same compiled search.

A `Matcher` is thread-safe for concurrent use on distinct instances
(the plan cache takes a lock; check-cache state lives on the instance
being searched).  `repro.service.CompiledSchema` owns one matcher per
schema fingerprint; free functions share the process-wide
`default_matcher()`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.terms import GroundTerm, Null, Term, Variable, fresh_null
from ..runtime import Budget
from .intexec import (
    int_distinct_search,
    int_find,
    int_ground_probe,
    int_has,
    int_search,
)
from .plan import MatchPlan, plan_key

Assignment = dict[Term, GroundTerm]

#: Default bound on memoized plans (LRU eviction past this).
DEFAULT_PLAN_CACHE_SIZE = 4096
#: Per-instance check-cache entries before a wholesale clear.
DEFAULT_CHECK_CACHE_LIMIT = 65536
#: Replan-on-drift: a memoized plan is recompiled when some relation it
#: touches has grown or shrunk past this factor relative to the
#: cardinality snapshot its join order was chosen under.  The damping
#: keeps tiny instances from thrashing (0 → 31 facts is not drift;
#: 100 → 10000 is).
DRIFT_FACTOR = 8
DRIFT_DAMPING = 4
#: Plan-cache hits between two drift checks of the same plan (the very
#: first reuse is always checked; see `MatchPlan.drift_countdown`).
DRIFT_CHECK_STRIDE = 16
#: Stop replanning a key after this many recompiles: a key probed
#: against many differently-sized instances (the rewriting engine's
#: subsumption sweeps) would otherwise recompile on every alternation.
MAX_REPLANS_PER_KEY = 16
#: Frozen right-hand sides memoized for isomorphism checks (the
#: rewriting dedup compares each candidate against every kept state of
#: its shape bucket, so the same right side recurs across comparisons).
FROZEN_ISO_CACHE_SIZE = 1024


# ----------------------------------------------------------------------
# Plan executors (module-level: shared by every Matcher)
# ----------------------------------------------------------------------
def _probe(entry, instance: Instance, assignment: Mapping) -> bool:
    """Membership test for an atom ground under the plan."""
    terms = tuple(
        term if rigid else assignment[term]
        for rigid, term in entry.probe_template
    )
    return Atom(entry.relation, terms) in instance


def _candidates(entry, instance: Instance, assignment: Mapping) -> Iterable[Atom]:
    """Most selective index bucket for the atom's known positions."""
    best = None
    best_size = -1
    for position, term in entry.rigid:
        facts = instance.facts_with(entry.relation, position, term)
        size = len(facts)
        if size <= 1:
            return facts
        if best is None or size < best_size:
            best = facts
            best_size = size
    for position, term in entry.bound_checks:
        facts = instance.facts_with(
            entry.relation, position, assignment[term]
        )
        size = len(facts)
        if size <= 1:
            return facts
        if best is None or size < best_size:
            best = facts
            best_size = size
    if best is not None:
        return best
    return instance.facts_of(entry.relation)


def _extend(entry, fact: Atom, assignment: Assignment):
    """Bind the atom onto the fact; return newly bound terms or None."""
    terms = fact.terms
    if len(terms) != entry.arity:
        return None
    for position, term in entry.rigid:
        if terms[position] != term:
            return None
    for position, term in entry.bound_checks:
        if assignment[term] != terms[position]:
            return None
    newly: list[Term] = []
    for position, term in entry.binds:
        value = terms[position]
        current = assignment.get(term)
        if current is None:
            assignment[term] = value
            newly.append(term)
        elif current != value:
            for t in newly:
                del assignment[t]
            return None
    return newly


def _search(
    plan: MatchPlan,
    instance: Instance,
    assignment: Assignment,
    depth: int,
    budget: Optional[Budget] = None,
) -> Iterator[Assignment]:
    """Enumerate all extensions of `assignment` from `depth` on.

    ``budget`` (when given) is ticked once per candidate fact tried —
    the per-backtrack-batch cancellation point of plan execution.
    """
    compiled = plan.compiled
    if depth == len(compiled):
        yield dict(assignment)
        return
    entry = compiled[depth]
    if entry.probe_template is not None:
        if _probe(entry, instance, assignment):
            yield from _search(plan, instance, assignment, depth + 1, budget)
        return
    for fact in _candidates(entry, instance, assignment):
        if budget is not None:
            budget.tick()
        newly = _extend(entry, fact, assignment)
        if newly is None:
            continue
        yield from _search(plan, instance, assignment, depth + 1, budget)
        for term in newly:
            del assignment[term]


def _find_one(
    plan: MatchPlan,
    instance: Instance,
    assignment: Assignment,
    depth: int,
    trail: list[Term],
    budget: Optional[Budget] = None,
) -> bool:
    """Find one completion; on success the bindings stay in `assignment`
    (their terms appended to `trail`), on failure everything unwinds."""
    compiled = plan.compiled
    if depth == len(compiled):
        return True
    entry = compiled[depth]
    if entry.probe_template is not None:
        return _probe(entry, instance, assignment) and _find_one(
            plan, instance, assignment, depth + 1, trail, budget
        )
    for fact in _candidates(entry, instance, assignment):
        if budget is not None:
            budget.tick()
        newly = _extend(entry, fact, assignment)
        if newly is None:
            continue
        if _find_one(plan, instance, assignment, depth + 1, trail, budget):
            trail.extend(newly)
            return True
        for term in newly:
            del assignment[term]
    return False


def _find_injective(
    plan: MatchPlan,
    instance: Instance,
    assignment: Assignment,
    used: set[GroundTerm],
    targets: frozenset[GroundTerm],
    depth: int,
) -> bool:
    """`_find_one` restricted to injective, `targets`-valued bindings."""
    compiled = plan.compiled
    if depth == len(compiled):
        return True
    entry = compiled[depth]
    if entry.probe_template is not None:
        return _probe(entry, instance, assignment) and _find_injective(
            plan, instance, assignment, used, targets, depth + 1
        )
    for fact in _candidates(entry, instance, assignment):
        terms = fact.terms
        if len(terms) != entry.arity:
            continue
        ok = all(terms[p] == t for p, t in entry.rigid) and all(
            assignment[t] == terms[p] for p, t in entry.bound_checks
        )
        if not ok:
            continue
        newly: list[Term] = []
        failed = False
        for position, term in entry.binds:
            value = terms[position]
            current = assignment.get(term)
            if current is None:
                if value not in targets or value in used:
                    failed = True
                    break
                assignment[term] = value
                used.add(value)
                newly.append(term)
            elif current != value:
                failed = True
                break
        if not failed and _find_injective(
            plan, instance, assignment, used, targets, depth + 1
        ):
            return True
        for term in newly:
            used.discard(assignment[term])
            del assignment[term]
    return False


def _drifted(plan: MatchPlan, instance: Instance) -> bool:
    """Has any touched relation's cardinality left the snapshot band?"""
    for relation, snapshot in zip(plan.relations, plan.stats_snapshot):
        current = len(instance.facts_of(relation)) + DRIFT_DAMPING
        recorded = snapshot + DRIFT_DAMPING
        if current > recorded * DRIFT_FACTOR or recorded > current * DRIFT_FACTOR:
            return True
    return False


def freeze_atoms(atoms: Sequence[Atom]) -> tuple[Instance, frozenset]:
    """Freeze a CQ body into an instance: variables become tagged nulls.

    Returns the instance and the set of nulls standing for variables
    (the injective-targets set of the isomorphism check).  The nulls
    are globally fresh, so a rigid null appearing in the atoms matched
    *against* the frozen instance can never alias a variable image.
    """
    freezing: dict[Variable, Null] = {}
    frozen = []
    for atom in atoms:
        terms = []
        for term in atom.terms:
            if isinstance(term, Variable):
                null = freezing.get(term)
                if null is None:
                    null = fresh_null("frz")
                    freezing[term] = null
                terms.append(null)
            else:
                terms.append(term)
        frozen.append(Atom(atom.relation, tuple(terms)))
    return Instance(frozen), frozenset(freezing.values())


# ----------------------------------------------------------------------
# The matcher
# ----------------------------------------------------------------------
class Matcher:
    """Planned homomorphism search with cross-call memoization.

    ::

        matcher = Matcher()
        for h in matcher.homomorphisms(body, instance, seed=seed): ...
        matcher.has(head, instance, seed=exported)   # cached check
        matcher.stats()["check_hits"]                # cache traffic
    """

    def __init__(
        self,
        *,
        plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
        check_cache_limit: int = DEFAULT_CHECK_CACHE_LIMIT,
        execution: str = "int",
    ) -> None:
        if execution not in ("int", "object"):
            raise ValueError(
                f"execution must be 'int' or 'object', got {execution!r}"
            )
        self.plan_cache_size = plan_cache_size
        self.check_cache_limit = check_cache_limit
        #: Which executor family runs the plans: "int" (interned rows,
        #: slot arrays — the default) or "object" (the historical dict
        #: environments, kept as the round-trip oracle).
        self.execution = execution
        self._plans: OrderedDict[tuple, MatchPlan] = OrderedDict()
        self._frozen_iso: OrderedDict[
            tuple, tuple[Instance, frozenset]
        ] = OrderedDict()
        self._lock = threading.Lock()
        self._counters = {
            "plans_compiled": 0,
            "plan_hits": 0,
            "plan_evictions": 0,
            "drift_checks": 0,
            "replans": 0,
            "enumerations": 0,
            "distinct_enumerations": 0,
            "checks": 0,
            "ground_probe_checks": 0,
            "check_hits": 0,
            "check_misses": 0,
            "check_evictions": 0,
            "iso_checks": 0,
            "subsumption_checks": 0,
        }

    # -- plans ---------------------------------------------------------
    def plan_for(
        self,
        atoms: Sequence[Atom],
        instance: Instance,
        *,
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        flexible_nulls: bool = False,
    ) -> MatchPlan:
        """The memoized plan for this search shape (compiling on miss).

        The join order of a fresh plan is chosen from `instance`'s index
        statistics, and the plan is reused for every instance searched
        under the same key — **unless** the cardinalities of the
        relations it touches have drifted past `DRIFT_FACTOR` from the
        snapshot the order was chosen under, in which case the join
        order is recompiled against the current statistics
        (replan-on-drift; `stats()["replans"]` counts recompiles).
        Single-atom plans have no order to get wrong and are never
        drift-checked.
        """
        key = plan_key(atoms, flexible_nulls, seed)
        counters = self._counters
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._plans.move_to_end(key)
                counters["plan_hits"] += 1
                if (
                    len(plan.compiled) > 1
                    and plan.replan_count < MAX_REPLANS_PER_KEY
                ):
                    plan.drift_countdown -= 1
                    if plan.drift_countdown <= 0:
                        plan.drift_countdown = DRIFT_CHECK_STRIDE
                        counters["drift_checks"] += 1
                        if _drifted(plan, instance):
                            replacement = MatchPlan(key, instance)
                            replacement.replan_count = plan.replan_count + 1
                            self._plans[key] = replacement
                            counters["replans"] += 1
                            return replacement
                return plan
            plan = MatchPlan(key, instance)
            counters["plans_compiled"] += 1
            self._plans[key] = plan
            while len(self._plans) > self.plan_cache_size:
                self._plans.popitem(last=False)
                counters["plan_evictions"] += 1
            return plan

    # -- enumeration ---------------------------------------------------
    def homomorphisms(
        self,
        atoms: Sequence[Atom],
        instance: Instance,
        *,
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        flexible_nulls: bool = False,
        budget: Optional[Budget] = None,
    ) -> Iterator[Assignment]:
        """Enumerate homomorphisms of `atoms` into `instance`.

        Yields full assignments (seed entries included), like the
        historical `repro.logic.homomorphism.homomorphisms`; enumeration
        order is unspecified.  The instance must not be mutated while
        the iterator is live.  ``budget`` (when given) is ticked per
        candidate fact: an exhausted budget raises `DeadlineExceeded`
        out of the iterator.
        """
        plan = self.plan_for(
            atoms, instance, seed=seed, flexible_nulls=flexible_nulls
        )
        self._counters["enumerations"] += 1
        if self.execution == "int":
            return int_search(plan, instance, seed, budget)
        assignment: Assignment = dict(seed) if seed else {}
        return _search(plan, instance, assignment, 0, budget)

    def find(
        self,
        atoms: Sequence[Atom],
        instance: Instance,
        *,
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        flexible_nulls: bool = False,
        budget: Optional[Budget] = None,
    ) -> Optional[Assignment]:
        """One homomorphism, or None."""
        plan = self.plan_for(
            atoms, instance, seed=seed, flexible_nulls=flexible_nulls
        )
        if self.execution == "int":
            return int_find(plan, instance, seed, budget)
        assignment: Assignment = dict(seed) if seed else {}
        if _find_one(plan, instance, assignment, 0, [], budget):
            return assignment
        return None

    def has(
        self,
        atoms: Sequence[Atom],
        instance: Instance,
        *,
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        flexible_nulls: bool = False,
        budget: Optional[Budget] = None,
    ) -> bool:
        """Cached existence check.

        Fully ground plans probe the fact indexes directly (cheaper than
        any cache).  Other results are cached on the instance and stay
        valid while the generation counters of every relation the plan
        touches are unchanged — so the restricted chase's activeness
        re-checks and a containment loop's per-round query probes only
        recompute when a relevant relation actually changed.

        A `DeadlineExceeded` raised mid-search propagates *before* the
        cache write below — an aborted check never stores a partial
        (wrong) boolean.
        """
        plan = self.plan_for(
            atoms, instance, seed=seed, flexible_nulls=flexible_nulls
        )
        counters = self._counters
        counters["checks"] += 1
        if plan.all_ground:
            counters["ground_probe_checks"] += 1
            if self.execution == "int":
                return int_ground_probe(plan, instance, seed)
            assignment = seed if seed is not None else {}
            return all(
                _probe(entry, instance, assignment)
                for entry in plan.compiled
            )
        cache = instance.match_cache
        generations = instance.generations(plan.relations)
        key = (plan.key, frozenset(seed.items()) if seed else None)
        entry = cache.get(key)
        if entry is not None and entry[1] == generations:
            counters["check_hits"] += 1
            return entry[0]
        counters["check_misses"] += 1
        if self.execution == "int":
            result = int_has(plan, instance, seed, budget)
        else:
            assignment = dict(seed) if seed else {}
            result = _find_one(plan, instance, assignment, 0, [], budget)
        # Concurrency note (the tests/concurrency battery leans on
        # this): the cache is deliberately lock-free.  Entries are
        # tagged with the generations read *before* the search — if
        # another thread mutates the instance mid-search, the computed
        # result is stored under a now-stale tag, and because
        # generation counters only ever increase, no later read can
        # match that tag: the entry is dead, never wrong.  Concurrent
        # clear/insert interleavings can at worst drop an entry
        # (re-derived on the next miss).  This holds for threads
        # sharing a *quiescent* instance (the serving layer's case);
        # mutating an instance while another thread searches it remains
        # outside the contract of `Instance`'s live index views.
        if len(cache) >= self.check_cache_limit:
            cache.clear()
            counters["check_evictions"] += 1
        cache[key] = (result, generations)
        return result

    def distinct_matches(
        self,
        atoms: Sequence[Atom],
        instance: Instance,
        *,
        on: Sequence[Term],
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        skip: Optional[set] = None,
        flexible_nulls: bool = False,
        budget: Optional[Budget] = None,
    ) -> Iterator[Assignment]:
        """One full match per distinct projection on ``on``.

        Projections already in ``skip`` are pruned as soon as their
        terms are bound — before the remaining atoms are enumerated
        (the semi-oblivious chase's frontier fast path).  The projection
        of every *yielded* match is added to ``skip``, so a set passed
        across calls (the chase's fired-trigger registry) deduplicates
        globally; failed projections are not recorded.
        """
        plan = self.plan_for(
            atoms, instance, seed=seed, flexible_nulls=flexible_nulls
        )
        on = tuple(on)
        bound_depth = plan.distinct_depth(on)
        if skip is None:
            skip = set()
        self._counters["distinct_enumerations"] += 1
        if self.execution == "int":
            return int_distinct_search(
                plan, instance, on, bound_depth, skip, seed, budget
            )
        assignment: Assignment = dict(seed) if seed else {}
        return _distinct_search(
            plan, instance, assignment, on, bound_depth, skip, budget
        )

    # -- query-shape predicates ---------------------------------------
    def is_isomorphic(
        self, left: Sequence[Atom], right: Sequence[Atom]
    ) -> bool:
        """Exact isomorphism of two duplicate-free CQ bodies.

        True iff a bijective variable renaming maps one atom set onto
        the other; decided as an injective planned search of `left`
        against `right` frozen, with bindings restricted to the frozen
        variable images (so variables map to variables only, which
        together with equal sizes and variable counts forces an atom
        bijection).  Inputs are compared as atom *sets* (duplicates
        dropped — CQ bodies have set semantics).
        """
        left = tuple(dict.fromkeys(left))
        right = tuple(dict.fromkeys(right))
        self._counters["iso_checks"] += 1
        if len(left) != len(right):
            return False
        left_vars = {
            t for a in left for t in a.terms if isinstance(t, Variable)
        }
        # Frozen right-hand sides are memoized: the rewriting dedup
        # compares many candidates against the same kept states.
        with self._lock:
            entry = self._frozen_iso.get(right)
            if entry is not None:
                self._frozen_iso.move_to_end(right)
        if entry is None:
            entry = freeze_atoms(right)
            with self._lock:
                self._frozen_iso[right] = entry
                while len(self._frozen_iso) > FROZEN_ISO_CACHE_SIZE:
                    self._frozen_iso.popitem(last=False)
        frozen, targets = entry
        # freeze_atoms maps each distinct variable to a distinct null,
        # so |targets| is the right side's variable count.
        if len(left_vars) != len(targets):
            return False
        plan = self.plan_for(left, frozen)
        return _find_injective(plan, frozen, {}, set(), targets, 0)

    def subsumes(
        self, smaller: Sequence[Atom], larger: Sequence[Atom]
    ) -> bool:
        """True iff `smaller` hom-maps into `larger` (as Boolean CQs:
        every instance satisfying `larger` satisfies `smaller`)."""
        frozen, __ = freeze_atoms(larger)
        return self.maps_into(smaller, frozen)

    def maps_into(
        self,
        atoms: Sequence[Atom],
        frozen: Instance,
        *,
        plan: Optional[MatchPlan] = None,
    ) -> bool:
        """Subsumption against an already-frozen right-hand side (use
        `freeze_atoms` once when testing many candidates).

        ``plan`` short-circuits the plan-cache lookup: a caller probing
        one left-hand side against many frozen instances (the rewriting
        engine's pruning pass) fetches the plan once via `plan_for` and
        passes it back, skipping the per-probe key hashing.
        """
        self._counters["subsumption_checks"] += 1
        if plan is None:
            plan = self.plan_for(tuple(atoms), frozen)
        if self.execution == "int":
            return int_has(plan, frozen, None, None)
        return _find_one(plan, frozen, {}, 0, [])

    # -- diagnostics ---------------------------------------------------
    def stats(self) -> dict:
        """Plan/check cache traffic counters (approximate under races)."""
        return {
            "strategy": "planned",
            "executor": self.execution,
            "plans_cached": len(self._plans),
            **self._counters,
        }

    def __repr__(self) -> str:
        return f"Matcher({len(self._plans)} plans cached)"


def _distinct_search(
    plan: MatchPlan,
    instance: Instance,
    assignment: Assignment,
    on: tuple[Term, ...],
    bound_depth: int,
    skip: set,
    budget: Optional[Budget] = None,
) -> Iterator[Assignment]:
    compiled = plan.compiled

    def emit() -> Optional[Assignment]:
        """Projection complete: reject seen keys, else find one
        completion of the remaining atoms and record the key."""
        key = tuple(assignment[t] for t in on)
        if key in skip:
            return None
        trail: list[Term] = []
        if _find_one(
            plan, instance, assignment, bound_depth + 1, trail, budget
        ):
            skip.add(key)
            result = dict(assignment)
            for term in trail:
                del assignment[term]
            return result
        return None

    def search(depth: int) -> Iterator[Assignment]:
        entry = compiled[depth]
        last = depth == bound_depth
        if entry.probe_template is not None:
            if _probe(entry, instance, assignment):
                if last:
                    result = emit()
                    if result is not None:
                        yield result
                else:
                    yield from search(depth + 1)
            return
        for fact in _candidates(entry, instance, assignment):
            if budget is not None:
                budget.tick()
            newly = _extend(entry, fact, assignment)
            if newly is None:
                continue
            if last:
                result = emit()
                if result is not None:
                    yield result
            else:
                yield from search(depth + 1)
            for term in newly:
                del assignment[term]

    if bound_depth < 0:
        result = emit()
        if result is not None:
            yield result
        return
    yield from search(0)


# ----------------------------------------------------------------------
# The process-wide default matcher (free-function consumers)
# ----------------------------------------------------------------------
_DEFAULT_MATCHER = Matcher()


def default_matcher() -> Matcher:
    """The shared matcher behind the `repro.logic.homomorphism` wrappers
    and every consumer not holding a `CompiledSchema`."""
    return _DEFAULT_MATCHER
