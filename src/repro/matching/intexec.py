"""Int-space plan execution: interned rows, flat steps, slot arrays.

The object executors in `repro.matching.matcher` run `MatchPlan`s over
dict environments keyed by `Term` objects and candidate sets of boxed
`Atom`s — every probe hashes frozen dataclasses.  This module executes
the *same* plans entirely in int space:

* `Instance` interns every ground term to a dense int on first
  appearance and mirrors each fact as a tuple-of-int row with parallel
  ``(position, value_id)`` column indexes (see `Instance.int_view`);
* an `IntPlan` lowers a compiled `MatchPlan` once into flat step tuples
  whose instructions reference **slot numbers** in a preallocated int
  list instead of dict keys — rigid terms become indexes into a small
  per-execution table of resolved ids, bound checks and binds become
  ``(position, slot)`` pairs, and ground probes become literal row
  tuples tested for set membership;
* per execution, the prologue resolves the plan's rigid terms and seed
  values through the instance's interner (unknown terms resolve to the
  sentinel ``-1``, which no stored row can carry, so they simply fail
  to match — exactly the semantics of an absent fact) and the search
  then runs integer comparisons only: no term hashing, no dict
  allocation until a complete match is externed back to the caller's
  ``{Term: GroundTerm}`` environment.

The lowering is cached on the plan (`MatchPlan.int_plan`); compiling is
idempotent, so a benign race between two threads lowering the same plan
at worst duplicates the small amount of work.

The executors are behaviourally identical to the object ones — same
enumeration order (both walk the same candidate buckets in the same
plan order), same skip-set contract for distinct enumeration (keys are
tuples of ground *terms*, not ids, so registries remain meaningful
across instances) — which the interning round-trip property suite in
``tests/matching/test_intexec.py`` pins down.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional, Sequence

from ..data.instance import Instance
from ..logic.terms import GroundTerm, Term
from ..runtime import Budget
from .plan import MatchPlan

Assignment = dict[Term, GroundTerm]

#: Shared empty candidate bucket.
_NO_ROWS: tuple = ()


class IntPlan:
    """A `MatchPlan` lowered to flat int-space instruction tuples.

    ``steps`` holds one tuple per atom of the plan order::

        (relation, arity, probe, rigid_pairs, bound_pairs, bind_pairs)

    where ``probe`` is ``None`` or a tuple of ``(is_rigid, index)``
    (index into the resolved rigid table or the slot list), and the
    pair lists hold ``(position, rigid_index)`` / ``(position, slot)``.
    """

    __slots__ = (
        "n_slots",
        "seed_slots",
        "rigid_terms",
        "steps",
        "out_slots",
        "slot_of",
        "ground_templates",
        "_on_specs",
    )

    def __init__(self, plan: MatchPlan) -> None:
        slot_of: dict[Term, int] = {}
        # Seed slots first, in a deterministic order.
        for term in sorted(plan.seed_terms, key=repr):
            slot_of[term] = len(slot_of)
        self.seed_slots = tuple(slot_of.items())
        rigid_index: dict[Term, int] = {}
        rigid_terms: list[Term] = []
        steps = []
        for entry in plan.compiled:
            rigid_pairs = []
            for position, term in entry.rigid:
                index = rigid_index.get(term)
                if index is None:
                    index = len(rigid_terms)
                    rigid_index[term] = index
                    rigid_terms.append(term)
                rigid_pairs.append((position, index))
            bound_pairs = tuple(
                (position, slot_of[term])
                for position, term in entry.bound_checks
            )
            bind_pairs = []
            for position, term in entry.binds:
                slot = slot_of.get(term)
                if slot is None:
                    slot = len(slot_of)
                    slot_of[term] = slot
                bind_pairs.append((position, slot))
            if entry.probe_template is not None:
                probe = tuple(
                    (True, rigid_index[term])
                    if is_rigid
                    else (False, slot_of[term])
                    for is_rigid, term in entry.probe_template
                )
            else:
                probe = None
            steps.append((
                entry.relation,
                entry.arity,
                probe,
                tuple(rigid_pairs),
                bound_pairs,
                tuple(bind_pairs),
            ))
        self.n_slots = len(slot_of)
        self.rigid_terms = tuple(rigid_terms)
        self.steps = tuple(steps)
        self.slot_of = slot_of
        seed_terms = plan.seed_terms
        # The non-seed slots to extern into the result environment (seed
        # entries are echoed from the seed mapping itself, so unknown
        # seed values round-trip exactly).
        self.out_slots = tuple(
            (term, slot)
            for term, slot in slot_of.items()
            if term not in seed_terms
        )
        #: For all-ground plans (the `has` fast path): the object-space
        #: probe templates, so the probe can intern straight from the
        #: seed mapping without allocating a slot list at all.
        if plan.all_ground:
            self.ground_templates = tuple(
                (entry.relation, entry.probe_template)
                for entry in plan.compiled
            )
        else:
            self.ground_templates = ()
        self._on_specs: dict[tuple[Term, ...], tuple] = {}

    def on_spec(self, on: tuple[Term, ...]) -> tuple:
        """``(slot, term)`` pairs for a distinct-projection key."""
        spec = self._on_specs.get(on)
        if spec is None:
            spec = tuple((self.slot_of[term], term) for term in on)
            self._on_specs[on] = spec
        return spec


def int_plan_of(plan: MatchPlan) -> IntPlan:
    """The lowered form of a plan, cached on the plan object."""
    lowered = plan.int_plan
    if lowered is None:
        lowered = IntPlan(plan)
        plan.int_plan = lowered
    return lowered


# ----------------------------------------------------------------------
# Execution prologue
# ----------------------------------------------------------------------
def _resolve(
    iplan: IntPlan,
    instance: Instance,
    seed: Optional[Mapping[Term, GroundTerm]],
) -> tuple[list[int], list[int], list]:
    """Resolve rigid terms and seed values against this instance.

    Terms the instance has never interned resolve to ``-1``: no stored
    row carries it, so every comparison against it fails — the correct
    outcome for a term that occurs in no fact.
    """
    term_id = instance.term_id
    rig = [term_id(term) for term in iplan.rigid_terms]
    slots = [-1] * iplan.n_slots
    if iplan.seed_slots:
        for term, slot in iplan.seed_slots:
            slots[slot] = term_id(seed[term])
    views = [instance.int_view(step[0]) for step in iplan.steps]
    return rig, slots, views


def _candidates(step, view, slots: list[int], rig: list[int]):
    """Most selective column bucket for the step's known positions."""
    rows, cols = view
    best = None
    best_size = -1
    for position, index in step[3]:
        bucket = cols.get((position, rig[index]))
        if bucket is None:
            return _NO_ROWS
        size = len(bucket)
        if size <= 1:
            return bucket
        if best is None or size < best_size:
            best = bucket
            best_size = size
    for position, slot in step[4]:
        bucket = cols.get((position, slots[slot]))
        if bucket is None:
            return _NO_ROWS
        size = len(bucket)
        if size <= 1:
            return bucket
        if best is None or size < best_size:
            best = bucket
            best_size = size
    if best is not None:
        return best
    return rows


def _probe_hit(step, view, slots: list[int], rig: list[int]) -> bool:
    row = tuple(
        rig[index] if is_rigid else slots[index]
        for is_rigid, index in step[2]
    )
    return row in view[0]


def _extern(
    iplan: IntPlan,
    slots: list[int],
    id_terms: list[GroundTerm],
    seed: Optional[Mapping[Term, GroundTerm]],
) -> Assignment:
    """Build the caller-facing environment from the bound slot list."""
    env: Assignment = dict(seed) if seed else {}
    for term, slot in iplan.out_slots:
        env[term] = id_terms[slots[slot]]
    return env


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
def _search(
    iplan: IntPlan,
    views: list,
    rig: list[int],
    slots: list[int],
    depth: int,
    id_terms: list[GroundTerm],
    seed: Optional[Mapping[Term, GroundTerm]],
    budget: Optional[Budget],
) -> Iterator[Assignment]:
    steps = iplan.steps
    if depth == len(steps):
        yield _extern(iplan, slots, id_terms, seed)
        return
    step = steps[depth]
    view = views[depth]
    if step[2] is not None:
        if _probe_hit(step, view, slots, rig):
            yield from _search(
                iplan, views, rig, slots, depth + 1, id_terms, seed, budget
            )
        return
    arity = step[1]
    rigid_pairs = step[3]
    bound_pairs = step[4]
    bind_pairs = step[5]
    for row in _candidates(step, view, slots, rig):
        if budget is not None:
            budget.tick()
        if len(row) != arity:
            continue
        ok = True
        for position, index in rigid_pairs:
            if row[position] != rig[index]:
                ok = False
                break
        if not ok:
            continue
        for position, slot in bound_pairs:
            if row[position] != slots[slot]:
                ok = False
                break
        if not ok:
            continue
        newly: list[int] = []
        for position, slot in bind_pairs:
            value = row[position]
            current = slots[slot]
            if current < 0:
                slots[slot] = value
                newly.append(slot)
            elif current != value:
                ok = False
                break
        if ok:
            yield from _search(
                iplan, views, rig, slots, depth + 1, id_terms, seed, budget
            )
        for slot in newly:
            slots[slot] = -1


def _find_from(
    steps: tuple,
    views: list,
    rig: list[int],
    slots: list[int],
    depth: int,
    trail: list[int],
    budget: Optional[Budget],
) -> bool:
    """Find one completion; bindings stay in `slots` on success (their
    slot numbers appended to `trail`), everything unwinds on failure."""
    if depth == len(steps):
        return True
    step = steps[depth]
    view = views[depth]
    if step[2] is not None:
        return _probe_hit(step, view, slots, rig) and _find_from(
            steps, views, rig, slots, depth + 1, trail, budget
        )
    arity = step[1]
    rigid_pairs = step[3]
    bound_pairs = step[4]
    bind_pairs = step[5]
    for row in _candidates(step, view, slots, rig):
        if budget is not None:
            budget.tick()
        if len(row) != arity:
            continue
        ok = True
        for position, index in rigid_pairs:
            if row[position] != rig[index]:
                ok = False
                break
        if not ok:
            continue
        for position, slot in bound_pairs:
            if row[position] != slots[slot]:
                ok = False
                break
        if not ok:
            continue
        newly: list[int] = []
        for position, slot in bind_pairs:
            value = row[position]
            current = slots[slot]
            if current < 0:
                slots[slot] = value
                newly.append(slot)
            elif current != value:
                ok = False
                break
        if ok and _find_from(
            steps, views, rig, slots, depth + 1, trail, budget
        ):
            trail.extend(newly)
            return True
        for slot in newly:
            slots[slot] = -1
    return False


# ----------------------------------------------------------------------
# Entry points (used by `Matcher`)
# ----------------------------------------------------------------------
def int_search(
    plan: MatchPlan,
    instance: Instance,
    seed: Optional[Mapping[Term, GroundTerm]],
    budget: Optional[Budget],
) -> Iterator[Assignment]:
    """Enumerate all homomorphisms (int-space `_search`)."""
    iplan = int_plan_of(plan)
    rig, slots, views = _resolve(iplan, instance, seed)
    return _search(
        iplan, views, rig, slots, 0, instance.id_terms, seed, budget
    )


def int_find(
    plan: MatchPlan,
    instance: Instance,
    seed: Optional[Mapping[Term, GroundTerm]],
    budget: Optional[Budget],
) -> Optional[Assignment]:
    """One homomorphism as an environment, or None."""
    iplan = int_plan_of(plan)
    rig, slots, views = _resolve(iplan, instance, seed)
    if _find_from(iplan.steps, views, rig, slots, 0, [], budget):
        return _extern(iplan, slots, instance.id_terms, seed)
    return None


def int_has(
    plan: MatchPlan,
    instance: Instance,
    seed: Optional[Mapping[Term, GroundTerm]],
    budget: Optional[Budget],
) -> bool:
    """Existence check (no environment built)."""
    iplan = int_plan_of(plan)
    rig, slots, views = _resolve(iplan, instance, seed)
    return _find_from(iplan.steps, views, rig, slots, 0, [], budget)


def int_ground_probe(
    plan: MatchPlan,
    instance: Instance,
    seed: Optional[Mapping[Term, GroundTerm]],
) -> bool:
    """All-ground plan: membership-test every step's probe row.

    Interns straight from the probe templates — no slot list, no view
    prefetch — because this is the chase's per-trigger activeness check
    and runs tens of thousands of times per round.
    """
    iplan = int_plan_of(plan)
    term_id = instance.term_id
    rows_by_relation = instance._rows
    for relation, template in iplan.ground_templates:
        rows = rows_by_relation.get(relation)
        if rows is None:
            return False
        row = tuple(
            term_id(term if is_rigid else seed[term])
            for is_rigid, term in template
        )
        if row not in rows:
            return False
    return True


def _slot_search(
    steps: tuple,
    views: list,
    rig: list[int],
    slots: list[int],
    depth: int,
    budget: Optional[Budget],
) -> Iterator[tuple[int, ...]]:
    """Like `_search`, but yields the raw slot vector (a tuple of ids)
    instead of externing an environment — the chase's trigger pipeline
    projects body/frontier keys straight off it in int space."""
    if depth == len(steps):
        yield tuple(slots)
        return
    step = steps[depth]
    view = views[depth]
    if step[2] is not None:
        if _probe_hit(step, view, slots, rig):
            yield from _slot_search(
                steps, views, rig, slots, depth + 1, budget
            )
        return
    arity = step[1]
    rigid_pairs = step[3]
    bound_pairs = step[4]
    bind_pairs = step[5]
    for row in _candidates(step, view, slots, rig):
        if budget is not None:
            budget.tick()
        if len(row) != arity:
            continue
        ok = True
        for position, index in rigid_pairs:
            if row[position] != rig[index]:
                ok = False
                break
        if not ok:
            continue
        for position, slot in bound_pairs:
            if row[position] != slots[slot]:
                ok = False
                break
        if not ok:
            continue
        newly: list[int] = []
        for position, slot in bind_pairs:
            value = row[position]
            current = slots[slot]
            if current < 0:
                slots[slot] = value
                newly.append(slot)
            elif current != value:
                ok = False
                break
        if ok:
            yield from _slot_search(
                steps, views, rig, slots, depth + 1, budget
            )
        for slot in newly:
            slots[slot] = -1


def int_slot_matches(
    plan: MatchPlan,
    instance: Instance,
    seed: Optional[Mapping[Term, GroundTerm]],
    budget: Optional[Budget],
) -> Iterator[tuple[int, ...]]:
    """Enumerate matches as raw slot vectors (see `IntPlan.slot_of`)."""
    iplan = int_plan_of(plan)
    rig, slots, views = _resolve(iplan, instance, seed)
    return _slot_search(iplan.steps, views, rig, slots, 0, budget)


def int_seeded_context(
    plan: MatchPlan, instance: Instance
) -> tuple[IntPlan, list[int], list]:
    """Resolve the seed-independent half of `_resolve` once.

    The rigid-term ids and candidate views only change when the
    instance is mutated, so a caller running one plan over many seeds
    against a quiescent instance (the chase's per-round trigger
    collection) resolves them once and reuses them per seed through
    `int_slot_matches_resolved`.
    """
    iplan = int_plan_of(plan)
    term_id = instance.term_id
    rig = [term_id(term) for term in iplan.rigid_terms]
    views = [instance.int_view(step[0]) for step in iplan.steps]
    return iplan, rig, views


def int_slot_matches_resolved(
    iplan: IntPlan,
    rig: list[int],
    views: list,
    instance: Instance,
    seed: Mapping[Term, GroundTerm],
    budget: Optional[Budget],
) -> Iterator[tuple[int, ...]]:
    """`int_slot_matches` over a context from `int_seeded_context`."""
    term_id = instance.term_id
    slots = [-1] * iplan.n_slots
    for term, slot in iplan.seed_slots:
        slots[slot] = term_id(seed[term])
    return _slot_search(iplan.steps, views, rig, slots, 0, budget)


def int_slot_search(
    iplan: IntPlan,
    rig: list[int],
    views: list,
    slots: list[int],
    budget: Optional[Budget],
) -> Iterator[tuple[int, ...]]:
    """The raw slot search over a caller-prepared slot list.

    For callers that already hold seed values as ids (the chase seeds
    triggers from interned delta-fact rows) and can fill the slot list
    without a term-space round trip.  ``slots`` must be `iplan.n_slots`
    long with ``-1`` in every unseeded position; it is mutated during
    the search and restored between yields, so it must not be reused
    until the iterator is exhausted.
    """
    return _slot_search(iplan.steps, views, rig, slots, 0, budget)


def int_distinct_search(
    plan: MatchPlan,
    instance: Instance,
    on: tuple[Term, ...],
    bound_depth: int,
    skip: set,
    seed: Optional[Mapping[Term, GroundTerm]],
    budget: Optional[Budget],
) -> Iterator[Assignment]:
    """Int-space twin of `matcher._distinct_search`.

    Projection keys are externed back to ground-term tuples before the
    ``skip`` test, so registries passed across calls (the chase's
    fired-trigger sets) keep their term-space meaning.  A seed value the
    instance never interned reads from the seed mapping itself (its
    slot holds the ``-1`` sentinel).
    """
    iplan = int_plan_of(plan)
    rig, slots, views = _resolve(iplan, instance, seed)
    id_terms = instance.id_terms
    steps = iplan.steps
    spec = iplan.on_spec(on)

    def emit() -> Optional[Assignment]:
        parts = []
        for slot, term in spec:
            value = slots[slot]
            parts.append(seed[term] if value < 0 else id_terms[value])
        key = tuple(parts)
        if key in skip:
            return None
        trail: list[int] = []
        if _find_from(
            steps, views, rig, slots, bound_depth + 1, trail, budget
        ):
            skip.add(key)
            result = _extern(iplan, slots, id_terms, seed)
            for slot in trail:
                slots[slot] = -1
            return result
        return None

    def search(depth: int) -> Iterator[Assignment]:
        step = steps[depth]
        view = views[depth]
        last = depth == bound_depth
        if step[2] is not None:
            if _probe_hit(step, view, slots, rig):
                if last:
                    result = emit()
                    if result is not None:
                        yield result
                else:
                    yield from search(depth + 1)
            return
        arity = step[1]
        rigid_pairs = step[3]
        bound_pairs = step[4]
        bind_pairs = step[5]
        for row in _candidates(step, view, slots, rig):
            if budget is not None:
                budget.tick()
            if len(row) != arity:
                continue
            ok = True
            for position, index in rigid_pairs:
                if row[position] != rig[index]:
                    ok = False
                    break
            if not ok:
                continue
            for position, slot in bound_pairs:
                if row[position] != slots[slot]:
                    ok = False
                    break
            if not ok:
                continue
            newly: list[int] = []
            for position, slot in bind_pairs:
                value = row[position]
                current = slots[slot]
                if current < 0:
                    slots[slot] = value
                    newly.append(slot)
                elif current != value:
                    ok = False
                    break
            if ok:
                if last:
                    result = emit()
                    if result is not None:
                        yield result
                else:
                    yield from search(depth + 1)
            for slot in newly:
                slots[slot] = -1

    if bound_depth < 0:
        result = emit()
        if result is not None:
            yield result
        return
    yield from search(0)
