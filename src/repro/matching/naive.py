"""The naive backtracking matcher: the executable reference.

This is the original `repro.logic.homomorphism` search, moved here
verbatim when the planned matcher took over the hot paths.  It rederives
the atom order and candidate scans on every call and keeps no caches,
which makes it the ideal cross-check oracle: the randomized
planned≡naive suites (``tests/matching``) compare the planned matcher's
enumerations against this module, and ``benchmarks/bench_matching.py``
uses `NaiveMatcher` as the "before" side of its speedup records.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
)

from ..logic.atoms import Atom
from ..logic.terms import Constant, GroundTerm, Null, Term, Variable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..data.instance import Instance

#: A (partial) homomorphism: assignment of query terms to ground terms.
Assignment = dict[Term, GroundTerm]


def candidate_facts(
    instance: "Instance",
    atom: Atom,
    assignment: Mapping[Term, GroundTerm],
    flexible_nulls: bool,
) -> Iterable[Atom]:
    """Facts of `instance` possibly matching `atom` under `assignment`.

    Uses the most selective available positional index; falls back to the
    full relation bucket when no term of the atom is determined yet.
    """
    best: Optional[Iterable[Atom]] = None
    best_size = -1
    for position, term in enumerate(atom.terms):
        bound: Optional[GroundTerm] = None
        if isinstance(term, Constant):
            bound = term
        elif isinstance(term, Null) and not flexible_nulls:
            bound = term
        elif term in assignment:
            bound = assignment[term]
        if bound is not None:
            facts = instance.facts_with(atom.relation, position, bound)
            size = len(facts)
            if size <= 1:
                # An empty or singleton bucket cannot be beaten: stop the
                # position scan immediately (empty ⇒ no match at all).
                return facts
            if best is None or size < best_size:
                best = facts
                best_size = size
    if best is not None:
        return best
    return instance.facts_of(atom.relation)


def try_extend(
    atom: Atom,
    fact: Atom,
    assignment: Assignment,
    flexible_nulls: bool,
) -> Optional[list[Term]]:
    """Extend `assignment` in place so that atom maps to fact.

    Returns the list of newly bound terms (for backtracking), or None if
    the fact is incompatible.
    """
    if fact.relation != atom.relation or len(fact.terms) != len(atom.terms):
        return None
    newly_bound: list[Term] = []
    for term, value in zip(atom.terms, fact.terms):
        if isinstance(term, Constant) or (
            isinstance(term, Null) and not flexible_nulls
        ):
            if term != value:
                for t in newly_bound:
                    del assignment[t]
                return None
            continue
        current = assignment.get(term)
        if current is None:
            assignment[term] = value
            newly_bound.append(term)
        elif current != value:
            for t in newly_bound:
                del assignment[t]
            return None
    return newly_bound


def order_atoms(atoms: Sequence[Atom]) -> list[Atom]:
    """Heuristic join order: start anywhere, then prefer connected atoms."""
    remaining = list(atoms)
    if not remaining:
        return []
    ordered: list[Atom] = []
    bound_terms: set[Term] = set()
    # Start with the atom having the most constants (most selective guess).
    remaining.sort(key=lambda a: -sum(
        1 for t in a.terms if not isinstance(t, Variable)
    ))
    while remaining:
        best_index = 0
        best_score = -1
        for i, candidate in enumerate(remaining):
            score = sum(
                1
                for t in candidate.terms
                if t in bound_terms or not isinstance(t, Variable)
            )
            if score > best_score:
                best_score = score
                best_index = i
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound_terms.update(chosen.terms)
    return ordered


def naive_homomorphisms(
    atoms: Sequence[Atom],
    instance: "Instance",
    *,
    seed: Optional[Mapping[Term, GroundTerm]] = None,
    flexible_nulls: bool = False,
) -> Iterator[Assignment]:
    """Enumerate homomorphisms from `atoms` into `instance` (reference)."""
    assignment: Assignment = dict(seed) if seed else {}
    ordered = order_atoms(atoms)

    def search(index: int) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(assignment)
            return
        current = ordered[index]
        for fact in candidate_facts(
            instance, current, assignment, flexible_nulls
        ):
            newly_bound = try_extend(
                current, fact, assignment, flexible_nulls
            )
            if newly_bound is None:
                continue
            yield from search(index + 1)
            for term in newly_bound:
                del assignment[term]

    return search(0)


class NaiveMatcher:
    """The `Matcher` interface over the naive search (no plans, no caches).

    Drop-in for `repro.matching.Matcher` wherever a matcher is accepted
    (most importantly ``chase(..., matcher=...)``): the cross-check
    suites and the before/after benchmark rows run the same engine code
    with only the matching strategy swapped.
    """

    def homomorphisms(
        self,
        atoms: Sequence[Atom],
        instance: "Instance",
        *,
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        flexible_nulls: bool = False,
        budget=None,
    ) -> Iterator[Assignment]:
        iterator = naive_homomorphisms(
            atoms, instance, seed=seed, flexible_nulls=flexible_nulls
        )
        if budget is None:
            return iterator
        # Coarser than the planned matcher's per-candidate tick (one
        # tick per yielded match), but the contract — an exhausted
        # budget raises out of the iterator — is the same.
        return self._ticked(iterator, budget)

    @staticmethod
    def _ticked(iterator: Iterator[Assignment], budget) -> Iterator[Assignment]:
        for assignment in iterator:
            budget.tick()
            yield assignment

    def find(
        self,
        atoms: Sequence[Atom],
        instance: "Instance",
        *,
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        flexible_nulls: bool = False,
        budget=None,
    ) -> Optional[Assignment]:
        for assignment in self.homomorphisms(
            atoms,
            instance,
            seed=seed,
            flexible_nulls=flexible_nulls,
            budget=budget,
        ):
            return assignment
        return None

    def has(
        self,
        atoms: Sequence[Atom],
        instance: "Instance",
        *,
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        flexible_nulls: bool = False,
        budget=None,
    ) -> bool:
        return (
            self.find(
                atoms,
                instance,
                seed=seed,
                flexible_nulls=flexible_nulls,
                budget=budget,
            )
            is not None
        )

    def distinct_matches(
        self,
        atoms: Sequence[Atom],
        instance: "Instance",
        *,
        on: Sequence[Term],
        seed: Optional[Mapping[Term, GroundTerm]] = None,
        skip: Optional[set] = None,
        flexible_nulls: bool = False,
        budget=None,
    ) -> Iterator[Assignment]:
        """Post-hoc dedup on the projection (the planned matcher prunes
        the search instead; the yielded set is identical)."""
        skip = skip if skip is not None else set()
        for assignment in self.homomorphisms(
            atoms,
            instance,
            seed=seed,
            flexible_nulls=flexible_nulls,
            budget=budget,
        ):
            key = tuple(assignment[t] for t in on)
            if key in skip:
                continue
            skip.add(key)
            yield assignment

    # -- query-shape predicates (same contracts as `Matcher`) ----------
    def is_isomorphic(
        self, left: Sequence[Atom], right: Sequence[Atom]
    ) -> bool:
        """Exact isomorphism, by naive search with a post-hoc
        injectivity/variable-image filter (inputs deduplicated)."""
        from .matcher import freeze_atoms

        left = tuple(dict.fromkeys(left))
        right = tuple(dict.fromkeys(right))
        if len(left) != len(right):
            return False
        left_vars = {
            t for a in left for t in a.terms if isinstance(t, Variable)
        }
        right_vars = {
            t for a in right for t in a.terms if isinstance(t, Variable)
        }
        if len(left_vars) != len(right_vars):
            return False
        frozen, targets = freeze_atoms(right)
        for assignment in self.homomorphisms(left, frozen):
            values = list(assignment.values())
            if len(set(values)) == len(values) and all(
                value in targets for value in values
            ):
                return True
        return False

    def subsumes(
        self, smaller: Sequence[Atom], larger: Sequence[Atom]
    ) -> bool:
        """True iff `smaller` hom-maps into `larger` (as Boolean CQs)."""
        from .matcher import freeze_atoms

        frozen, __ = freeze_atoms(larger)
        return self.maps_into(smaller, frozen)

    def maps_into(self, atoms: Sequence[Atom], frozen: "Instance") -> bool:
        return self.has(atoms, frozen)

    def stats(self) -> dict:
        return {"strategy": "naive"}

    def __repr__(self) -> str:
        return "NaiveMatcher()"
