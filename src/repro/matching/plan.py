"""Compiled match plans: join orders and per-atom instruction tuples.

A `MatchPlan` freezes everything about a homomorphism search that does
not depend on the instance *contents*: the join order, and — per atom in
that order — which positions carry rigid terms (constants, and nulls
when nulls are matched rigidly), which carry soft terms already bound
when the atom is reached (seed terms and terms bound by earlier atoms),
and which bind fresh.  The planned matcher executes these instruction
tuples directly, so the per-call cost of re-deriving the order and
re-classifying every term (what the naive matcher pays on each search)
is paid once per *plan key*:

    (atoms, flexible_nulls, frozenset(seed keys))

The join order is chosen greedily — most-bound atom first, connected
atoms preferred — with ties broken **adaptively** by instance index
statistics at compile time: the estimated candidate count of an atom is
its relation bucket size, sharpened by the ``occurrence_count``
cardinality of its rigid terms.  Plans are compiled against
the first instance a key is searched on and reused for every later
search with that key (the statistics steer the order; correctness never
depends on them).

Atoms whose every position is rigid or bound-before compile to a
**ground probe**: the executor builds the one concrete fact the
assignment allows and tests membership, instead of scanning candidates.
This is the shape of every head-satisfaction check of a full TGD and of
the paper's canonical-database lookups, and is the single biggest win of
the planned matcher on closure workloads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional, Sequence

from ..logic.atoms import Atom
from ..logic.terms import GroundTerm, Null, Term, Variable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..data.instance import Instance

#: A plan cache key: (atoms, flexible_nulls, seeded terms).
PlanKey = tuple


def plan_key(
    atoms: Sequence[Atom],
    flexible_nulls: bool,
    seed: Optional[Mapping[Term, GroundTerm]],
) -> PlanKey:
    """The memoization key under which a compiled plan is shared.

    Structurally equal atom tuples hash equal, so two queries that spell
    the same body (even as distinct objects) share one plan.
    """
    return (
        tuple(atoms),
        flexible_nulls,
        frozenset(seed) if seed else frozenset(),
    )


def _is_soft(term: Term, flexible_nulls: bool) -> bool:
    """Soft terms are matched like variables; rigid ones literally."""
    return isinstance(term, Variable) or (
        flexible_nulls and isinstance(term, Null)
    )


class CompiledAtom:
    """One atom of a plan, split into executor instruction tuples.

    ``rigid``
        (position, term) pairs the fact must carry literally.
    ``bound_checks``
        (position, term) pairs whose term is guaranteed bound in the
        assignment when this atom is reached (seeded, or bound by an
        earlier atom of the order).
    ``binds``
        (position, term) pairs whose term may bind here, in position
        order (repeats within the atom fall back to an equality check
        at run time).
    ``probe_template``
        When ``binds`` is empty the atom is ground under the plan; the
        template interleaves rigid terms and bound soft terms so the
        executor can build the single admissible fact and test
        membership directly.
    """

    __slots__ = (
        "atom",
        "relation",
        "arity",
        "rigid",
        "bound_checks",
        "binds",
        "probe_template",
    )

    def __init__(
        self, atom: Atom, bound_before: set[Term], flexible_nulls: bool
    ) -> None:
        self.atom = atom
        self.relation = atom.relation
        self.arity = len(atom.terms)
        rigid: list[tuple[int, Term]] = []
        bound_checks: list[tuple[int, Term]] = []
        binds: list[tuple[int, Term]] = []
        will_bind: set[Term] = set()
        for position, term in enumerate(atom.terms):
            if not _is_soft(term, flexible_nulls):
                rigid.append((position, term))
            elif term in bound_before or term in will_bind:
                # Terms binding at an earlier position of this same atom
                # are classified as binds again: the executor's get/check
                # logic handles the repeat (the dict is authoritative).
                if term in will_bind:
                    binds.append((position, term))
                else:
                    bound_checks.append((position, term))
            else:
                binds.append((position, term))
                will_bind.add(term)
        self.rigid = tuple(rigid)
        self.bound_checks = tuple(bound_checks)
        self.binds = tuple(binds)
        if not binds:
            # (is_rigid, term): rigid terms pass through, soft terms are
            # looked up in the assignment at probe time.
            self.probe_template = tuple(
                (not _is_soft(t, flexible_nulls), t) for t in atom.terms
            )
        else:
            self.probe_template = None


class MatchPlan:
    """A compiled search for one (atom set, rigidity, seed-shape) key."""

    __slots__ = (
        "key",
        "atoms",
        "flexible_nulls",
        "seed_terms",
        "order",
        "compiled",
        "relations",
        "all_ground",
        "soft_terms",
        "stats_snapshot",
        "int_plan",
        "replan_count",
        "drift_countdown",
        "_distinct_depths",
    )

    def __init__(
        self,
        key: PlanKey,
        instance: "Instance",
    ) -> None:
        atoms, flexible_nulls, seed_terms = key
        self.key = key
        self.atoms = atoms
        self.flexible_nulls = flexible_nulls
        self.seed_terms = seed_terms
        self.order = _choose_order(atoms, seed_terms, flexible_nulls, instance)
        bound: set[Term] = set(seed_terms)
        compiled: list[CompiledAtom] = []
        soft: set[Term] = set()
        for index in self.order:
            atom = atoms[index]
            entry = CompiledAtom(atom, bound, flexible_nulls)
            compiled.append(entry)
            for __, term in entry.binds:
                bound.add(term)
            for term in atom.terms:
                if _is_soft(term, flexible_nulls):
                    soft.add(term)
        self.compiled = tuple(compiled)
        self.relations = tuple(sorted({a.relation for a in atoms}))
        self.all_ground = all(c.probe_template is not None for c in compiled)
        self.soft_terms = frozenset(soft)
        #: Relation cardinalities the join order was chosen under,
        #: aligned with `relations`.  `Matcher.plan_for` compares these
        #: against the instance being searched and recompiles the plan
        #: when they have drifted far (replan-on-drift).
        self.stats_snapshot = tuple(
            len(instance.facts_of(relation)) for relation in self.relations
        )
        #: Lazily lowered int-space form (`repro.matching.intexec`).
        self.int_plan = None
        #: How many times this key has been recompiled for drift
        #: (carried across recompiles; bounds replan churn).
        self.replan_count = 0
        #: Plan-cache hits until the next drift check (1: the very
        #: first reuse is checked, so a plan compiled against an empty
        #: instance is caught immediately; afterwards checks run every
        #: `matcher.DRIFT_CHECK_STRIDE` hits).
        self.drift_countdown = 1
        self._distinct_depths: dict[tuple[Term, ...], int] = {}

    def distinct_depth(self, on: tuple[Term, ...]) -> int:
        """The depth after which every term of ``on`` is bound.

        Returns -1 when the seed already binds all of them; raises
        ``ValueError`` when some term can never bind (it occurs neither
        in the seed shape nor softly in the atoms).
        """
        depth = self._distinct_depths.get(on)
        if depth is not None:
            return depth
        pending = {term for term in on if term not in self.seed_terms}
        if not pending:
            depth = -1
        else:
            unreachable = pending - self.soft_terms
            if unreachable:
                raise ValueError(
                    f"distinct terms never bound by the plan: {unreachable}"
                )
            # Every non-seeded soft term first occurs as a bind of some
            # atom of the order, so the walk always drains `pending`.
            for index, entry in enumerate(self.compiled):
                pending.difference_update(t for __, t in entry.binds)
                if not pending:
                    depth = index
                    break
        self._distinct_depths[on] = depth
        return depth

    def __repr__(self) -> str:
        return (
            f"MatchPlan({len(self.atoms)} atoms, order={list(self.order)}, "
            f"ground={self.all_ground})"
        )


def _estimate(
    atom: Atom, flexible_nulls: bool, instance: "Instance"
) -> int:
    """Candidate-count estimate from the instance's index statistics."""
    estimate = len(instance.facts_of(atom.relation))
    for term in atom.terms:
        if not _is_soft(term, flexible_nulls):
            occurrences = instance.occurrence_count(term)
            if occurrences < estimate:
                estimate = occurrences
    return estimate


def _choose_order(
    atoms: tuple[Atom, ...],
    seed_terms: frozenset[Term],
    flexible_nulls: bool,
    instance: "Instance",
) -> tuple[int, ...]:
    """Greedy join order: most-bound atom first, statistics break ties.

    The score of a candidate atom is (number of positions already
    determined, negated cardinality estimate); the original index breaks
    remaining ties so the order is deterministic.
    """
    remaining = list(range(len(atoms)))
    bound: set[Term] = set(seed_terms)
    order: list[int] = []
    estimates = [
        _estimate(atom, flexible_nulls, instance) for atom in atoms
    ]
    while remaining:
        best_position = 0
        best_score: Optional[tuple[int, int, int]] = None
        for position, index in enumerate(remaining):
            atom = atoms[index]
            known = sum(
                1
                for t in atom.terms
                if t in bound or not _is_soft(t, flexible_nulls)
            )
            score = (known, -estimates[index], -index)
            if best_score is None or score > best_score:
                best_score = score
                best_position = position
        chosen = remaining.pop(best_position)
        order.append(chosen)
        bound.update(atoms[chosen].terms)
    return tuple(order)
