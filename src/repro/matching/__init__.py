"""Compiled matching core: planned, memoized homomorphism evaluation.

Every decision procedure in the library — chase trigger enumeration,
restricted-chase activeness checks, EGD violation search, CQ/UCQ
evaluation, containment, and the rewriting engine's isomorphism dedup —
bottoms out in homomorphism search.  This package owns that search:

* `plan` compiles a `MatchPlan` per (atom set, rigidity, seed shape):
  an adaptive join order plus per-atom instruction tuples;
* `matcher.Matcher` executes plans with cross-call memoization — a
  bounded plan LRU, and a result/failure cache invalidated by the
  per-relation generation counters of `repro.data.Instance`;
* `naive` keeps the original backtracking search as the executable
  reference (`NaiveMatcher`) the planned matcher is cross-checked and
  benchmarked against.

`repro.logic.homomorphism` remains the stable public facade: its free
functions delegate to `default_matcher()`.  Consumers that decide many
queries against one schema should use the matcher owned by their
`repro.service.CompiledSchema` instead, so plans and check caches are
shared across calls.
"""

from .matcher import (
    DEFAULT_CHECK_CACHE_LIMIT,
    DEFAULT_PLAN_CACHE_SIZE,
    Matcher,
    default_matcher,
    freeze_atoms,
)
from .naive import NaiveMatcher, naive_homomorphisms
from .plan import CompiledAtom, MatchPlan, plan_key

__all__ = [
    "DEFAULT_CHECK_CACHE_LIMIT",
    "DEFAULT_PLAN_CACHE_SIZE",
    "CompiledAtom",
    "MatchPlan",
    "Matcher",
    "NaiveMatcher",
    "default_matcher",
    "freeze_atoms",
    "naive_homomorphisms",
    "plan_key",
]
