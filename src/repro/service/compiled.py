"""Compiled schemas: per-schema analysis amortized across queries.

The deciders in `repro.answerability` derive several expensive,
*query-independent* artifacts from a schema:

* the detected constraint class (Table-1 dispatch);
* the §4/§6 schema simplifications (existence-check, FD, choice);
* the AMonDet constraint set Γ of Prop 3.4, per simplification;
* the linearized system Σ^Lin of Prop 5.5 (truncated-accessibility
  saturation — the dominant cost of the ID route);
* the separability axioms of Thm 7.2 and the finite closure Σ* of
  Cor 7.3.

A `CompiledSchema` is an immutable artifact bundling the source schema
with a content fingerprint and a lazily-computed-then-frozen cache of
those outputs, so a `Session` (or any caller deciding many queries
against one schema) runs each analysis exactly once.  The `stats`
counters record how many times each artifact was actually built — the
test suite asserts they stay at one across repeated decisions.
"""

from __future__ import annotations

import hashlib
import json
import threading
from typing import TYPE_CHECKING, Any, Callable, Union

from ..constraints.analysis import ClassifiedConstraints, ConstraintClass
from ..constraints.fd import FunctionalDependency
from ..constraints.tgd import TGD
from ..obs.timing import stage
from ..schema.schema import Schema
from ..io import schema_to_dict

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..answerability.linearization import LinearizedSystem
    from ..answerability.simplification import SimplificationResult
    from ..containment.rewriting import RewriteEngine
    from ..matching.matcher import Matcher

#: Simplification kinds a compiled schema can hold.
SIMPLIFICATION_KINDS = ("existence-check", "fd", "choice")


def schema_fingerprint(schema: Schema) -> str:
    """A content fingerprint of the schema (order-insensitive).

    Two schemas with the same relations, attributes, methods (including
    bounds), and constraints — in any declaration order — get the same
    fingerprint; any semantic difference changes it.
    """
    description = schema_to_dict(schema)
    description["methods"] = sorted(
        description["methods"], key=lambda entry: entry["name"]
    )
    description["constraints"] = sorted(description["constraints"])
    blob = json.dumps(description, sort_keys=True)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class CompiledSchema:
    """An immutable schema plus its frozen per-schema analysis outputs.

    Build one with `compile_schema`; every decider accepts it in place
    of a raw `Schema`.  Artifacts are computed on first use and frozen;
    `stats` counts how often each was built (at most once).
    """

    def __init__(self, schema: Schema) -> None:
        # Private copy: later mutation of the caller's Schema must not
        # invalidate the fingerprint or the frozen artifacts.
        self._schema = schema.copy()
        self.fingerprint = schema_fingerprint(self._schema)
        self.classified: ClassifiedConstraints = (
            self._schema.classified_constraints()
        )
        self.constraint_class: ConstraintClass = self.classified.fragment
        self.result_bounded_methods = self._schema.result_bounded_methods()
        self.has_result_bounds = bool(self.result_bounded_methods)
        self.stats: dict[str, int] = {}
        self._artifacts: dict[str, Any] = {}
        self._store = None
        self._lock = threading.RLock()

    @property
    def schema(self) -> Schema:
        """A copy of the compiled schema (mutating it cannot desync the
        fingerprint or the frozen artifacts)."""
        return self._schema.copy()

    # ------------------------------------------------------------------
    def _artifact(self, key: str, build: Callable[[], Any]) -> Any:
        """Build-once storage: the first caller computes, the rest read."""
        with self._lock:
            if key not in self._artifacts:
                self.stats[key] = self.stats.get(key, 0) + 1
                # First-use artifact builds inside a request are
                # compile work, not decide work — attribute them so.
                with stage("compile"):
                    self._artifacts[key] = build()
            return self._artifacts[key]

    def register_metrics(self, registry) -> None:
        """Register this schema's engine/matcher/artifact counters as
        the ``schema`` provider of a `repro.obs.MetricsRegistry`.

        Samples come out fingerprint-keyed (the flattener turns the
        hex key into a bounded ``key`` label).  Registering a second
        compiled schema replaces the provider — multi-schema serving
        should observe through `SessionPool.register_metrics`, which
        covers every live fingerprint.
        """
        def schema_stats() -> dict:
            return {
                self.fingerprint: {
                    "artifacts": dict(self.stats),
                    "engine": self.engine_stats(),
                    "matcher": self.matcher_stats(),
                }
            }

        registry.register_provider("schema", schema_stats)

    def bind_store(self, store) -> None:
        """Attach a durable `repro.cache.ArtifactStore`.

        Rewrite engines built by this compiled schema (existing and
        future) get the store bound behind their result memo, under a
        namespace derived from the fingerprint and the subsumption flag
        — the inputs a memoized result depends on.
        """
        with self._lock:
            self._store = store
            for key in ("rewrite-engine", "rewrite-engine:subsumption"):
                engine = self._artifacts.get(key)
                if engine is not None:
                    engine.bind_store(
                        store, self._rewrite_namespace(key.endswith("subsumption"))
                    )

    def _rewrite_namespace(self, subsumption: bool) -> str:
        flavor = "sub" if subsumption else "nosub"
        return f"rewrite:{self.fingerprint}:{flavor}"

    # ------------------------------------------------------------------
    # Frozen artifacts
    # ------------------------------------------------------------------
    def elimub(self) -> Schema:
        """ElimUB(Sch): result bounds turned into lower bounds (Prop 3.3)."""
        from ..answerability.elimub import elim_ub

        return self._artifact("elimub", lambda: elim_ub(self._schema))

    def simplification(self, kind: str) -> "SimplificationResult":
        """The §4/§6 simplification of ElimUB(Sch) for ``kind`` (one of
        ``existence-check`` / ``fd`` / ``choice``)."""
        from ..answerability.simplification import (
            choice_simplification,
            existence_check_simplification,
            fd_simplification,
        )

        transforms = {
            "existence-check": existence_check_simplification,
            "fd": fd_simplification,
            "choice": choice_simplification,
        }
        if kind not in transforms:
            raise ValueError(f"unknown simplification kind {kind!r}")
        return self._artifact(
            f"simplification:{kind}", lambda: transforms[kind](self.elimub())
        )

    def amondet(self, kind: str) -> tuple:
        """Γ for the AMonDet containment over the ``kind``-simplified
        schema (``direct`` builds it over the original schema — only
        legal when the schema carries no result bounds)."""
        from ..answerability.axioms import amondet_constraints

        if kind == "direct":
            build = lambda: tuple(amondet_constraints(self._schema))
        else:
            build = lambda: tuple(
                amondet_constraints(self.simplification(kind).schema)
            )
        return self._artifact(f"amondet:{kind}", build)

    def linearization(self) -> "LinearizedSystem":
        """Σ^Lin of Prop 5.5 over ElimUB(Sch) (ID constraints only)."""
        from ..answerability.linearization import linearize

        return self._artifact(
            "linearization", lambda: linearize(self.elimub())
        )

    def rewrite_engine(self, *, subsumption: bool = False) -> "RewriteEngine":
        """The incremental backward-rewriting engine over Σ^Lin.

        One engine per (fingerprint, subsumption flag): every query
        decided on the ID route through this compiled schema shares its
        memoized rule index, per-atom rewrite steps, and canonical
        frontier states.  The flag is part of the artifact key because
        an engine's memoized results are fixed to the setting it was
        constructed under; both variants share this schema's matcher.
        """
        from ..containment.rewriting import RewriteEngine

        key = "rewrite-engine:subsumption" if subsumption else "rewrite-engine"

        def build() -> "RewriteEngine":
            engine = RewriteEngine(
                self.linearization().rules,
                matcher=self.matcher(),
                subsumption=subsumption,
            )
            if self._store is not None:
                engine.bind_store(
                    self._store, self._rewrite_namespace(subsumption)
                )
            return engine

        return self._artifact(key, build)

    def engine_stats(self) -> dict:
        """Cache counters of the rewrite engine(s) ({} until one is built).

        When both the plain and the subsumption-pruning engine exist,
        integer counters are summed (``rules`` is shared, not summed) so
        session-level diagnostics see the fingerprint's total rewriting
        traffic."""
        with self._lock:
            engines = [
                self._artifacts[key]
                for key in ("rewrite-engine", "rewrite-engine:subsumption")
                if key in self._artifacts
            ]
        if not engines:
            return {}
        merged = engines[0].stats()
        for engine in engines[1:]:
            for name, value in engine.stats().items():
                if name == "rules":
                    continue
                merged[name] = merged.get(name, 0) + value
        return merged

    def matcher(self) -> "Matcher":
        """The compiled homomorphism matcher owned by this fingerprint.

        Every decision routed through this schema shares its memoized
        match plans (join orders, instruction tuples) and its
        generation-invalidated check caches — chase trigger search,
        activeness checks, containment probes, and the rewrite engine's
        isomorphism dedup all run on this one matcher.
        """
        from ..matching.matcher import Matcher

        return self._artifact("matcher", lambda: Matcher())

    def matcher_stats(self) -> dict:
        """Plan/check cache counters ({} until the matcher is built)."""
        with self._lock:
            matcher = self._artifacts.get("matcher")
        return matcher.stats() if matcher is not None else {}

    def uids_fds(self) -> tuple[tuple[FunctionalDependency, ...], tuple]:
        """The Thm 7.2 artifacts: the FDs of the choice-simplified
        schema, plus the full constraint set for its GTGD containment
        (UIDs, their primed copies, and the separability axioms)."""

        def build() -> tuple[tuple[FunctionalDependency, ...], tuple]:
            from ..answerability.axioms import prime_constraint
            from ..answerability.deciders import _separability_axioms

            working = self.simplification("choice").schema
            fds = tuple(
                c
                for c in working.constraints
                if isinstance(c, FunctionalDependency)
            )
            uids = tuple(
                c for c in working.constraints if isinstance(c, TGD)
            )
            constraints = list(uids)
            constraints.extend(prime_constraint(c) for c in uids)
            constraints.extend(_separability_axioms(working, list(fds)))
            return fds, tuple(constraints)

        return self._artifact("uids-fds", build)

    def finite_closure(self) -> "CompiledSchema":
        """Sch* of Cor 7.3, compiled (UIDs + FDs finite variant)."""
        from ..answerability.finite import schema_with_finite_closure

        return self._artifact(
            "finite-closure",
            lambda: CompiledSchema(schema_with_finite_closure(self._schema)),
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"CompiledSchema({self.fingerprint[:12]}, "
            f"{self.constraint_class.value}, "
            f"{len(self._schema.relations)} relations, "
            f"{len(self._schema.methods)} methods)"
        )


def compile_schema(schema: Schema) -> CompiledSchema:
    """Compile a schema into an immutable, analysis-carrying artifact."""
    return CompiledSchema(schema)


def as_compiled(schema: Union[Schema, CompiledSchema]) -> CompiledSchema:
    """Coerce: pass compiled schemas through, compile raw ones."""
    if isinstance(schema, CompiledSchema):
        return schema
    return compile_schema(schema)
