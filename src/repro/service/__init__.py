"""Service layer: compiled schemas and decision sessions.

This package is the architectural seam between the paper's decision
procedures (`repro.answerability`) and anything that serves them — the
CLI, a batch pipeline, or a future server/shard:

* `compile_schema` / `CompiledSchema` — per-schema analysis (constraint
  classification, simplifications, AMonDet axioms, linearization) run
  once and frozen, with a content `fingerprint` for routing and caching;
* `Session` — `decide` / `decide_many` / `plan` / `explain` with an LRU
  decision cache and per-session resource limits;
* the wire types live in `repro.io` (`DecideRequest`, `DecideResponse`,
  `PlanResponse`).
"""

from ..io import DecideRequest, DecideResponse, ErrorFrame, PlanResponse
from .compiled import (
    CompiledSchema,
    as_compiled,
    compile_schema,
    schema_fingerprint,
)
from .session import Session, canonical_query_key

__all__ = [
    "CompiledSchema", "as_compiled", "compile_schema",
    "schema_fingerprint",
    "Session", "canonical_query_key",
    "DecideRequest", "DecideResponse", "ErrorFrame", "PlanResponse",
]
