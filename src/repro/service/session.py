"""Sessions: the user-facing service facade.

A `Session` binds a `CompiledSchema` to per-session resource limits and
an LRU decision cache, and exposes the four service verbs:

* ``decide(query)`` — monotone answerability, as a `DecideResponse`;
* ``decide_many(queries)`` — the batch form, one response per query;
* ``plan(query)`` — static-plan extraction, as a `PlanResponse`;
* ``explain(query)`` — the decision plus compilation/cache diagnostics.

Queries may be `ConjunctiveQuery` objects or text in the
`repro.logic.parser` syntax.  The cache key is the pair (schema
fingerprint, canonical query form): queries that differ only in
variable names or in the query name share an entry.  Responses are
wire-ready (`to_dict`) and mark cache hits with ``cached=True``.

Resource limits (``max_rounds``, ``max_facts``) bound the semidecidable
chase routes, replacing the per-call keyword defaults of the free
functions; routes with their own termination guarantee (the FD chase,
the linearized-rewriting ID route) are unaffected by ``max_rounds``.
``max_disjuncts`` bounds the ID route's backward rewriting; exceeding
it yields UNKNOWN with a structured ``error`` on the response instead
of a traceback.  ``subsumption`` (on by default) lets the ID route
prune rewriting disjuncts hom-implied by smaller kept ones — the
pruned UCQ is logically equivalent, so decisions are unchanged;
``subsumption=False`` restores the raw rewriting output.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Iterable, Optional, Union

from ..answerability.deciders import (
    DEFAULT_CHASE_FACTS,
    DEFAULT_CHASE_ROUNDS,
    AnswerabilityResult,
    decide_monotone_answerability,
)
from ..containment.rewriting import DEFAULT_MAX_DISJUNCTS
from ..answerability.finite import decide_finite_monotone_answerability
from ..answerability.plangen import PlanExtractionError, generate_static_plan
from ..io import DecideResponse, PlanResponse, json_safe
from ..logic.parser import parse_cq
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import Constant, Variable
from ..obs.timing import stage
from ..runtime import Budget
from ..schema.schema import Schema
from .compiled import CompiledSchema, as_compiled

QueryLike = Union[str, ConjunctiveQuery]


def canonical_query_key(query: ConjunctiveQuery) -> str:
    """A canonical text form of a CQ, stable under variable renaming.

    Variables are numbered by first occurrence (free variables keep
    their answer positions); constants carry their value.  Two queries
    with the same key are identical up to variable names and the query
    name, so a cached decision transfers.
    """
    renaming: dict[Variable, str] = {}

    def term_key(term: Any) -> str:
        if isinstance(term, Variable):
            if term not in renaming:
                renaming[term] = f"?{len(renaming)}"
            return renaming[term]
        if isinstance(term, Constant):
            return f"c:{term.value!r}"
        return f"t:{term!r}"

    atoms = ";".join(
        f"{atom.relation}({','.join(term_key(t) for t in atom.terms)})"
        for atom in query.atoms
    )
    free = ",".join(term_key(v) for v in query.free_variables)
    return f"{atoms}|{free}"


class Session:
    """A reusable decision session over one compiled schema.

    ::

        session = Session(schema, max_rounds=50)
        response = session.decide("Udirectory(i, a, p)")
        assert response.is_yes
        wire = response.to_dict()          # JSON-ready

    Thread-safe: the compiled artifacts freeze after first use and the
    decision cache takes a lock; concurrent `decide` calls are fine.
    """

    def __init__(
        self,
        schema: Union[Schema, CompiledSchema],
        *,
        max_rounds: Optional[int] = DEFAULT_CHASE_ROUNDS,
        max_facts: int = DEFAULT_CHASE_FACTS,
        max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
        subsumption: bool = True,
        chase_parallelism: int = 0,
        cache_size: int = 1024,
        store=None,
    ) -> None:
        self.compiled = as_compiled(schema)
        self.max_rounds = max_rounds
        self.max_facts = max_facts
        self.max_disjuncts = max_disjuncts
        self.subsumption = subsumption
        #: Worker threads for the chase's per-round trigger collection
        #: (0/1 = sequential; see `repro.chase.engine.chase`).  Results
        #: are deterministic and identical for every setting.
        self.chase_parallelism = chase_parallelism
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, Any] = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        #: Optional durable `repro.cache.ArtifactStore` behind the LRU:
        #: decisions and plans are loaded through it on memory misses
        #: and written through on fresh computes; the compiled schema's
        #: rewrite engines persist their result memo into the same
        #: store.  A decision's durable key includes every limit that
        #: can change the answer, so two sessions only ever share
        #: entries they would have computed identically.
        self.store = store
        self.durable_hits = 0
        if store is not None:
            self.compiled.bind_store(store)

    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self.compiled.schema

    @property
    def fingerprint(self) -> str:
        return self.compiled.fingerprint

    def _coerce(self, query: QueryLike) -> ConjunctiveQuery:
        if isinstance(query, str):
            return parse_cq(query)
        return query

    def _cache_get(self, key: tuple) -> Optional[Any]:
        with self._lock:
            if key in self._cache:
                self._cache.move_to_end(key)
                self.hits += 1
                return self._cache[key]
            self.misses += 1
            return None

    def _cache_put(self, key: tuple, value: Any) -> None:
        if self.cache_size <= 0:
            return
        with self._lock:
            self._cache[key] = value
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Durable tier (load-through / write-through around the LRU)
    # ------------------------------------------------------------------
    def _durable_key(self, op: str, canon: str, finite: bool = False) -> str:
        """Address of one decision in the durable store.

        Besides the operation and the canonical query form, the key
        folds in every session limit that can change the answer
        (``max_rounds``/``max_facts``/``max_disjuncts``/``subsumption``)
        — sessions under different limits never share durable entries.
        ``chase_parallelism`` is deliberately excluded: results are
        guaranteed identical for every setting.
        """
        text = "|".join(
            (
                op,
                canon,
                str(bool(finite)),
                str(self.max_rounds),
                str(self.max_facts),
                str(self.max_disjuncts),
                str(self.subsumption),
            )
        )
        return hashlib.sha256(text.encode("utf-8")).hexdigest()

    def _durable_load(self, key_text: str, decode) -> Optional[Any]:
        with stage("persist"):
            payload = self.store.load(
                "decision",
                f"decision:{self.compiled.fingerprint}",
                key_text,
            )
        if not isinstance(payload, dict):
            return None
        try:
            response = decode(payload)
        except (KeyError, TypeError, ValueError):
            return None
        if response.fingerprint != self.compiled.fingerprint:
            return None
        self.durable_hits += 1
        return response

    def _durable_put(self, key_text: str, response: Any) -> None:
        with stage("persist"):
            self.store.store(
                "decision",
                f"decision:{self.compiled.fingerprint}",
                key_text,
                response.to_dict(),
            )

    # ------------------------------------------------------------------
    # Service verbs
    # ------------------------------------------------------------------
    def decide(
        self,
        query: QueryLike,
        *,
        finite: bool = False,
        budget: Optional[Budget] = None,
    ) -> DecideResponse:
        """Decide monotone answerability; cached by canonical form.

        ``budget`` is threaded through the decision procedures
        (chase rounds, rewriting expansions, matcher backtracking all
        poll it); an exhausted budget raises
        `repro.runtime.DeadlineExceeded` out of this method *without*
        caching anything — a deadline abort is a property of the
        request, not of the query, so it must never masquerade as a
        decision on later lookups.  Cache hits are served even when the
        budget is already exhausted (they cost microseconds).
        """
        started = time.perf_counter()
        parsed = self._coerce(query)
        key = ("decide", canonical_query_key(parsed), finite)
        hit = self._cache_get(key)
        durable_key: Optional[str] = None
        if self.store is not None:
            durable_key = self._durable_key("decide", key[1], finite)
            if hit is None:
                hit = self._durable_load(
                    durable_key, DecideResponse.from_dict
                )
                if hit is not None:
                    self._cache_put(key, hit)
        if hit is not None:
            # Fresh copy (detail included): callers may annotate the
            # response without poisoning the cache entry.  elapsed_ms is
            # this lookup's cost, not the original decision's.
            return replace(
                hit,
                cached=True,
                query=repr(parsed),
                elapsed_ms=round(
                    (time.perf_counter() - started) * 1000.0, 3
                ),
                detail=copy.deepcopy(hit.detail),
                error=copy.deepcopy(hit.error),
            )
        if budget is not None:
            budget.check()
        result = self._decide_result(parsed, finite=finite, budget=budget)
        # Promote a structured error (e.g. RewritingBudgetExceeded) to
        # the top-level wire field; it leaves `detail` so the payload
        # carries it exactly once.
        detail = dict(result.decision.detail)
        structured_error = detail.get("error")
        if isinstance(structured_error, dict):
            del detail["error"]
        else:
            structured_error = None
        response = DecideResponse(
            query=repr(parsed),
            decision=result.truth.value,
            reason=result.decision.reason,
            route=result.route,
            constraint_class=result.constraint_class.value,
            fingerprint=self.compiled.fingerprint,
            cached=False,
            elapsed_ms=round(
                (time.perf_counter() - started) * 1000.0, 3
            ),
            detail=json_safe(detail),
            error=json_safe(structured_error)
            if structured_error is not None
            else None,
        )
        if response.error is None:
            cacheable = replace(
                response,
                detail=copy.deepcopy(response.detail),
                error=None,
            )
            self._cache_put(key, cacheable)
            if durable_key is not None:
                self._durable_put(durable_key, cacheable)
        # Responses carrying a structured error (rewriting/chase budget
        # hits) are *not* cached: they reflect resource limits, not the
        # query, and must be recomputed — and rechecked against the
        # limits — on every request.
        return response

    def _decide_result(
        self,
        query: ConjunctiveQuery,
        *,
        finite: bool,
        budget: Optional[Budget] = None,
    ) -> AnswerabilityResult:
        if finite:
            return decide_finite_monotone_answerability(
                self.compiled,
                query,
                max_rounds=self.max_rounds,
                max_facts=self.max_facts,
                max_disjuncts=self.max_disjuncts,
                subsumption=self.subsumption,
                budget=budget,
                parallelism=self.chase_parallelism,
            )
        return decide_monotone_answerability(
            self.compiled,
            query,
            max_rounds=self.max_rounds,
            max_facts=self.max_facts,
            max_disjuncts=self.max_disjuncts,
            subsumption=self.subsumption,
            budget=budget,
            parallelism=self.chase_parallelism,
        )

    def decide_many(
        self,
        queries: Iterable[QueryLike],
        *,
        finite: bool = False,
        budget: Optional[Budget] = None,
    ) -> list[DecideResponse]:
        """Decide a batch of queries against the shared compiled schema."""
        return [
            self.decide(query, finite=finite, budget=budget)
            for query in queries
        ]

    def plan(
        self, query: QueryLike, *, budget: Optional[Budget] = None
    ) -> PlanResponse:
        """Extract a static plan (Boolean queries); cached like decide."""
        parsed = self._coerce(query)
        key = ("plan", canonical_query_key(parsed))
        hit = self._cache_get(key)
        durable_key: Optional[str] = None
        if self.store is not None:
            durable_key = self._durable_key("plan", key[1])
            if hit is None:
                hit = self._durable_load(durable_key, PlanResponse.from_dict)
                if hit is not None:
                    self._cache_put(key, hit)
        if hit is not None:
            return replace(hit, cached=True, query=repr(parsed))
        if budget is not None:
            budget.check()
        try:
            plan = generate_static_plan(
                self.compiled,
                parsed,
                max_rounds=self.max_rounds,
                max_facts=self.max_facts,
                max_disjuncts=self.max_disjuncts,
                subsumption=self.subsumption,
                budget=budget,
            )
        except PlanExtractionError as error:
            return PlanResponse(
                query=repr(parsed),
                answerable=False,
                reason=str(error),
                fingerprint=self.compiled.fingerprint,
            )
        if plan is None:
            response = PlanResponse(
                query=repr(parsed),
                answerable=False,
                reason=(
                    "the query is not (provably) monotone answerable "
                    "through a chase certificate"
                ),
                fingerprint=self.compiled.fingerprint,
            )
        else:
            response = PlanResponse(
                query=repr(parsed),
                answerable=True,
                plan=str(plan),
                fingerprint=self.compiled.fingerprint,
            )
        # Store a copy so caller attribute assignment cannot poison the
        # cache entry (all field values are immutable).
        cacheable = replace(response)
        self._cache_put(key, cacheable)
        if durable_key is not None:
            self._durable_put(durable_key, cacheable)
        return response

    def explain(
        self,
        query: QueryLike,
        *,
        finite: bool = False,
        budget: Optional[Budget] = None,
    ) -> dict:
        """The decision plus session/compilation diagnostics, JSON-safe."""
        response = self.decide(query, finite=finite, budget=budget)
        report = response.to_dict()
        report["limits"] = {
            "max_rounds": self.max_rounds,
            "max_facts": self.max_facts,
            "max_disjuncts": self.max_disjuncts,
            "subsumption": self.subsumption,
            "chase_parallelism": self.chase_parallelism,
        }
        report["cache"] = self.cache_info()
        report["compile_stats"] = dict(self.compiled.stats)
        report["rewrite_engine"] = self.compiled.engine_stats()
        report["matching"] = self.compiled.matcher_stats()
        return report

    # ------------------------------------------------------------------
    def cache_info(self) -> dict:
        with self._lock:
            info = {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._cache),
                "capacity": self.cache_size,
            }
            if self.store is not None:
                info["durable_hits"] = self.durable_hits
            return info

    def stats(self) -> dict:
        """Session-wide diagnostics: decision cache, per-schema compile
        counters, and the cross-query cache traffic of the rewrite
        engine and the compiled matcher (plan-cache and check-cache
        hit counters).  With a durable store bound, its per-tier
        hit/miss/write/invalid counters appear under ``store``."""
        report = {
            "fingerprint": self.compiled.fingerprint,
            "cache": self.cache_info(),
            "compile_stats": dict(self.compiled.stats),
            "rewrite_engine": self.compiled.engine_stats(),
            "matching": self.compiled.matcher_stats(),
        }
        if self.store is not None:
            report["store"] = self.store.stats()
        return report

    def clear_cache(self) -> None:
        with self._lock:
            self._cache.clear()

    def __repr__(self) -> str:
        return (
            f"Session({self.compiled!r}, max_rounds={self.max_rounds}, "
            f"max_facts={self.max_facts})"
        )
