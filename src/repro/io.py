"""Loading schemas and queries from JSON descriptions (CLI support).

The JSON schema format::

    {
      "relations": {"Prof": 3, "Udirectory": 3},
      "attributes": {"Prof": ["id", "name", "salary"]},        // optional
      "methods": [
        {"name": "pr", "relation": "Prof", "inputs": [1]},
        {"name": "ud", "relation": "Udirectory", "inputs": [],
         "result_bound": 100}
      ],
      "constraints": [
        "Prof(i,n,s) -> Udirectory(i,a,p)",     // TGD/ID text syntax
        "Udirectory: 1 -> 2"                     // FD text syntax
      ]
    }

Positions in the JSON (method inputs, FD positions) are **1-based**, as
in the paper.  Queries use the text syntax of `repro.logic.parser`:
``"Q(n) :- Prof(i, n, 10000)"`` or a bare Boolean body.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Union

from .constraints.fd import parse_fd
from .constraints.tgd import tgd
from .logic.parser import parse_cq
from .logic.queries import ConjunctiveQuery
from .schema.schema import Schema


class SchemaFormatError(ValueError):
    """Raised on malformed JSON schema descriptions."""


def schema_from_dict(description: dict[str, Any]) -> Schema:
    """Build a `Schema` from a parsed JSON description."""
    if "relations" not in description:
        raise SchemaFormatError("missing 'relations' section")
    schema = Schema()
    attributes = description.get("attributes", {})
    for name, arity in description["relations"].items():
        if not isinstance(arity, int) or arity < 0:
            raise SchemaFormatError(f"bad arity for relation {name}")
        schema.add_relation(name, arity, attributes.get(name))
    for method in description.get("methods", []):
        try:
            name = method["name"]
            relation = method["relation"]
        except KeyError as missing:
            raise SchemaFormatError(
                f"method entry missing {missing}: {method}"
            ) from None
        inputs = [i - 1 for i in method.get("inputs", [])]
        if any(i < 0 for i in inputs):
            raise SchemaFormatError(
                f"method {name}: input positions are 1-based"
            )
        schema.add_method(
            name,
            relation,
            inputs=inputs,
            result_bound=method.get("result_bound"),
            result_lower_bound=method.get("result_lower_bound"),
        )
    for text in description.get("constraints", []):
        if "->" in text and ":" in text.split("->")[0] and "(" not in text:
            schema.add_constraint(parse_fd(text))
        else:
            schema.add_constraint(tgd(text))
    return schema


def load_schema(path: Union[str, Path]) -> Schema:
    """Load a schema from a JSON file."""
    with open(path) as handle:
        description = json.load(handle)
    return schema_from_dict(description)


def load_query(text_or_path: str) -> ConjunctiveQuery:
    """Parse a query from text, or from a file if the argument is a
    readable path."""
    candidate = Path(text_or_path)
    if candidate.exists() and candidate.is_file():
        text_or_path = candidate.read_text().strip()
    return parse_cq(text_or_path)


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Serialize a schema back to the JSON description format."""
    description: dict[str, Any] = {
        "relations": {r.name: r.arity for r in schema.relations},
        "methods": [],
        "constraints": [repr(c) for c in schema.constraints],
    }
    attributes = {
        r.name: list(r.attributes)
        for r in schema.relations
        if r.attributes
    }
    if attributes:
        description["attributes"] = attributes
    for method in schema.methods:
        entry: dict[str, Any] = {
            "name": method.name,
            "relation": method.relation.name,
            "inputs": [i + 1 for i in method.sorted_input_positions],
        }
        if method.result_bound is not None:
            entry["result_bound"] = method.result_bound
        if method.result_lower_bound is not None:
            entry["result_lower_bound"] = method.result_lower_bound
        description["methods"].append(entry)
    return description
