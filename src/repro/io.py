"""Wire formats: schemas, queries, and service requests/responses.

This module is the serialization boundary of the library: everything a
server, batch pipeline, or CLI exchanges goes through the codecs here.

The JSON schema format::

    {
      "relations": {"Prof": 3, "Udirectory": 3},
      "attributes": {"Prof": ["id", "name", "salary"]},        // optional
      "methods": [
        {"name": "pr", "relation": "Prof", "inputs": [1]},
        {"name": "ud", "relation": "Udirectory", "inputs": [],
         "result_bound": 100}
      ],
      "constraints": [
        "Prof(i,n,s) -> Udirectory(i,a,p)",     // TGD/ID text syntax
        "Udirectory: 1 -> 2",                    // FD text syntax
        "[tau] Prof(i,n,s) -> Udirectory(i,a,p)" // optional [name] label
      ]
    }

Positions in the JSON (method inputs, FD positions) are **1-based**, as
in the paper.  Queries use the text syntax of `repro.logic.parser`:
``"Q(n) :- Prof(i, n, 10000)"`` or a bare Boolean body.

`schema_to_dict` / `schema_from_dict` round-trip: relations, attributes,
methods (inputs, result bounds, lower bounds), and constraints —
including constraint names, emitted as a ``[name]`` label prefix.

The request/response dataclasses (`DecideRequest`, `DecideResponse`,
`PlanResponse`, `ErrorFrame`) are the typed wire surface of
`repro.service.Session`; each carries ``to_dict`` / ``from_dict`` JSON
codecs so every result is directly serializable (used by the ``--json``
and ``batch`` CLI modes, and by the JSON-lines protocol of
`repro.server`).

Requests carry an ``op`` (default ``"decide"``): ``"plan"`` asks for a
static plan (`PlanResponse`), ``"stats"`` for serving-side diagnostics,
``"ping"`` for a liveness probe.  A request the server cannot process —
unparseable JSON, a bad schema, an unknown op — always comes back as an
`ErrorFrame` (``{"error": {"type": ..., "message": ...}}``), never as a
stack trace or a dropped connection.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from .constraints.fd import parse_fd
from .constraints.tgd import tgd
from .logic.parser import parse_cq
from .logic.queries import ConjunctiveQuery
from .schema.schema import Schema


class SchemaFormatError(ValueError):
    """Raised on malformed JSON schema descriptions."""


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------
def parse_constraint(text: str):
    """Parse one constraint string: TGD/ID or FD, with an optional
    ``[name]`` label prefix (the form `repr` emits)."""
    name = ""
    stripped = text.strip()
    if stripped.startswith("["):
        label, bracket, rest = stripped[1:].partition("]")
        if not bracket:
            raise SchemaFormatError(f"unterminated constraint label: {text!r}")
        name, stripped = label.strip(), rest.strip()
    head = stripped.split("->", 1)[0]
    if "->" in stripped and ":" in head and "(" not in stripped:
        parsed = parse_fd(stripped)
        if name:
            parsed = dataclasses.replace(parsed, name=name)
        return parsed
    return tgd(stripped, name=name)


def schema_from_dict(description: dict[str, Any]) -> Schema:
    """Build a `Schema` from a parsed JSON description."""
    if "relations" not in description:
        raise SchemaFormatError("missing 'relations' section")
    if not isinstance(description["relations"], dict):
        raise SchemaFormatError(
            "'relations' must map names to arities, got "
            f"{type(description['relations']).__name__}"
        )
    schema = Schema()
    attributes = description.get("attributes", {})
    for name, arity in description["relations"].items():
        if not isinstance(arity, int) or arity < 0:
            raise SchemaFormatError(f"bad arity for relation {name}")
        schema.add_relation(name, arity, attributes.get(name))
    for method in description.get("methods", []):
        try:
            name = method["name"]
            relation = method["relation"]
        except KeyError as missing:
            raise SchemaFormatError(
                f"method entry missing {missing}: {method}"
            ) from None
        inputs = [i - 1 for i in method.get("inputs", [])]
        if any(i < 0 for i in inputs):
            raise SchemaFormatError(
                f"method {name}: input positions are 1-based"
            )
        schema.add_method(
            name,
            relation,
            inputs=inputs,
            result_bound=method.get("result_bound"),
            result_lower_bound=method.get("result_lower_bound"),
        )
    for text in description.get("constraints", []):
        schema.add_constraint(parse_constraint(text))
    return schema


def load_schema(path: Union[str, Path]) -> Schema:
    """Load a schema from a JSON file."""
    with open(path) as handle:
        description = json.load(handle)
    return schema_from_dict(description)


def load_query(text_or_path: str) -> ConjunctiveQuery:
    """Parse a query from text, or from a file if the argument is a
    readable path."""
    candidate = Path(text_or_path)
    if candidate.exists() and candidate.is_file():
        text_or_path = candidate.read_text().strip()
    return parse_cq(text_or_path)


def load_warm_manifest(path: Union[str, Path]) -> list[dict[str, Any]]:
    """Load a fingerprint warmup manifest: the schemas a worker
    precompiles *before* it reports ready (and, in a fleet, before it
    joins the ring), so first requests on warmed fingerprints never pay
    compile latency.

    The file is either a JSON object ``{"schemas": [...]}`` or a bare
    JSON array; each entry is an inline schema description (the
    `schema_from_dict` format) or a string path to a schema JSON file,
    resolved relative to the manifest.  Returns the inline descriptions
    (paths loaded and serialized), validated by a full compile-free
    parse — a malformed manifest fails the worker at startup, not at
    first request.
    """
    manifest_path = Path(path)
    with open(manifest_path) as handle:
        payload = json.load(handle)
    if isinstance(payload, dict):
        entries = payload.get("schemas")
        if not isinstance(entries, list):
            raise SchemaFormatError(
                f"warm manifest {manifest_path}: expected a 'schemas' list"
            )
    elif isinstance(payload, list):
        entries = payload
    else:
        raise SchemaFormatError(
            f"warm manifest {manifest_path}: expected an object or array, "
            f"got {type(payload).__name__}"
        )
    # One validation path with the bundle loader: every entry is
    # resolved and eagerly parsed by the shared validator, so both warm
    # sources fail identically (with the typed `WarmupError`).
    from .cache.bundle import validate_schema_entries

    return validate_schema_entries(
        entries,
        f"warm manifest {manifest_path}",
        base_dir=manifest_path.parent,
    )


def schema_to_dict(schema: Schema) -> dict[str, Any]:
    """Serialize a schema back to the JSON description format."""
    description: dict[str, Any] = {
        "relations": {r.name: r.arity for r in schema.relations},
        "methods": [],
        "constraints": [repr(c) for c in schema.constraints],
    }
    attributes = {
        r.name: list(r.attributes)
        for r in schema.relations
        if r.attributes
    }
    if attributes:
        description["attributes"] = attributes
    for method in schema.methods:
        entry: dict[str, Any] = {
            "name": method.name,
            "relation": method.relation.name,
            "inputs": [i + 1 for i in method.sorted_input_positions],
        }
        if method.result_bound is not None:
            entry["result_bound"] = method.result_bound
        if method.result_lower_bound is not None:
            entry["result_lower_bound"] = method.result_lower_bound
        description["methods"].append(entry)
    return description


# ----------------------------------------------------------------------
# Service requests and responses
# ----------------------------------------------------------------------
def json_safe(value: Any) -> Any:
    """Project a value onto the JSON-serializable subset.

    Primitives pass through; containers are converted recursively;
    everything else (certificates, chase results, ...) becomes its repr.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [json_safe(v) for v in value]
    return repr(value)


#: Operations a request frame may carry.  ``decide``/``plan`` need a
#: query; ``stats``, ``ping``, and ``metrics`` are serving-side
#: introspection frames (``metrics`` returns a `repro.obs` registry
#: snapshot, fleet-aggregated when the dispatcher answers it).
REQUEST_OPS = ("decide", "plan", "stats", "ping", "metrics")


@dataclass
class DecideRequest:
    """One request frame: an operation plus optional per-request knobs.

    ``schema`` is an optional inline JSON schema description; when
    absent the processing session's schema applies (the batch CLI and
    the server compile and cache inline schemas by their serialized
    form, then route by content fingerprint).  ``op`` defaults to
    ``"decide"``; ``"plan"`` yields a `PlanResponse`, ``"stats"`` the
    processor's aggregated diagnostics, ``"ping"`` a liveness pong.
    """

    query: str = ""
    schema: Optional[dict[str, Any]] = None
    id: Optional[Union[str, int]] = None
    finite: bool = False
    op: str = "decide"
    #: Per-request wall-clock budget in milliseconds; the processing
    #: side cancels the decision cooperatively once it is exhausted and
    #: answers with a retryable ``DeadlineExceeded`` error frame.  None
    #: defers to the server's configured default (if any).
    deadline_ms: Optional[float] = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {}
        if self.query:
            payload["query"] = self.query
        if self.schema is not None:
            payload["schema"] = self.schema
        if self.id is not None:
            payload["id"] = self.id
        if self.finite:
            payload["finite"] = True
        if self.op != "decide":
            payload["op"] = self.op
        if self.deadline_ms is not None:
            payload["deadline_ms"] = self.deadline_ms
        return payload

    @staticmethod
    def from_dict(payload: Union[str, dict[str, Any]]) -> "DecideRequest":
        if isinstance(payload, str):
            return DecideRequest(query=payload)
        if not isinstance(payload, dict):
            raise SchemaFormatError(
                f"request frame must be a string or object, "
                f"got {type(payload).__name__}"
            )
        op = payload.get("op", "decide")
        if op not in REQUEST_OPS:
            raise SchemaFormatError(
                f"unknown op {op!r} (expected one of {REQUEST_OPS})"
            )
        query = payload.get("query", "")
        if not isinstance(query, str):
            raise SchemaFormatError(
                f"'query' must be a string, got {type(query).__name__}"
            )
        if op in ("decide", "plan") and not query:
            raise SchemaFormatError(f"request missing 'query': {payload}")
        schema = payload.get("schema")
        if schema is not None and not isinstance(schema, dict):
            raise SchemaFormatError(
                f"'schema' must be an object, got {type(schema).__name__}"
            )
        request_id = payload.get("id")
        if request_id is not None and not isinstance(
            request_id, (str, int)
        ):
            raise SchemaFormatError(
                f"'id' must be a string or integer, "
                f"got {type(request_id).__name__}"
            )
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None:
            if (
                isinstance(deadline_ms, bool)
                or not isinstance(deadline_ms, (int, float))
                or deadline_ms <= 0
            ):
                raise SchemaFormatError(
                    f"'deadline_ms' must be a positive number, "
                    f"got {deadline_ms!r}"
                )
            deadline_ms = float(deadline_ms)
        return DecideRequest(
            query=query,
            schema=schema,
            id=request_id,
            finite=bool(payload.get("finite", False)),
            op=op,
            deadline_ms=deadline_ms,
        )


@dataclass
class DecideResponse:
    """The wire form of one answerability decision.

    ``decision`` is ``"yes"`` / ``"no"`` / ``"unknown"`` (the CLI maps
    these to exit codes 0/1/2); ``fingerprint`` identifies the compiled
    schema that produced the answer; ``cached`` marks session-cache hits.
    ``error`` carries a structured, machine-readable failure (e.g. a
    ``RewritingBudgetExceeded`` with its budget and the size reached)
    when the decision is UNKNOWN because a resource limit was hit.
    """

    query: str
    decision: str
    reason: str = ""
    route: str = ""
    constraint_class: str = ""
    fingerprint: str = ""
    cached: bool = False
    elapsed_ms: Optional[float] = None
    id: Optional[Union[str, int]] = None
    detail: dict[str, Any] = field(default_factory=dict)
    error: Optional[dict[str, Any]] = None

    @property
    def is_yes(self) -> bool:
        return self.decision == "yes"

    @property
    def is_no(self) -> bool:
        return self.decision == "no"

    @property
    def is_unknown(self) -> bool:
        return self.decision == "unknown"

    @property
    def exit_code(self) -> int:
        return {"yes": 0, "no": 1, "unknown": 2}[self.decision]

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "query": self.query,
            "decision": self.decision,
            "reason": self.reason,
            "route": self.route,
            "constraint_class": self.constraint_class,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
        }
        if self.elapsed_ms is not None:
            payload["elapsed_ms"] = self.elapsed_ms
        if self.id is not None:
            payload["id"] = self.id
        if self.detail:
            payload["detail"] = json_safe(self.detail)
        if self.error is not None:
            payload["error"] = json_safe(self.error)
        return payload

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "DecideResponse":
        return DecideResponse(
            query=payload["query"],
            decision=payload["decision"],
            reason=payload.get("reason", ""),
            route=payload.get("route", ""),
            constraint_class=payload.get("constraint_class", ""),
            fingerprint=payload.get("fingerprint", ""),
            cached=bool(payload.get("cached", False)),
            elapsed_ms=payload.get("elapsed_ms"),
            id=payload.get("id"),
            detail=dict(payload.get("detail", {})),
            error=payload.get("error"),
        )


@dataclass
class PlanResponse:
    """The wire form of a plan extraction.

    ``plan`` is the plan-language text (None when the query is not
    provably monotone answerable); ``answerable`` mirrors whether a plan
    was produced.
    """

    query: str
    answerable: bool
    plan: Optional[str] = None
    reason: str = ""
    fingerprint: str = ""
    cached: bool = False
    id: Optional[Union[str, int]] = None

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {
            "query": self.query,
            "answerable": self.answerable,
            "plan": self.plan,
            "fingerprint": self.fingerprint,
            "cached": self.cached,
        }
        if self.reason:
            payload["reason"] = self.reason
        if self.id is not None:
            payload["id"] = self.id
        return payload

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "PlanResponse":
        return PlanResponse(
            query=payload["query"],
            answerable=bool(payload["answerable"]),
            plan=payload.get("plan"),
            reason=payload.get("reason", ""),
            fingerprint=payload.get("fingerprint", ""),
            cached=bool(payload.get("cached", False)),
            id=payload.get("id"),
        )


@dataclass
class ErrorFrame:
    """The wire form of a failed request: structured, never a traceback.

    ``type`` is the exception class name (``SchemaFormatError``,
    ``ParseError``, ...), ``message`` its text; ``detail`` carries
    machine-readable context (the offending line, a budget, ...).  The
    serialized form nests them under a single ``error`` key so stream
    consumers can discriminate response frames from error frames by key
    (a `DecideResponse` uses ``error`` for a *decision-level* resource
    failure and always carries ``decision``; an `ErrorFrame` never
    does).

    ``retryable`` is the machine-readable retry contract: True means
    the same request may succeed if resent (transient overload, an
    exhausted deadline, a draining server); False means the request
    itself is at fault and retrying verbatim cannot help (malformed
    JSON, a bad schema, an unknown op).  ``retry_after_ms``, when
    present, hints how long to back off first.  Both default off, so
    frames produced by older peers parse unchanged (absent ⇒ not
    retryable, no hint).  The full error-type taxonomy is documented in
    DESIGN.md's wire-protocol section.
    """

    type: str
    message: str
    id: Optional[Union[str, int]] = None
    detail: dict[str, Any] = field(default_factory=dict)
    retryable: bool = False
    retry_after_ms: Optional[float] = None

    @staticmethod
    def from_exception(
        error: BaseException,
        *,
        id: Optional[Union[str, int]] = None,
        **detail: Any,
    ) -> "ErrorFrame":
        """Build a frame, lifting the exception's retry contract.

        Exceptions may declare ``retryable`` (bool) and
        ``retry_after_ms`` (float) attributes — `repro.runtime`'s
        `DeadlineExceeded` and `Overloaded` do — which map straight
        onto the wire fields; anything else is non-retryable.
        """
        return ErrorFrame(
            type=type(error).__name__,
            message=str(error),
            id=id,
            detail=detail,
            retryable=bool(getattr(error, "retryable", False)),
            retry_after_ms=getattr(error, "retry_after_ms", None),
        )

    def to_dict(self) -> dict[str, Any]:
        error: dict[str, Any] = {
            "type": self.type,
            "message": self.message,
            "retryable": self.retryable,
        }
        if self.retry_after_ms is not None:
            error["retry_after_ms"] = self.retry_after_ms
        if self.detail:
            error["detail"] = json_safe(self.detail)
        payload: dict[str, Any] = {"error": error}
        if self.id is not None:
            payload["id"] = self.id
        return payload

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "ErrorFrame":
        error = payload["error"]
        return ErrorFrame(
            type=error["type"],
            message=error.get("message", ""),
            id=payload.get("id"),
            detail=dict(error.get("detail", {})),
            retryable=bool(error.get("retryable", False)),
            retry_after_ms=error.get("retry_after_ms"),
        )


@dataclass
class ReadyFrame:
    """The machine-parsable readiness handshake of a serving process.

    ``python -m repro serve`` (and ``fleet``) emit exactly one of these
    as a JSON line on **stdout** once the socket is bound and any
    warmup manifest has been compiled — the human banner stays on
    stderr.  Supervisors and the fleet dispatcher discover a worker's
    ephemeral port and pid by parsing this line instead of scraping
    log text; ``warmed`` reports how many manifest schemas were
    precompiled before the frame was emitted (the worker serves no
    traffic colder than this).

    The serialized form nests under a single ``ready`` key, so stream
    consumers can discriminate it from response frames the same way
    ``error`` frames are discriminated.
    """

    host: str
    port: int
    pid: int
    role: str = "serve"
    #: Worker processes behind the address (fleet only).
    workers: Optional[int] = None
    #: Schemas precompiled from the warmup manifest before readiness.
    warmed: int = 0
    #: Typed warm-source failure (`repro.cache.WarmupError` text): the
    #: process started *cold* but alive — supervisors surface this in
    #: stats instead of the worker crashing at startup.
    warm_error: Optional[str] = None

    def to_dict(self) -> dict[str, Any]:
        ready: dict[str, Any] = {
            "host": self.host,
            "port": self.port,
            "pid": self.pid,
            "role": self.role,
        }
        if self.workers is not None:
            ready["workers"] = self.workers
        if self.warmed:
            ready["warmed"] = self.warmed
        if self.warm_error:
            ready["warm_error"] = self.warm_error
        return {"ready": ready}

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "ReadyFrame":
        ready = payload["ready"]
        return ReadyFrame(
            host=ready["host"],
            port=int(ready["port"]),
            pid=int(ready["pid"]),
            role=ready.get("role", "serve"),
            workers=ready.get("workers"),
            warmed=int(ready.get("warmed", 0)),
            warm_error=ready.get("warm_error"),
        )

    @staticmethod
    def from_line(line: Union[str, bytes]) -> Optional["ReadyFrame"]:
        """Parse one stdout line; None when it is not a ready frame
        (supervisors skim worker output with this — anything that is
        not the handshake is ignored, never fatal)."""
        if isinstance(line, bytes):
            line = line.decode("utf-8", "replace")
        line = line.strip()
        if not line.startswith("{"):
            return None
        try:
            payload = json.loads(line)
        except ValueError:
            return None
        if not isinstance(payload, dict) or "ready" not in payload:
            return None
        try:
            return ReadyFrame.from_dict(payload)
        except (KeyError, TypeError, ValueError):
            return None
