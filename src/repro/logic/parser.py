"""A small text syntax for atoms, queries, and dependencies.

Grammar (whitespace-insensitive):

* **term** — a bare identifier is a variable (``x``, ``name``); a quoted
  string (``'chebi'``) or a number (``42``, ``3.5``) is a constant; an
  identifier prefixed with ``_`` is a labeled null (``_n3``).
* **atom** — ``R(x, y, 'a')``.
* **conjunction** — atoms separated by commas or ``&``.
* **CQ** — ``Q(x) :- R(x, y), S(y)``; a body alone (``R(x, y)``) is a
  Boolean CQ.  Head variables are the free variables.
* **TGD** — ``R(x, y) -> S(y, z)``; head variables absent from the body
  are existentially quantified (``z`` above).  ``exists z.`` may be
  written before the head for readability but is inferred regardless.
* **FD** — ``R: 1, 2 -> 3`` with 1-based positions (determiner ->
  determined).

These helpers exist for tests, examples, and benchmarks; the programmatic
builders in `repro.logic.atoms` / `repro.constraints` remain the primary
API.
"""

from __future__ import annotations

import re
from .atoms import Atom
from .queries import ConjunctiveQuery
from .terms import Constant, Null, Term, Variable

_TOKEN_RE = re.compile(
    r"""
    (?P<arrow>->)
  | (?P<turnstile>:-)
  | (?P<colon>:)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<amp>&)
  | (?P<dot>\.)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<null>_[A-Za-z0-9:_]*)
  | (?P<ident>[A-Za-z][A-Za-z0-9_]*)
  | (?P<ws>\s+)
    """,
    re.VERBOSE,
)


class ParseError(ValueError):
    """Raised when the input text does not match the grammar."""


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise ParseError(f"unexpected character {text[index]!r} at {index}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append((kind, match.group()))
        index = match.end()
    return tokens


class _TokenStream:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self._tokens = tokens
        self._pos = 0

    def peek(self) -> tuple[str, str] | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def expect(self, kind: str) -> str:
        token = self.next()
        if token[0] != kind:
            raise ParseError(f"expected {kind}, got {token[1]!r}")
        return token[1]

    def accept(self, kind: str) -> bool:
        token = self.peek()
        if token is not None and token[0] == kind:
            self._pos += 1
            return True
        return False

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)


def _parse_term(stream: _TokenStream) -> Term:
    kind, text = stream.next()
    if kind == "ident":
        return Variable(text)
    if kind == "string":
        return Constant(text[1:-1])
    if kind == "number":
        value = float(text) if "." in text else int(text)
        return Constant(value)
    if kind == "null":
        return Null(text[1:])
    raise ParseError(f"expected a term, got {text!r}")


def _parse_atom(stream: _TokenStream) -> Atom:
    relation = stream.expect("ident")
    stream.expect("lpar")
    terms: list[Term] = []
    if not stream.accept("rpar"):
        terms.append(_parse_term(stream))
        while stream.accept("comma"):
            terms.append(_parse_term(stream))
        stream.expect("rpar")
    return Atom(relation, tuple(terms))


def _parse_conjunction(stream: _TokenStream) -> list[Atom]:
    atoms = [_parse_atom(stream)]
    while stream.accept("comma") or stream.accept("amp"):
        atoms.append(_parse_atom(stream))
    return atoms


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"R(x, 'a', 3)"``."""
    stream = _TokenStream(_tokenize(text))
    result = _parse_atom(stream)
    if not stream.at_end():
        raise ParseError("trailing input after atom")
    return result


def parse_atoms(text: str) -> tuple[Atom, ...]:
    """Parse a comma-separated conjunction of atoms."""
    stream = _TokenStream(_tokenize(text))
    atoms = _parse_conjunction(stream)
    if not stream.at_end():
        raise ParseError("trailing input after conjunction")
    return tuple(atoms)


def parse_cq(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse a CQ: ``Q(x) :- R(x,y), S(y)`` or a bare Boolean body."""
    stream = _TokenStream(_tokenize(text))
    tokens_ahead = stream._tokens
    has_head = any(kind == "turnstile" for kind, __ in tokens_ahead)
    free: tuple[Variable, ...] = ()
    query_name = name
    if has_head:
        head = _parse_atom(stream)
        for term in head.terms:
            if not isinstance(term, Variable):
                raise ParseError("head terms must be variables")
        free = tuple(term for term in head.terms)  # type: ignore[misc]
        query_name = head.relation
        stream.expect("turnstile")
    atoms = _parse_conjunction(stream)
    if not stream.at_end():
        raise ParseError("trailing input after query body")
    return ConjunctiveQuery(tuple(atoms), free, query_name)


def split_rule(text: str) -> tuple[tuple[Atom, ...], tuple[Atom, ...]]:
    """Parse ``body -> head`` into (body_atoms, head_atoms).

    An optional ``exists x, y .`` prefix before the head is accepted and
    ignored (existential variables are inferred as head-only variables).
    """
    stream = _TokenStream(_tokenize(text))
    body = _parse_conjunction(stream)
    stream.expect("arrow")
    token = stream.peek()
    if token is not None and token == ("ident", "exists"):
        stream.next()
        _parse_term(stream)
        while stream.accept("comma"):
            _parse_term(stream)
        stream.expect("dot")
    head = _parse_conjunction(stream)
    if not stream.at_end():
        raise ParseError("trailing input after rule head")
    return tuple(body), tuple(head)
