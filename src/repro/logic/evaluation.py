"""Evaluation of CQs and UCQs over instances.

Boolean CQ semantics follow the paper (§2): a Boolean CQ holds in an
instance iff there is a homomorphism from its atoms, mapping constants to
themselves.  Non-Boolean queries return the set of answer tuples (tuples
of ground terms for the free variables).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, FrozenSet

from .homomorphism import has_homomorphism, homomorphisms
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from .terms import GroundTerm

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..data.instance import Instance

AnswerTuple = tuple[GroundTerm, ...]


def evaluate_cq(
    query: ConjunctiveQuery, instance: "Instance"
) -> FrozenSet[AnswerTuple]:
    """All answers of a CQ over an instance.

    For a Boolean query, the result is ``{()}`` (true) or ``{}`` (false).
    """
    answers: set[AnswerTuple] = set()
    for assignment in homomorphisms(query.atoms, instance):
        answers.add(tuple(assignment[v] for v in query.free_variables))
    return frozenset(answers)


def holds(query: ConjunctiveQuery, instance: "Instance") -> bool:
    """True iff the Boolean CQ holds (or a non-Boolean CQ has answers)."""
    return has_homomorphism(query.atoms, instance)


def evaluate_ucq(
    query: UnionOfConjunctiveQueries, instance: "Instance"
) -> FrozenSet[AnswerTuple]:
    """All answers of a UCQ (union of the disjuncts' answers)."""
    answers: set[AnswerTuple] = set()
    for disjunct in query.disjuncts:
        answers.update(evaluate_cq(disjunct, instance))
    return frozenset(answers)


def ucq_holds(query: UnionOfConjunctiveQueries, instance: "Instance") -> bool:
    """True iff some disjunct of the UCQ holds."""
    return any(holds(disjunct, instance) for disjunct in query.disjuncts)
