"""Conjunctive queries and unions of conjunctive queries.

A `ConjunctiveQuery` (CQ) is an existentially quantified conjunction of
relational atoms, with an optional tuple of free (answer) variables.  A
Boolean CQ has no free variables.  A `UnionOfConjunctiveQueries` (UCQ) is
a disjunction of CQs with the same free variables.

The *canonical database* of a CQ (`canonical_instance`) freezes its
variables into labeled nulls; it is the starting point of chase proofs for
query containment (paper §2, "Query containment and chase proofs").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from .atoms import Atom
from .terms import Constant, Null, Term, Variable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..data.instance import Instance


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``∃ (vars \\ free_variables) . atoms``."""

    atoms: tuple[Atom, ...]
    free_variables: tuple[Variable, ...] = ()
    name: str = "Q"

    def __post_init__(self) -> None:
        if not isinstance(self.atoms, tuple):
            object.__setattr__(self, "atoms", tuple(self.atoms))
        if not isinstance(self.free_variables, tuple):
            object.__setattr__(
                self, "free_variables", tuple(self.free_variables)
            )
        atom_vars = set(self.variables())
        for var in self.free_variables:
            if var not in atom_vars:
                raise ValueError(
                    f"free variable {var} does not occur in the query body"
                )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def variables(self) -> tuple[Variable, ...]:
        """All variables of the query, in order of first occurrence."""
        seen: dict[Variable, None] = {}
        for a in self.atoms:
            for term in a.terms:
                if isinstance(term, Variable):
                    seen.setdefault(term, None)
        return tuple(seen)

    def existential_variables(self) -> tuple[Variable, ...]:
        free = set(self.free_variables)
        return tuple(v for v in self.variables() if v not in free)

    def constants(self) -> tuple[Constant, ...]:
        seen: dict[Constant, None] = {}
        for a in self.atoms:
            for term in a.terms:
                if isinstance(term, Constant):
                    seen.setdefault(term, None)
        return tuple(seen)

    def relations(self) -> tuple[str, ...]:
        return tuple(sorted({a.relation for a in self.atoms}))

    def is_boolean(self) -> bool:
        return not self.free_variables

    def substitute(self, mapping: Mapping[Term, Term]) -> "ConjunctiveQuery":
        """Apply a substitution to body atoms and free variables alike.

        Free variables mapped to non-variables are dropped from the free
        tuple (they become constants in the body).
        """
        new_atoms = tuple(a.substitute(mapping) for a in self.atoms)
        new_free = tuple(
            mapping.get(v, v)
            for v in self.free_variables
        )
        kept_free = tuple(t for t in new_free if isinstance(t, Variable))
        return ConjunctiveQuery(new_atoms, kept_free, self.name)

    def rename_relations(self, renaming) -> "ConjunctiveQuery":
        return ConjunctiveQuery(
            tuple(a.rename_relation(renaming) for a in self.atoms),
            self.free_variables,
            self.name,
        )

    # ------------------------------------------------------------------
    # Canonical database
    # ------------------------------------------------------------------
    def canonical_instance(self) -> tuple["Instance", dict[Variable, Null]]:
        """Freeze the query into its canonical database.

        Every variable ``x`` becomes the labeled null ``_q:x``; constants
        stay themselves.  Returns the instance together with the freezing
        map (needed to read answers back).
        """
        from ..data.instance import Instance

        freezing = {v: Null(f"q:{v.name}") for v in self.variables()}
        instance = Instance(
            a.substitute(freezing) for a in self.atoms  # type: ignore[arg-type]
        )
        return instance, freezing

    def __repr__(self) -> str:
        head_vars = ", ".join(str(v) for v in self.free_variables)
        body = ", ".join(str(a) for a in self.atoms)
        return f"{self.name}({head_vars}) :- {body}"


@dataclass(frozen=True)
class UnionOfConjunctiveQueries:
    """A union (disjunction) of CQs sharing the same free variables."""

    disjuncts: tuple[ConjunctiveQuery, ...]
    name: str = "Q"

    def __post_init__(self) -> None:
        if not isinstance(self.disjuncts, tuple):
            object.__setattr__(self, "disjuncts", tuple(self.disjuncts))
        if not self.disjuncts:
            raise ValueError("a UCQ needs at least one disjunct")
        arity = len(self.disjuncts[0].free_variables)
        for cq in self.disjuncts:
            if len(cq.free_variables) != arity:
                raise ValueError("UCQ disjuncts disagree on answer arity")

    @property
    def free_variables(self) -> tuple[Variable, ...]:
        return self.disjuncts[0].free_variables

    def is_boolean(self) -> bool:
        return not self.free_variables

    def relations(self) -> tuple[str, ...]:
        rels: set[str] = set()
        for cq in self.disjuncts:
            rels.update(cq.relations())
        return tuple(sorted(rels))

    def __repr__(self) -> str:
        return " ∨ ".join(repr(cq) for cq in self.disjuncts)


def cq(
    atoms: Iterable[Atom],
    free: Sequence[Variable] = (),
    name: str = "Q",
) -> ConjunctiveQuery:
    """Build a conjunctive query from atoms and free variables."""
    return ConjunctiveQuery(tuple(atoms), tuple(free), name)


def boolean_cq(atoms: Iterable[Atom], name: str = "Q") -> ConjunctiveQuery:
    """Build a Boolean conjunctive query."""
    return ConjunctiveQuery(tuple(atoms), (), name)
