"""Homomorphism search between atom sets and instances.

This module is the stable public facade over `repro.matching`: CQ
evaluation, trigger detection, containment checks, and instance-level
homomorphisms (the blow-up constructions of the paper's simplification
proofs) all reduce to finding a mapping ``h`` with ``h(atoms) ⊆
instance``, where

* constants map to themselves,
* variables map to arbitrary ground terms,
* nulls map rigidly (subinstance checks) or flexibly
  (instance-to-instance homomorphisms) per ``flexible_nulls``.

The search itself lives in the compiled matching core: the free
functions here delegate to the process-wide
`repro.matching.default_matcher()`, which memoizes join-order plans per
atom-set shape and caches boolean results against the instance's
generation counters.  They are compile-on-the-fly conveniences —
consumers deciding many queries against one schema should call the
matcher owned by their `repro.service.CompiledSchema` instead, and the
original uncompiled search survives as `repro.matching.naive` (the
cross-check reference).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Mapping, Optional, Sequence

from .atoms import Atom
from .terms import Constant, GroundTerm, Term

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..data.instance import Instance

#: A (partial) homomorphism: assignment of query terms to ground terms.
Assignment = dict[Term, GroundTerm]


def _matcher():
    # Imported lazily: `repro.matching` imports `repro.logic` modules,
    # so a module-level import here would cycle through the package
    # __init__.  The function-local import is a cached sys.modules hit
    # after the first call.
    from ..matching.matcher import default_matcher

    return default_matcher()


def homomorphisms(
    atoms: Sequence[Atom],
    instance: "Instance",
    *,
    seed: Optional[Mapping[Term, GroundTerm]] = None,
    flexible_nulls: bool = False,
) -> Iterator[Assignment]:
    """Enumerate homomorphisms from `atoms` into `instance`.

    Parameters
    ----------
    seed:
        A partial assignment the homomorphism must extend (e.g. the trigger
        image when looking for head extensions of a TGD).
    flexible_nulls:
        When True, nulls in `atoms` behave like variables (used for
        instance-to-instance homomorphisms); when False they must map to
        themselves (used for subinstance-style matching and CQ evaluation
        over canonical databases).
    """
    return _matcher().homomorphisms(
        atoms, instance, seed=seed, flexible_nulls=flexible_nulls
    )


def find_homomorphism(
    atoms: Sequence[Atom],
    instance: "Instance",
    *,
    seed: Optional[Mapping[Term, GroundTerm]] = None,
    flexible_nulls: bool = False,
) -> Optional[Assignment]:
    """Return one homomorphism, or None if none exists."""
    return _matcher().find(
        atoms, instance, seed=seed, flexible_nulls=flexible_nulls
    )


def has_homomorphism(
    atoms: Sequence[Atom],
    instance: "Instance",
    *,
    seed: Optional[Mapping[Term, GroundTerm]] = None,
    flexible_nulls: bool = False,
) -> bool:
    """True iff some homomorphism from `atoms` into `instance` exists."""
    return _matcher().has(
        atoms, instance, seed=seed, flexible_nulls=flexible_nulls
    )


def instance_homomorphism(
    source: "Instance", target: "Instance"
) -> Optional[dict[GroundTerm, GroundTerm]]:
    """A homomorphism between instances (nulls flexible, constants rigid).

    This is the notion used by the paper's blow-up lemmas: constants are
    preserved, nulls may be mapped anywhere.  Returns the full mapping on
    the active domain of `source`, or None.
    """
    # One-shot by nature (the atom set is the full fact list of a
    # transient instance), so use the naive search directly instead of
    # polluting the shared plan cache with never-reused keys.
    from ..matching.naive import naive_homomorphisms

    atoms = list(source)
    result = None
    for assignment in naive_homomorphisms(atoms, target, flexible_nulls=True):
        result = assignment
        break
    if result is None:
        return None
    mapping: dict[GroundTerm, GroundTerm] = {}
    for term in source.active_domain():
        if isinstance(term, Constant):
            mapping[term] = term
        else:
            mapping[term] = result.get(term, term)
    return mapping


def is_homomorphically_equivalent(left: "Instance", right: "Instance") -> bool:
    """True iff homomorphisms exist in both directions."""
    return (
        instance_homomorphism(left, right) is not None
        and instance_homomorphism(right, left) is not None
    )
