"""Homomorphism search between atom sets and instances.

This is the workhorse of the whole library: CQ evaluation, trigger
detection in the chase, containment checks, and instance-level
homomorphisms (used by the blow-up constructions of the paper's
simplification proofs) all reduce to finding a mapping ``h`` such that
``h(atoms) ⊆ instance``, with:

* constants mapped to themselves,
* variables mapped to arbitrary ground terms,
* nulls either mapped rigidly (when checking subinstances) or flexibly
  (instance-to-instance homomorphisms, where nulls behave like variables).

The search is backtracking over atoms, ordered greedily by estimated
selectivity, and uses the instance's positional indexes to enumerate only
candidate facts consistent with the partial assignment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence

from .atoms import Atom
from .terms import Constant, GroundTerm, Null, Term, Variable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..data.instance import Instance

#: A (partial) homomorphism: assignment of query terms to ground terms.
Assignment = dict[Term, GroundTerm]


def _candidate_facts(
    instance: "Instance",
    atom: Atom,
    assignment: Mapping[Term, GroundTerm],
    flexible_nulls: bool,
) -> Iterable[Atom]:
    """Facts of `instance` possibly matching `atom` under `assignment`.

    Uses the most selective available positional index; falls back to the
    full relation bucket when no term of the atom is determined yet.
    """
    best: Optional[Iterable[Atom]] = None
    best_size = -1
    for position, term in enumerate(atom.terms):
        bound: Optional[GroundTerm] = None
        if isinstance(term, Constant):
            bound = term
        elif isinstance(term, Null) and not flexible_nulls:
            bound = term
        elif term in assignment:
            bound = assignment[term]
        if bound is not None:
            facts = instance.facts_with(atom.relation, position, bound)
            size = len(facts)
            if size <= 1:
                # An empty or singleton bucket cannot be beaten: stop the
                # position scan immediately (empty ⇒ no match at all).
                return facts
            if best is None or size < best_size:
                best = facts
                best_size = size
    if best is not None:
        return best
    return instance.facts_of(atom.relation)


def _try_extend(
    atom: Atom,
    fact: Atom,
    assignment: Assignment,
    flexible_nulls: bool,
) -> Optional[list[Term]]:
    """Extend `assignment` in place so that atom maps to fact.

    Returns the list of newly bound terms (for backtracking), or None if
    the fact is incompatible.
    """
    if fact.relation != atom.relation or len(fact.terms) != len(atom.terms):
        return None
    newly_bound: list[Term] = []
    for term, value in zip(atom.terms, fact.terms):
        if isinstance(term, Constant) or (
            isinstance(term, Null) and not flexible_nulls
        ):
            if term != value:
                for t in newly_bound:
                    del assignment[t]
                return None
            continue
        current = assignment.get(term)
        if current is None:
            assignment[term] = value
            newly_bound.append(term)
        elif current != value:
            for t in newly_bound:
                del assignment[t]
            return None
    return newly_bound


def _order_atoms(atoms: Sequence[Atom]) -> list[Atom]:
    """Heuristic join order: start anywhere, then prefer connected atoms."""
    remaining = list(atoms)
    if not remaining:
        return []
    ordered: list[Atom] = []
    bound_terms: set[Term] = set()
    # Start with the atom having the most constants (most selective guess).
    remaining.sort(key=lambda a: -sum(
        1 for t in a.terms if not isinstance(t, Variable)
    ))
    while remaining:
        best_index = 0
        best_score = -1
        for i, candidate in enumerate(remaining):
            score = sum(
                1
                for t in candidate.terms
                if t in bound_terms or not isinstance(t, Variable)
            )
            if score > best_score:
                best_score = score
                best_index = i
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound_terms.update(chosen.terms)
    return ordered


def homomorphisms(
    atoms: Sequence[Atom],
    instance: "Instance",
    *,
    seed: Optional[Mapping[Term, GroundTerm]] = None,
    flexible_nulls: bool = False,
) -> Iterator[Assignment]:
    """Enumerate homomorphisms from `atoms` into `instance`.

    Parameters
    ----------
    seed:
        A partial assignment the homomorphism must extend (e.g. the trigger
        image when looking for head extensions of a TGD).
    flexible_nulls:
        When True, nulls in `atoms` behave like variables (used for
        instance-to-instance homomorphisms); when False they must map to
        themselves (used for subinstance-style matching and CQ evaluation
        over canonical databases).
    """
    assignment: Assignment = dict(seed) if seed else {}
    ordered = _order_atoms(atoms)

    def search(index: int) -> Iterator[Assignment]:
        if index == len(ordered):
            yield dict(assignment)
            return
        current = ordered[index]
        for fact in _candidate_facts(
            instance, current, assignment, flexible_nulls
        ):
            newly_bound = _try_extend(
                current, fact, assignment, flexible_nulls
            )
            if newly_bound is None:
                continue
            yield from search(index + 1)
            for term in newly_bound:
                del assignment[term]

    return search(0)


def find_homomorphism(
    atoms: Sequence[Atom],
    instance: "Instance",
    *,
    seed: Optional[Mapping[Term, GroundTerm]] = None,
    flexible_nulls: bool = False,
) -> Optional[Assignment]:
    """Return one homomorphism, or None if none exists."""
    for assignment in homomorphisms(
        atoms, instance, seed=seed, flexible_nulls=flexible_nulls
    ):
        return assignment
    return None


def has_homomorphism(
    atoms: Sequence[Atom],
    instance: "Instance",
    *,
    seed: Optional[Mapping[Term, GroundTerm]] = None,
    flexible_nulls: bool = False,
) -> bool:
    """True iff some homomorphism from `atoms` into `instance` exists."""
    return (
        find_homomorphism(
            atoms, instance, seed=seed, flexible_nulls=flexible_nulls
        )
        is not None
    )


def instance_homomorphism(
    source: "Instance", target: "Instance"
) -> Optional[dict[GroundTerm, GroundTerm]]:
    """A homomorphism between instances (nulls flexible, constants rigid).

    This is the notion used by the paper's blow-up lemmas: constants are
    preserved, nulls may be mapped anywhere.  Returns the full mapping on
    the active domain of `source`, or None.
    """
    atoms = list(source)
    result = find_homomorphism(atoms, target, flexible_nulls=True)
    if result is None:
        return None
    mapping: dict[GroundTerm, GroundTerm] = {}
    for term in source.active_domain():
        if isinstance(term, Constant):
            mapping[term] = term
        else:
            mapping[term] = result.get(term, term)
    return mapping


def is_homomorphically_equivalent(left: "Instance", right: "Instance") -> bool:
    """True iff homomorphisms exist in both directions."""
    return (
        instance_homomorphism(left, right) is not None
        and instance_homomorphism(right, left) is not None
    )
