"""Relational atoms: a relation name applied to a tuple of terms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from .terms import Constant, GroundTerm, Null, Term, Variable


@dataclass(frozen=True, slots=True)
class Atom:
    """An atom ``R(t1, ..., tn)`` over variables, constants, and nulls."""

    relation: str
    terms: tuple[Term, ...]
    #: Cached hash (same scheme as the term classes: computed once,
    #: -1 means "not yet"); atoms are hashed on every instance-index
    #: update and plan-cache lookup.
    _hash: int = field(default=-1, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    def __hash__(self) -> int:
        cached = self._hash
        if cached == -1:
            cached = hash((self.relation, self.terms))
            if cached == -1:
                cached = -2
            object.__setattr__(self, "_hash", cached)
        return cached

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> tuple[Variable, ...]:
        """Variables occurring in the atom, in order, without duplicates."""
        seen: dict[Variable, None] = {}
        for term in self.terms:
            if isinstance(term, Variable):
                seen.setdefault(term, None)
        return tuple(seen)

    def constants(self) -> tuple[Constant, ...]:
        seen: dict[Constant, None] = {}
        for term in self.terms:
            if isinstance(term, Constant):
                seen.setdefault(term, None)
        return tuple(seen)

    def nulls(self) -> tuple[Null, ...]:
        seen: dict[Null, None] = {}
        for term in self.terms:
            if isinstance(term, Null):
                seen.setdefault(term, None)
        return tuple(seen)

    def is_ground(self) -> bool:
        """True if no variable occurs (the atom is a fact)."""
        return not any(isinstance(term, Variable) for term in self.terms)

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply a substitution; terms absent from the mapping are kept."""
        return Atom(
            self.relation,
            tuple(mapping.get(term, term) for term in self.terms),
        )

    def rename_relation(self, renaming: Callable[[str], str]) -> "Atom":
        return Atom(renaming(self.relation), self.terms)

    def positions_of(self, term: Term) -> tuple[int, ...]:
        """0-based positions at which `term` occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == term)

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({inner})"


def atom(relation: str, *terms: Term | str | int | float) -> Atom:
    """Ergonomic atom builder.

    Bare strings are interpreted as *variables*; to pass a string constant,
    wrap it in `Constant` explicitly (or use the query parser, which uses
    quoting).  Numbers become constants.
    """
    converted: list[Term] = []
    for term in terms:
        if isinstance(term, (Variable, Constant, Null)):
            converted.append(term)
        elif isinstance(term, str):
            converted.append(Variable(term))
        else:
            converted.append(Constant(term))
    return Atom(relation, tuple(converted))


def ground_atom(relation: str, *values: GroundTerm | int | float | str) -> Atom:
    """Build a ground atom; bare Python values (incl. strings) become constants."""
    converted: list[Term] = []
    for value in values:
        if isinstance(value, (Constant, Null)):
            converted.append(value)
        else:
            converted.append(Constant(value))
    return Atom(relation, tuple(converted))


def atoms_terms(atoms: Iterable[Atom]) -> tuple[Term, ...]:
    """All terms occurring in a collection of atoms, deduplicated, in order."""
    seen: dict[Term, None] = {}
    for a in atoms:
        for term in a.terms:
            seen.setdefault(term, None)
    return tuple(seen)
