"""Terms of the relational logic: variables, constants, and labeled nulls.

The paper works with instances whose elements are *values* (constants) and
*nulls* introduced by the chase, and with queries whose atoms mention
*variables* and *constants*.  We model all three uniformly as `Term`
objects so that homomorphisms, chase steps, and plan evaluation can share
one substitution machinery:

* `Variable` — appears in queries and dependency bodies/heads only.
* `Constant` — a wrapped, hashable Python value; the identity of the value
  is the identity of the constant.
* `Null` — a labeled null created by the chase (or by canonical databases,
  where query variables are frozen into nulls).  Nulls may be mapped by
  homomorphisms and merged by equality-generating dependencies.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Hashable, Union

# Terms are hashed constantly — every instance-index update, plan-cache
# lookup, and environment write keys on them — so each class caches its
# hash in a slot on first use instead of re-deriving it per call (the
# dataclass-generated __hash__ rehashes the field tuple every time,
# which profiled as a top cost of the chase).  -1 marks "not yet
# computed"; a real hash of -1 is remapped to -2 (CPython's own
# convention).  The cache slot is excluded from __eq__/__repr__/init.


@dataclass(frozen=True, slots=True)
class Variable:
    """A first-order variable, identified by its name."""

    name: str
    _hash: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        cached = self._hash
        if cached == -1:
            cached = hash((self.name,))
            if cached == -1:
                cached = -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Constant:
    """A constant, wrapping an arbitrary hashable Python value."""

    value: Hashable
    _hash: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        cached = self._hash
        if cached == -1:
            cached = hash((self.value,))
            if cached == -1:
                cached = -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, slots=True)
class Null:
    """A labeled null.

    Nulls are produced by chase steps (to witness existential quantifiers)
    and by canonical databases (to freeze query variables).  Two nulls are
    equal iff their labels are equal.
    """

    label: str
    _hash: int = field(
        default=-1, init=False, repr=False, compare=False
    )

    def __hash__(self) -> int:
        cached = self._hash
        if cached == -1:
            cached = hash((self.label,))
            if cached == -1:
                cached = -2
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        return f"_{self.label}"

    def __str__(self) -> str:
        return f"_{self.label}"


#: A term appearing in a query atom.
Term = Union[Variable, Constant, Null]

#: A term appearing in an instance fact (no variables allowed).
GroundTerm = Union[Constant, Null]


class NullFactory:
    """Thread-safe generator of globally fresh nulls.

    A single shared factory (`fresh_null`) is enough for most uses; chase
    runs that need reproducible labels can instantiate their own factory.
    """

    def __init__(self, prefix: str = "n") -> None:
        self._prefix = prefix
        self._counter = itertools.count()
        self._lock = threading.Lock()

    def fresh(self, hint: str = "") -> Null:
        """Return a fresh null, optionally embedding a readable hint."""
        with self._lock:
            index = next(self._counter)
        if hint:
            return Null(f"{self._prefix}{index}:{hint}")
        return Null(f"{self._prefix}{index}")


_GLOBAL_FACTORY = NullFactory()


def fresh_null(hint: str = "") -> Null:
    """Return a globally fresh labeled null."""
    return _GLOBAL_FACTORY.fresh(hint)


def is_ground(term: Term) -> bool:
    """Return True if the term is a constant or a null (not a variable)."""
    return not isinstance(term, Variable)


def constant(value: Hashable) -> Constant:
    """Convenience wrapper building a `Constant`."""
    return Constant(value)


def variables(*names: str) -> tuple[Variable, ...]:
    """Build several variables at once: ``x, y = variables("x", "y")``."""
    return tuple(Variable(name) for name in names)
