"""First-order logic substrate: terms, atoms, queries, homomorphisms."""

from .atoms import Atom, atom, atoms_terms, ground_atom
from .evaluation import evaluate_cq, evaluate_ucq, holds, ucq_holds
from .homomorphism import (
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    instance_homomorphism,
    is_homomorphically_equivalent,
)
from .parser import ParseError, parse_atom, parse_atoms, parse_cq, split_rule
from .queries import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    boolean_cq,
    cq,
)
from .terms import (
    Constant,
    Null,
    NullFactory,
    Term,
    Variable,
    constant,
    fresh_null,
    variables,
)

__all__ = [
    "Atom", "atom", "atoms_terms", "ground_atom",
    "evaluate_cq", "evaluate_ucq", "holds", "ucq_holds",
    "find_homomorphism", "has_homomorphism", "homomorphisms",
    "instance_homomorphism", "is_homomorphically_equivalent",
    "ParseError", "parse_atom", "parse_atoms", "parse_cq", "split_rule",
    "ConjunctiveQuery", "UnionOfConjunctiveQueries", "boolean_cq", "cq",
    "Constant", "Null", "NullFactory", "Term", "Variable",
    "constant", "fresh_null", "variables",
]
