"""Prometheus text-format exposition (version 0.0.4) and a validator.

`render_prometheus` turns a `MetricsRegistry` into the classic
``# HELP`` / ``# TYPE`` / sample-line text format: counters as
``_total``-suffix-free monotonic samples, gauges as-is, histograms as
cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``, and
every provider's flattened numeric leaves as untyped gauges.

`validate_exposition` is the shared scrape check used by the CI smoke
and the unit tests: every line must parse, and no (name, labelset)
series may appear twice.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import MetricsRegistry

__all__ = ["CONTENT_TYPE", "render_prometheus", "validate_exposition"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[^ ]+)$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: "MetricsRegistry") -> str:
    from .registry import Histogram

    lines: list[str] = []
    seen_names: set[str] = set()

    def header(name: str, help_text: str, kind: str) -> None:
        if help_text:
            escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
            lines.append(f"# HELP {name} {escaped}")
        lines.append(f"# TYPE {name} {kind}")

    for instrument in registry.instruments():
        seen_names.add(instrument.name)
        if isinstance(instrument, Histogram):
            header(instrument.name, instrument.help, "histogram")
            for labels, state in instrument.series():
                cumulative = 0
                for bound, count in zip(
                    instrument.buckets, state["counts"]
                ):
                    cumulative += count
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_format_labels(bucket_labels)} {cumulative}"
                    )
                bucket_labels = dict(labels)
                bucket_labels["le"] = "+Inf"
                lines.append(
                    f"{instrument.name}_bucket"
                    f"{_format_labels(bucket_labels)} {state['count']}"
                )
                lines.append(
                    f"{instrument.name}_sum{_format_labels(labels)} "
                    f"{_format_value(state['sum'])}"
                )
                lines.append(
                    f"{instrument.name}_count{_format_labels(labels)} "
                    f"{state['count']}"
                )
        else:
            header(instrument.name, instrument.help, instrument.kind)
            for labels, value in instrument.samples():
                lines.append(
                    f"{instrument.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )

    # Providers: legacy stats() leaves as untyped gauges.  A provider
    # sample whose name collides with a first-class instrument is
    # dropped (the instrument is authoritative); duplicate provider
    # samples within one (name, labels) keep the first.
    provider_seen: set[tuple[str, tuple]] = set()
    provider_lines: dict[str, list[str]] = {}
    for name, labels, value in registry.provider_samples():
        if name in seen_names:
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in provider_seen:
            continue
        provider_seen.add(key)
        provider_lines.setdefault(name, []).append(
            f"{name}{_format_labels(labels)} {_format_value(value)}"
        )
    for name in sorted(provider_lines):
        lines.append(f"# TYPE {name} gauge")
        lines.extend(provider_lines[name])

    return "\n".join(lines) + "\n"


def validate_exposition(text: str) -> dict[str, int]:
    """Parse an exposition payload; raise ValueError on malformed
    lines or duplicate (name, labelset) series.

    Returns ``{series_name: sample_count}`` for assertions.
    """
    seen: set[tuple[str, tuple]] = set()
    names: dict[str, int] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not (
                line.startswith("# HELP ") or line.startswith("# TYPE ")
            ):
                raise ValueError(f"line {lineno}: bad comment: {line!r}")
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        value = match.group("value")
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: bad sample value: {line!r}"
                ) from None
        raw_labels = match.group("labels") or ""
        pairs = _LABEL_RE.findall(raw_labels)
        if raw_labels and raw_labels != "{}" and not pairs:
            raise ValueError(f"line {lineno}: unparseable labels: {line!r}")
        labels = tuple(sorted(pairs))
        name = match.group("name")
        key = (name, labels)
        if key in seen:
            raise ValueError(
                f"line {lineno}: duplicate series {name}{raw_labels}"
            )
        seen.add(key)
        names[name] = names.get(name, 0) + 1
    return names
