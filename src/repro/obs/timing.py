"""Per-request stage timing: queue/compile/rewrite/chase/match/persist.

A `StageTimer` accumulates *exclusive* self-time per named stage: the
instrumented choke points (`SessionPool._build` → ``compile``,
`RewriteEngine.rewrite` → ``rewrite``, the chase entry → ``chase``,
the containment deciders → ``match``, the durable tier → ``persist``)
wrap themselves in ``stage("name")``; entering a nested stage pauses
the enclosing one, so the stage totals sum to at most the wall time
and double-counting is structurally impossible (a containment check
that runs an inner chase attributes the chase rounds to ``chase`` and
only the decision shell to ``match``).

The active timer rides a thread-local.  Transports `activate` one
around the request body on the worker thread; with no active timer,
``stage(...)`` is a two-attribute-lookup no-op, which is what keeps
always-on instrumentation inside the latency budget — instrumented
library code pays nothing unless a transport asked for timings.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = [
    "StageTimer",
    "stage",
    "activate",
    "deactivate",
    "current_timer",
    "STAGES",
]

#: The stage-timing glossary (README "Operations" documents each).
STAGES = ("queue", "compile", "rewrite", "chase", "match", "persist")

_active = threading.local()


class StageTimer:
    """Exclusive per-stage elapsed-time accumulator (one request)."""

    __slots__ = ("_clock", "_stack", "_mark", "stages")

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self._clock = clock
        self._stack: list[str] = []
        self._mark: Optional[float] = None
        self.stages: dict[str, float] = {}

    def push(self, name: str) -> None:
        now = self._clock()
        if self._stack:
            top = self._stack[-1]
            self.stages[top] = (
                self.stages.get(top, 0.0) + now - self._mark
            )
        self._stack.append(name)
        self._mark = now

    def pop(self) -> None:
        now = self._clock()
        name = self._stack.pop()
        self.stages[name] = self.stages.get(name, 0.0) + now - self._mark
        self._mark = now if self._stack else None

    def add(self, name: str, seconds: float) -> None:
        """Credit externally measured time (e.g. executor queue wait)."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def as_millis(self) -> dict[str, float]:
        """Stage totals in milliseconds, rounded, insertion-ordered by
        the canonical `STAGES` order (unknown stages trail, sorted)."""
        out: dict[str, float] = {}
        for name in STAGES:
            if name in self.stages:
                out[name] = round(self.stages[name] * 1000.0, 3)
        for name in sorted(self.stages):
            if name not in out:
                out[name] = round(self.stages[name] * 1000.0, 3)
        return out


def activate(timer: Optional[StageTimer]) -> Optional[StageTimer]:
    """Install ``timer`` as this thread's active timer; returns the
    previous one for `deactivate` to restore."""
    previous = getattr(_active, "timer", None)
    _active.timer = timer
    return previous


def deactivate(previous: Optional[StageTimer] = None) -> None:
    _active.timer = previous


def current_timer() -> Optional[StageTimer]:
    return getattr(_active, "timer", None)


class stage:
    """``with stage("chase"):`` — a no-op unless a timer is active."""

    __slots__ = ("name", "_timer")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "stage":
        self._timer = getattr(_active, "timer", None)
        if self._timer is not None:
            self._timer.push(self.name)
        return self

    def __exit__(self, *exc: object) -> bool:
        if self._timer is not None:
            self._timer.pop()
        return False
