"""`MetricsRegistry`: the unified, zero-dependency metrics surface.

Three first-class instrument kinds — `Counter` (monotonic), `Gauge`
(set-to-latest), `Histogram` (fixed-bucket latency distribution with
linear-interpolation percentile estimation) — plus *providers*: named
callables returning the nested stats dicts the serving stack already
produces (``SessionPool.stats``, ``DecideServer`` counters,
``ArtifactStore.stats``, fleet ring counters, ...).  Providers are
read lazily at snapshot/exposition time and their numeric leaves are
flattened into gauge-like samples, so registry values are *by
construction* equal to the legacy ``stats()`` values — there is no
second bookkeeping path to drift.

Everything is thread-safe; instruments take their own lock per update,
the registry locks only its instrument/provider tables.  Label sets
are caller-bounded: instruments declare their label names up front and
providers are expected to keep dict keys that become labels (e.g.
fingerprints) bounded by an existing LRU (see DESIGN.md §3c).
"""

from __future__ import annotations

import bisect
import math
import re
import threading
from typing import Any, Callable, Iterable, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "merge_snapshots",
]

#: Default request-latency bucket upper bounds, in milliseconds.
#: Roughly logarithmic from sub-millisecond cache hits to multi-second
#: chases; the terminal +Inf bucket is implicit.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0,
    250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SANITIZE_RE = re.compile(r"[^a-zA-Z0-9_]")
#: Dict keys that look like content fingerprints become a ``key``
#: label instead of a metric-name fragment (hex digests make illegal,
#: unbounded-name series).
_HEXISH_RE = re.compile(r"[0-9a-f]{16,}$")


def _labels_key(
    label_names: Sequence[str], labels: dict[str, str]
) -> tuple[str, ...]:
    # Hot path (every inc/observe): equal length + successful lookup of
    # every declared name implies the key sets match, without building
    # throwaway sets.
    if len(labels) == len(label_names):
        try:
            return tuple([str(labels[name]) for name in label_names])
        except KeyError:
            pass
    raise ValueError(
        f"expected labels {sorted(label_names)}, got {sorted(labels)}"
    )


class _Instrument:
    """Common shell: name, help text, declared label names, a lock."""

    kind = "untyped"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing counter, optionally labelled."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = _labels_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _labels_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            (dict(zip(self.label_names, key)), value)
            for key, value in items
        ]


class Gauge(_Instrument):
    """A set-to-latest value, optionally labelled."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str, label_names: Sequence[str] = ()
    ) -> None:
        super().__init__(name, help, label_names)
        self._values: dict[tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = _labels_key(self.label_names, labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _labels_key(self.label_names, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = _labels_key(self.label_names, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def samples(self) -> list[tuple[dict[str, str], float]]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            (dict(zip(self.label_names, key)), value)
            for key, value in items
        ]


class _HistogramSeries:
    __slots__ = ("counts", "inf", "total", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * n_buckets  # per finite bucket
        self.inf = 0  # > last bound
        self.total = 0
        self.sum = 0.0


class Histogram(_Instrument):
    """A fixed-bucket histogram with percentile estimation.

    Bucket bounds are *upper* bounds (Prometheus ``le`` semantics);
    an implicit +Inf bucket catches overflow.  `percentile` assumes a
    uniform distribution inside the containing bucket and linearly
    interpolates between its lower and upper bound; observations in
    the +Inf bucket report the last finite bound (a floor, clearly
    better than inventing an upper edge).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        label_names: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help, label_names)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"bucket bounds must be strictly increasing: {bounds}"
            )
        self.buckets = bounds
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def _get(self, labels: dict[str, str]) -> _HistogramSeries:
        key = _labels_key(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series.setdefault(
                key, _HistogramSeries(len(self.buckets))
            )
        return series

    def observe(self, value: float, **labels: str) -> None:
        value = float(value)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._get(labels)
            if index < len(self.buckets):
                series.counts[index] += 1
            else:
                series.inf += 1
            series.total += 1
            series.sum += value

    def count(self, **labels: str) -> int:
        with self._lock:
            series = self._series.get(_labels_key(self.label_names, labels))
            return series.total if series is not None else 0

    def sum(self, **labels: str) -> float:
        with self._lock:
            series = self._series.get(_labels_key(self.label_names, labels))
            return series.sum if series is not None else 0.0

    def percentile(self, p: float, **labels: str) -> Optional[float]:
        """Estimate the ``p``-th percentile (``0 < p <= 100``).

        None when the series has no observations.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile must be in (0, 100]: {p}")
        with self._lock:
            series = self._series.get(_labels_key(self.label_names, labels))
            if series is None or series.total == 0:
                return None
            counts = list(series.counts) + [series.inf]
            total = series.total
        rank = p / 100.0 * total
        cumulative = 0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                if index >= len(self.buckets):
                    # +Inf bucket: the last finite bound is the best
                    # defensible floor.
                    return self.buckets[-1]
                lower = self.buckets[index - 1] if index else 0.0
                upper = self.buckets[index]
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
        return self.buckets[-1]  # pragma: no cover - unreachable

    def series(self) -> list[tuple[dict[str, str], dict]]:
        """Per-label-set state: finite bucket counts, +Inf, sum, count."""
        with self._lock:
            items = [
                (key, list(s.counts), s.inf, s.total, s.sum)
                for key, s in sorted(self._series.items())
            ]
        out = []
        for key, counts, inf, total, total_sum in items:
            out.append(
                (
                    dict(zip(self.label_names, key)),
                    {
                        "counts": counts,
                        "inf": inf,
                        "count": total,
                        "sum": total_sum,
                    },
                )
            )
        return out


def sanitize_fragment(text: str) -> str:
    """One dict key → one legal metric-name fragment."""
    fragment = _SANITIZE_RE.sub("_", str(text))
    return fragment or "_"


def flatten_stats(
    stats: Any, prefix: str
) -> list[tuple[str, dict[str, str], float]]:
    """Flatten a nested stats dict into ``(name, labels, value)``.

    * dicts recurse, joining keys into the metric name with ``_``;
      keys that look like content fingerprints (long hex) become a
      ``key`` label so series names stay legal and bounded;
    * lists of dicts carrying a ``"fingerprint"`` entry recurse per
      item under a ``fingerprint`` label (truncated to 12 chars);
      other lists are skipped (no defensible series shape);
    * bools and numbers become samples; strings and None are skipped
      (they stay visible in the JSON snapshot, just not in numeric
      exposition).
    """
    out: list[tuple[str, dict[str, str], float]] = []
    _flatten(stats, prefix, {}, out)
    return out


def _flatten(
    value: Any,
    prefix: str,
    labels: dict[str, str],
    out: list[tuple[str, dict[str, str], float]],
) -> None:
    if isinstance(value, bool):
        out.append((prefix, dict(labels), 1.0 if value else 0.0))
    elif isinstance(value, (int, float)):
        if isinstance(value, float) and not math.isfinite(value):
            return
        out.append((prefix, dict(labels), float(value)))
    elif isinstance(value, dict):
        for key, item in sorted(value.items(), key=lambda kv: str(kv[0])):
            text = str(key)
            if _HEXISH_RE.match(text) and "key" not in labels:
                sub = dict(labels)
                sub["key"] = text[:12]
                _flatten(item, prefix, sub, out)
            else:
                fragment = sanitize_fragment(text)
                if not fragment[0].isalpha() and fragment[0] != "_":
                    fragment = "_" + fragment
                _flatten(item, f"{prefix}_{fragment}", labels, out)
    elif isinstance(value, (list, tuple)):
        if all(
            isinstance(item, dict) and "fingerprint" in item
            for item in value
        ) and value:
            for item in value:
                sub = dict(labels)
                sub["fingerprint"] = str(item["fingerprint"])[:12]
                rest = {
                    k: v for k, v in item.items() if k != "fingerprint"
                }
                _flatten(rest, prefix, sub, out)
        # other list shapes: skipped (unbounded/positional series).
    # strings, None, other objects: skipped.


class MetricsRegistry:
    """The process-wide instrument table plus lazy stats providers."""

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}
        self._providers: dict[str, Callable[[], Any]] = {}

    # -- instrument creation (get-or-create, kind-checked) -------------
    def _register(self, instrument: _Instrument) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is not None:
                if type(existing) is not type(instrument) or (
                    existing.label_names != instrument.label_names
                ):
                    raise ValueError(
                        f"metric {instrument.name!r} already registered "
                        f"with a different kind or label set"
                    )
                return existing
            self._instruments[instrument.name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        instrument = self._register(Counter(name, help, labels))
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Gauge:
        instrument = self._register(Gauge(name, help, labels))
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        labels: Sequence[str] = (),
    ) -> Histogram:
        instrument = self._register(Histogram(name, help, buckets, labels))
        assert isinstance(instrument, Histogram)
        return instrument

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return [
                self._instruments[name]
                for name in sorted(self._instruments)
            ]

    # -- providers ------------------------------------------------------
    def register_provider(
        self, name: str, stats: Callable[[], Any]
    ) -> None:
        """Register (or replace) a named legacy-stats source.

        ``stats()`` is called at snapshot/exposition time; its nested
        numeric leaves surface as ``<namespace>_<name>_...`` samples.
        """
        fragment = sanitize_fragment(name)
        with self._lock:
            self._providers[fragment] = stats

    def provider_names(self) -> list[str]:
        with self._lock:
            return sorted(self._providers)

    def collect_providers(self) -> dict[str, Any]:
        """Evaluate every provider; a failing provider yields an
        ``{"error": ...}`` stub rather than poisoning the scrape."""
        with self._lock:
            providers = list(self._providers.items())
        out: dict[str, Any] = {}
        for name, stats in sorted(providers):
            try:
                out[name] = stats()
            except Exception as error:  # pragma: no cover - defensive
                out[name] = {"error": f"{type(error).__name__}: {error}"}
        return out

    def provider_samples(self) -> list[tuple[str, dict[str, str], float]]:
        samples: list[tuple[str, dict[str, str], float]] = []
        for name, stats in self.collect_providers().items():
            samples.extend(
                flatten_stats(stats, f"{self.namespace}_{name}")
            )
        return samples

    # -- snapshots ------------------------------------------------------
    def snapshot(self, percentiles: Iterable[float] = (50, 95, 99)) -> dict:
        """A JSON-safe dump of every instrument plus every provider.

        This is the payload of the ``op: "metrics"`` wire frame; it is
        mergeable across workers with `merge_snapshots`.
        """
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for instrument in self.instruments():
            if isinstance(instrument, Histogram):
                series = []
                for labels, state in instrument.series():
                    entry = {"labels": labels, **state}
                    for p in percentiles:
                        entry[f"p{p:g}"] = instrument.percentile(
                            p, **labels
                        )
                    series.append(entry)
                histograms[instrument.name] = {
                    "buckets": list(instrument.buckets),
                    "series": series,
                }
            else:
                table = counters if instrument.kind == "counter" else gauges
                table[instrument.name] = [
                    {"labels": labels, "value": value}
                    for labels, value in instrument.samples()
                ]
        return {
            "namespace": self.namespace,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "providers": self.collect_providers(),
        }

    def render(self) -> str:
        from .exposition import render_prometheus

        return render_prometheus(self)


def _percentile_from_counts(
    buckets: Sequence[float], counts: Sequence[int], inf: int, p: float
) -> Optional[float]:
    total = sum(counts) + inf
    if total == 0:
        return None
    rank = p / 100.0 * total
    cumulative = 0
    for index, count in enumerate(list(counts) + [inf]):
        if count == 0:
            continue
        if cumulative + count >= rank:
            if index >= len(buckets):
                return buckets[-1]
            lower = buckets[index - 1] if index else 0.0
            return lower + (buckets[index] - lower) * (
                (rank - cumulative) / count
            )
        cumulative += count
    return buckets[-1]  # pragma: no cover - unreachable


def merge_snapshots(
    snapshots: Sequence[dict], percentiles: Iterable[float] = (50, 95, 99)
) -> dict:
    """Merge per-worker `MetricsRegistry.snapshot` payloads.

    Counters and gauges with identical (name, labels) sum; histogram
    series with identical (name, labels) and identical bucket bounds
    merge bucket-wise and re-estimate percentiles from the merged
    counts.  Providers are not merged (their shapes are worker-local);
    the fleet frame keeps them per worker instead.
    """
    counters: dict[str, dict[tuple, float]] = {}
    gauges: dict[str, dict[tuple, float]] = {}
    histograms: dict[str, dict] = {}

    def label_key(labels: dict) -> tuple:
        return tuple(sorted(labels.items()))

    for snapshot in snapshots:
        if not isinstance(snapshot, dict):
            continue
        for table, merged in (
            (snapshot.get("counters") or {}, counters),
            (snapshot.get("gauges") or {}, gauges),
        ):
            for name, samples in table.items():
                slot = merged.setdefault(name, {})
                for sample in samples:
                    key = label_key(sample.get("labels") or {})
                    slot[key] = slot.get(key, 0.0) + float(
                        sample.get("value") or 0.0
                    )
        for name, family in (snapshot.get("histograms") or {}).items():
            buckets = tuple(family.get("buckets") or ())
            slot = histograms.setdefault(
                name, {"buckets": buckets, "series": {}}
            )
            if tuple(slot["buckets"]) != buckets:
                continue  # incompatible bounds: first writer wins
            for entry in family.get("series") or []:
                key = label_key(entry.get("labels") or {})
                state = slot["series"].get(key)
                if state is None:
                    state = {
                        "labels": dict(entry.get("labels") or {}),
                        "counts": [0] * len(buckets),
                        "inf": 0,
                        "count": 0,
                        "sum": 0.0,
                    }
                    slot["series"][key] = state
                counts = list(entry.get("counts") or [])
                for i, c in enumerate(counts[: len(buckets)]):
                    state["counts"][i] += int(c)
                state["inf"] += int(entry.get("inf") or 0)
                state["count"] += int(entry.get("count") or 0)
                state["sum"] += float(entry.get("sum") or 0.0)

    def samples(table: dict[str, dict[tuple, float]]) -> dict:
        return {
            name: [
                {"labels": dict(key), "value": value}
                for key, value in sorted(slot.items())
            ]
            for name, slot in sorted(table.items())
        }

    merged_histograms: dict[str, Any] = {}
    for name, slot in sorted(histograms.items()):
        series = []
        for key, state in sorted(slot["series"].items()):
            entry = dict(state)
            for p in percentiles:
                entry[f"p{p:g}"] = _percentile_from_counts(
                    slot["buckets"], state["counts"], state["inf"], p
                )
            series.append(entry)
        merged_histograms[name] = {
            "buckets": list(slot["buckets"]),
            "series": series,
        }

    return {
        "counters": samples(counters),
        "gauges": samples(gauges),
        "histograms": merged_histograms,
        "workers_merged": len(snapshots),
    }
