"""`repro.obs`: zero-dependency observability for the serving stack.

* `registry` — `MetricsRegistry` (counters/gauges/histograms with
  p50/p95/p99 estimation) plus lazy *providers* wrapping the legacy
  ``stats()`` surfaces, so registry values equal stats values by
  construction.
* `exposition` — Prometheus text rendering (``GET /metrics``) and the
  scrape validator the CI smoke uses.
* `timing` — thread-local exclusive `StageTimer` and the ``stage()``
  context the library choke points wrap themselves in.
* `logs` — `RequestLogger`, one JSON line per request to stderr,
  behind ``--log-format json``.

See DESIGN.md §3c for the observability contract (what each provider
registers, label cardinality bounds).
"""

from .exposition import CONTENT_TYPE, render_prometheus, validate_exposition
from .logs import RequestLogger, request_logger_from_format
from .registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    flatten_stats,
    merge_snapshots,
)
from .timing import STAGES, StageTimer, activate, current_timer, deactivate, stage

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestLogger",
    "STAGES",
    "StageTimer",
    "activate",
    "current_timer",
    "deactivate",
    "flatten_stats",
    "merge_snapshots",
    "render_prometheus",
    "request_logger_from_format",
    "stage",
    "validate_exposition",
]
