"""Structured JSON request logs: one line per request, to stderr.

Enabled by ``--log-format json`` on ``serve``/``supervise``/``fleet``
(the flag is forwarded to fleet workers).  Each record is a single
JSON object per line — machine-parseable, append-only, no buffering
surprises (every record is flushed).  Field glossary lives in the
README "Operations" section; the stable core:

``ts``           ISO-8601 UTC wall time of completion
``event``        ``"request"`` (room for future event kinds)
``peer``         client address (``host:port`` or transport tag)
``op``           wire op (decide/plan/stats/ping/metrics)
``id``           request correlation id (when the client sent one)
``fingerprint``  schema fingerprint the request resolved to
``outcome``      ``"ok"`` or ``"error"``
``error_type``   ErrorFrame type on errors (absent on ok)
``retryable``    retry hint on errors (absent on ok)
``retry_after_ms``  backoff hint when the server supplied one
``elapsed_ms``   wall time from frame receipt to response write
``stages_ms``    exclusive per-stage split (see `repro.obs.timing`)
"""

from __future__ import annotations

import datetime as _datetime
import io
import json
import sys
import threading
from typing import Any, Optional, TextIO

__all__ = ["RequestLogger", "request_logger_from_format"]


class RequestLogger:
    """Thread-safe JSON-lines emitter for per-request records."""

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        clock: Optional[Any] = None,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._clock = clock
        self._lock = threading.Lock()
        self.records_written = 0
        self.records_dropped = 0

    def _now(self) -> str:
        if self._clock is not None:
            stamp = _datetime.datetime.fromtimestamp(
                self._clock(), tz=_datetime.timezone.utc
            )
        else:
            stamp = _datetime.datetime.now(tz=_datetime.timezone.utc)
        return stamp.isoformat(timespec="milliseconds").replace(
            "+00:00", "Z"
        )

    def log(self, event: str = "request", **fields: Any) -> None:
        """Emit one record; ``None``-valued fields are omitted.

        Never raises: a closed/broken stream or an unserializable
        field drops the record (counted) rather than failing the
        request it describes.
        """
        record: dict[str, Any] = {"ts": self._now(), "event": event}
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        try:
            line = json.dumps(record, default=str, sort_keys=False)
            with self._lock:
                self._stream.write(line + "\n")
                self._stream.flush()
            self.records_written += 1
        except (OSError, ValueError, io.UnsupportedOperation):
            self.records_dropped += 1

    def stats(self) -> dict:
        return {
            "records_written": self.records_written,
            "records_dropped": self.records_dropped,
        }


def request_logger_from_format(
    log_format: Optional[str], stream: Optional[TextIO] = None
) -> Optional[RequestLogger]:
    """CLI glue: ``"json"`` → a logger, ``None``/``"text"`` → None."""
    if log_format == "json":
        return RequestLogger(stream=stream)
    if log_format in (None, "text"):
        return None
    raise ValueError(f"unknown log format: {log_format!r}")
