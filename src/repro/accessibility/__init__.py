"""Accesses, access selections, accessible parts."""

from .access import (
    AccessRequest,
    AccessSelection,
    Binding,
    EagerSelection,
    ExplicitSelection,
    RandomSelection,
    StingySelection,
    is_valid_output,
    matching_tuples,
    required_output_size,
    valid_outputs,
)
from .accessible import (
    AccessiblePartResult,
    accessible_part,
    is_access_valid,
)

__all__ = [
    "AccessRequest", "AccessSelection", "Binding", "EagerSelection",
    "ExplicitSelection", "RandomSelection", "StingySelection",
    "is_valid_output", "matching_tuples", "required_output_size",
    "valid_outputs",
    "AccessiblePartResult", "accessible_part", "is_access_valid",
]
