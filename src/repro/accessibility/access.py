"""Accesses, valid outputs, and access selections.

An **access** pairs a method with a binding for its input positions; its
**matching tuples** in an instance are the relation facts agreeing with
the binding; a **valid output** (paper §2) is:

* all matching tuples, when the method has no bound;
* any subset of exactly ``min(|matching|, k)`` tuples under a result
  bound k;
* any subset of at least ``min(|matching|, k)`` tuples under a result
  lower bound k.

An **access selection** fixes one valid output per access (the idempotent
semantics of App A); the library ships deterministic, seeded-random, and
adversarial selections so that plans can be executed and stress-tested
against the nondeterminism.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.terms import GroundTerm
from ..schema.access import AccessMethod

#: A binding: values for the method's input positions, in position order.
Binding = tuple[GroundTerm, ...]


@dataclass(frozen=True)
class AccessRequest:
    """A single access: a method plus a binding for its input positions."""

    method: AccessMethod
    binding: Binding

    def __post_init__(self) -> None:
        if len(self.binding) != len(self.method.input_positions):
            raise ValueError(
                f"binding arity {len(self.binding)} does not match method "
                f"{self.method.name} with {len(self.method.input_positions)} "
                "inputs"
            )

    def __repr__(self) -> str:
        values = ", ".join(str(v) for v in self.binding)
        return f"{self.method.name}({values})"


def matching_tuples(
    instance: Instance, request: AccessRequest
) -> frozenset[Atom]:
    """All facts of the accessed relation agreeing with the binding."""
    method = request.method
    positions = method.sorted_input_positions
    if not positions:
        # facts_of returns a live view; callers of matching_tuples hold
        # the result across instance mutations, so snapshot it here.
        return frozenset(instance.facts_of(method.relation.name))
    candidates: Optional[frozenset[Atom]] = None
    for position, value in zip(positions, request.binding):
        found = instance.facts_with(method.relation.name, position, value)
        # Snapshot the first (live) bucket; later intersections allocate.
        candidates = (
            frozenset(found) if candidates is None else candidates & found
        )
        if not candidates:
            return frozenset()
    return candidates or frozenset()


def required_output_size(method: AccessMethod, matching: int) -> int:
    """Minimum size of a valid output given `matching` matching tuples."""
    bound = method.effective_bound()
    if bound is None:
        return matching
    return min(matching, bound)


def is_valid_output(
    output: frozenset[Atom], instance: Instance, request: AccessRequest
) -> bool:
    """Check the paper's validity conditions for an output."""
    matching = matching_tuples(instance, request)
    if not output <= matching:
        return False
    method = request.method
    minimum = required_output_size(method, len(matching))
    if len(output) < minimum:
        return False
    if method.result_bound is not None and len(output) > method.result_bound:
        return False
    return True


def valid_outputs(
    instance: Instance,
    request: AccessRequest,
    *,
    limit: Optional[int] = None,
) -> Iterator[frozenset[Atom]]:
    """Enumerate valid outputs (used by exhaustive plan verification).

    Under a result bound the valid outputs are the size-``min(|M|, k)``
    subsets of the matching tuples M; under a lower bound, all subsets of
    size at least that; without bounds, just M.  ``limit`` caps the
    enumeration.
    """
    matching = matching_tuples(instance, request)
    method = request.method
    bound = method.effective_bound()
    produced = 0
    if bound is None:
        yield matching
        return
    ordered = sorted(matching, key=repr)
    minimum = required_output_size(method, len(matching))
    if method.result_bound is not None:
        sizes: Iterable[int] = (minimum,)
    else:
        sizes = range(minimum, len(ordered) + 1)
    for size in sizes:
        for subset in itertools.combinations(ordered, size):
            yield frozenset(subset)
            produced += 1
            if limit is not None and produced >= limit:
                return


class AccessSelection:
    """Base class: a consistent choice of valid output per access.

    Selections memoize their choices so that repeating an access returns
    the same output (the idempotent semantics of App A).  Subclasses
    implement `_choose`.
    """

    def __init__(self) -> None:
        self._memo: dict[tuple[str, Binding], frozenset[Atom]] = {}

    def select(
        self, instance: Instance, request: AccessRequest
    ) -> frozenset[Atom]:
        key = (request.method.name, request.binding)
        if key not in self._memo:
            self._memo[key] = self._choose(instance, request)
        return self._memo[key]

    def _choose(
        self, instance: Instance, request: AccessRequest
    ) -> frozenset[Atom]:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget memoized choices (a fresh selection)."""
        self._memo.clear()


class EagerSelection(AccessSelection):
    """Returns as many tuples as allowed (all of them for lower bounds).

    Deterministic: under a result bound k it returns the k first matching
    tuples in a canonical order.
    """

    def _choose(
        self, instance: Instance, request: AccessRequest
    ) -> frozenset[Atom]:
        matching = matching_tuples(instance, request)
        bound = request.method.result_bound
        if bound is None:
            return matching
        ordered = sorted(matching, key=repr)
        return frozenset(ordered[:bound])


class StingySelection(AccessSelection):
    """Returns as few tuples as allowed (the adversarial minimum).

    Deterministic: picks the ``min(|M|, k)`` canonically *last* matching
    tuples, which tends to starve plans that expect specific tuples.
    """

    def _choose(
        self, instance: Instance, request: AccessRequest
    ) -> frozenset[Atom]:
        matching = matching_tuples(instance, request)
        minimum = required_output_size(request.method, len(matching))
        ordered = sorted(matching, key=repr)
        return frozenset(ordered[len(ordered) - minimum:])


class RandomSelection(AccessSelection):
    """Returns a uniformly random valid output (seeded)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._random = random.Random(seed)

    def _choose(
        self, instance: Instance, request: AccessRequest
    ) -> frozenset[Atom]:
        matching = matching_tuples(instance, request)
        method = request.method
        bound = method.effective_bound()
        if bound is None:
            return matching
        minimum = required_output_size(method, len(matching))
        ordered = sorted(matching, key=repr)
        if method.result_bound is not None:
            size = minimum
        else:
            size = self._random.randint(minimum, len(ordered))
        return frozenset(self._random.sample(ordered, size))


class ExplicitSelection(AccessSelection):
    """A selection dictated by an explicit table (for targeted tests)."""

    def __init__(
        self,
        choices: dict[tuple[str, Binding], frozenset[Atom]],
        fallback: Optional[AccessSelection] = None,
    ) -> None:
        super().__init__()
        self._choices = dict(choices)
        self._fallback = fallback or EagerSelection()

    def _choose(
        self, instance: Instance, request: AccessRequest
    ) -> frozenset[Atom]:
        key = (request.method.name, request.binding)
        if key in self._choices:
            return self._choices[key]
        return self._fallback.select(instance, request)
