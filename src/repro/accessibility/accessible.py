"""Accessible parts and access-valid subinstances (paper §3).

The **accessible part** of an instance under an access selection σ is the
fixpoint of: start from a seed value set (∅ in the paper; plans may seed
query constants), perform every possible access with the values collected
so far, collect the returned facts, and repeat.

A subinstance ``IAccessed ⊆ I`` is **access-valid in I** if every access
with values from IAccessed admits an output inside IAccessed that is valid in I
(Prop 3.2's reformulation of AMonDet).  Both notions drive the semantic
(model-theoretic) side of the library: the AMonDet falsifier and the
correctness tests of the simplification theorems.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Optional

from ..data.instance import Instance
from ..logic.terms import GroundTerm
from ..schema.schema import Schema
from .access import (
    AccessRequest,
    AccessSelection,
    Binding,
    EagerSelection,
    matching_tuples,
    required_output_size,
)


@dataclass
class AccessiblePartResult:
    """The accessible part plus the trace of accesses performed."""

    part: Instance
    accessible_values: frozenset[GroundTerm]
    rounds: int
    accesses: list[AccessRequest]


def _all_bindings(
    method_inputs: int, values: Iterable[GroundTerm]
) -> Iterable[Binding]:
    ordered = sorted(values, key=repr)
    return itertools.product(ordered, repeat=method_inputs)


def accessible_part(
    instance: Instance,
    schema: Schema,
    selection: Optional[AccessSelection] = None,
    *,
    seed_values: Iterable[GroundTerm] = (),
    max_rounds: Optional[int] = None,
) -> AccessiblePartResult:
    """Compute AccPart(σ, I) by the paper's mutual fixpoint.

    ``seed_values`` extends the initial accessible value set (plans that
    mention constants may bind them immediately; the paper's definition
    uses the empty seed, which is the default).
    """
    selection = selection or EagerSelection()
    part = Instance()
    accessible: set[GroundTerm] = set(seed_values)
    performed: set[tuple[str, Binding]] = set()
    trace: list[AccessRequest] = []
    rounds = 0
    while True:
        if max_rounds is not None and rounds >= max_rounds:
            break
        rounds += 1
        new_facts = 0
        for method in schema.methods:
            input_count = len(method.input_positions)
            for binding in _all_bindings(input_count, accessible):
                key = (method.name, binding)
                if key in performed:
                    continue
                performed.add(key)
                request = AccessRequest(method, binding)
                trace.append(request)
                output = selection.select(instance, request)
                new_facts += part.add_all(output)
        new_values = part.active_domain() - accessible
        accessible.update(new_values)
        if not new_facts and not new_values:
            break
    return AccessiblePartResult(
        part, frozenset(accessible), rounds, trace
    )


def is_access_valid(
    subinstance: Instance,
    instance: Instance,
    schema: Schema,
    *,
    seed_values: Iterable[GroundTerm] = (),
) -> bool:
    """Is `subinstance` access-valid in `instance` for `schema`?

    For every access whose binding draws from Adom(subinstance) (plus the
    seed values), some valid output in `instance` must lie entirely inside
    `subinstance`.  With the paper's output-size characterization this
    reduces to a counting test per access:

    * exact method: all matching tuples of `instance` are in `subinstance`;
    * (lower-)bounded method with bound k: `subinstance` contains at least
      ``min(|matching in instance|, k)`` matching tuples.
    """
    if not subinstance.is_subinstance_of(instance):
        return False
    values = set(subinstance.active_domain()) | set(seed_values)
    for method in schema.methods:
        input_count = len(method.input_positions)
        for binding in _all_bindings(input_count, values):
            request = AccessRequest(method, binding)
            matching_full = matching_tuples(instance, request)
            matching_sub = matching_tuples(subinstance, request)
            bound = method.effective_bound()
            if bound is None:
                if matching_full != matching_sub:
                    return False
            else:
                needed = required_output_size(method, len(matching_full))
                if len(matching_sub) < needed:
                    return False
    return True
