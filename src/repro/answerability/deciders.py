"""Decision procedures for monotone answerability, per constraint class.

Each decider follows the paper's recipe for its Table-1 row:

* `decide_with_fds` (Thm 5.2, NP): FD simplification, then the inlined
  containment, whose restricted chase terminates in polynomially many
  rounds;
* `decide_with_ids` (Thm 5.3/5.4, EXPTIME / NP for bounded width):
  result bounds are existence checks (Thm 4.2); the containment is
  *linearized* (Prop 5.5) and decided completely by backward UCQ
  rewriting; a direct chase route is kept as an ablation baseline;
* `decide_with_uids_and_fds` (Thm 7.2, EXPTIME): choice simplification
  (Thm 6.4), the separability rewriting that exports FD-determined
  positions, FD-minimization of Q, then a GTGD chase;
* `decide_with_choice_simplification` (Thm 7.1 / Thm 6.3): choice
  simplification then the guarded chase — complete whenever the chase
  terminates, else honest UNKNOWN (containment for FGTGDs is
  2EXPTIME-complete; for arbitrary equality-free FO it is undecidable,
  Prop 8.2).

`decide_monotone_answerability` dispatches on the detected constraint
class.  Non-Boolean queries are decided by freezing their free variables
into fresh constants (the standard reduction the paper alludes to in §2).

Every decider accepts either a raw `Schema` or a
`repro.service.CompiledSchema`; raw schemas are compiled on the fly, so
the free functions keep their historical behavior while sessions
deciding many queries amortize the per-schema analysis (simplification,
AMonDet axioms, linearization) across calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..chase.engine import ChaseOutcome, chase
from ..constraints.analysis import ConstraintClass
from ..constraints.fd import FunctionalDependency, det_by
from ..constraints.tgd import TGD
from ..containment.decision import Decision, Truth
from ..containment.rewriting import (
    DEFAULT_MAX_DISJUNCTS,
    RewritingBudgetExceeded,
    RewritingError,
)
from ..data.instance import Instance
from ..logic.atoms import Atom
from ..logic.evaluation import holds
from ..logic.queries import ConjunctiveQuery
from ..logic.terms import Constant, Variable
from ..runtime import Budget
from ..schema.schema import Schema
from .axioms import (
    amondet_start_instance,
    exact_method_axioms,
    prime_query,
)
from .naming import ACCESSIBLE, primed

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..service.compiled import CompiledSchema

SchemaLike = Union[Schema, "CompiledSchema"]

#: Round cap used when no termination guarantee applies.
DEFAULT_CHASE_ROUNDS = 25
#: Fact cap protecting against breadth explosion.
DEFAULT_CHASE_FACTS = 100_000


def _as_compiled(schema: SchemaLike) -> "CompiledSchema":
    # Imported lazily: `repro.service` depends on this module.
    from ..service.compiled import as_compiled

    return as_compiled(schema)


def freeze_free_variables(
    query: ConjunctiveQuery,
) -> tuple[ConjunctiveQuery, dict[Variable, Constant]]:
    """Turn a non-Boolean CQ into a Boolean one by freezing free
    variables into fresh distinguished constants."""
    freezing = {
        v: Constant(("@free", v.name)) for v in query.free_variables
    }
    boolean = ConjunctiveQuery(
        tuple(a.substitute(freezing) for a in query.atoms),
        (),
        query.name + "_b",
    )
    return boolean, freezing


def _chase_containment(
    start: Instance,
    constraints,
    target: ConjunctiveQuery,
    *,
    max_rounds: Optional[int],
    max_facts: int = DEFAULT_CHASE_FACTS,
    engine: str = "delta",
    matcher=None,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> Decision:
    """Run the containment chase from an explicit start instance.

    ``matcher`` is the compiled schema's per-fingerprint matcher: the
    chase's trigger/activeness searches and the per-round target probe
    all share its plans and check caches across queries.  ``budget`` is
    handed to the chase (checked every round) and to the per-round
    target probe; `repro.runtime.DeadlineExceeded` propagates to the
    caller rather than being folded into a Decision.
    """
    if matcher is not None:
        stop_when = lambda inst: matcher.has(  # noqa: E731
            target.atoms, inst, budget=budget
        )
    else:
        stop_when = lambda inst: holds(target, inst)  # noqa: E731
    result = chase(
        start,
        constraints,
        max_rounds=max_rounds,
        max_facts=max_facts,
        stop_when=stop_when,
        record_steps=True,
        engine=engine,
        matcher=matcher,
        budget=budget,
        parallelism=parallelism,
    )
    if result.outcome is ChaseOutcome.FAILED:
        return Decision.yes(
            "query unsatisfiable under the constraints", rounds=result.rounds
        )
    if result.outcome is ChaseOutcome.EARLY_STOP:
        return Decision.yes(
            f"AMonDet containment proved at chase round {result.rounds}",
            certificate=result,
            rounds=result.rounds,
        )
    if result.outcome is ChaseOutcome.FIXPOINT:
        return Decision.no(
            "chase fixpoint (universal model) refutes the containment",
            certificate=result,
            rounds=result.rounds,
        )
    return Decision.unknown(
        f"chase bound hit after {result.rounds} rounds / "
        f"{len(result.instance)} facts",
        rounds=result.rounds,
        error={
            "type": "ChaseBudgetExceeded",
            "rounds": result.rounds,
            "facts": len(result.instance),
        },
    )


# ----------------------------------------------------------------------
# FDs (Theorem 5.2) — also covers the constraint-free case
# ----------------------------------------------------------------------
def decide_with_fds(
    schema: SchemaLike,
    query: ConjunctiveQuery,
    *,
    max_rounds: Optional[int] = 500,
    max_facts: int = DEFAULT_CHASE_FACTS,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> Decision:
    """Monotone answerability for FD constraints (NP, Thm 5.2).

    Applies the FD simplification (Thm 4.5) and chases; the chase
    terminates (the only existential rules fire once per view fact), so
    the answer is definitive.
    """
    compiled = _as_compiled(schema)
    if query.free_variables:
        query, __ = freeze_free_variables(query)
    simplified = compiled.simplification("fd")
    decision = _chase_containment(
        amondet_start_instance(query),
        compiled.amondet("fd"),
        prime_query(query),
        max_rounds=max_rounds,
        max_facts=max_facts,
        matcher=compiled.matcher(),
        budget=budget,
        parallelism=parallelism,
    )
    decision.detail["simplification"] = simplified.kind
    return decision


# ----------------------------------------------------------------------
# IDs (Theorems 5.3 / 5.4) — linearization route (complete) + chase route
# ----------------------------------------------------------------------
def decide_with_ids(
    schema: SchemaLike,
    query: ConjunctiveQuery,
    *,
    route: str = "linearization",
    max_rounds: Optional[int] = DEFAULT_CHASE_ROUNDS,
    max_facts: int = DEFAULT_CHASE_FACTS,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    subsumption: bool = True,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> Decision:
    """Monotone answerability for ID constraints.

    ``route="linearization"`` (default) is complete and terminating: the
    containment is simulated by linear TGDs (Prop 5.5) and decided by
    the backward UCQ rewriting of the compiled schema's `RewriteEngine`
    — so a batch of queries over one compiled schema shares every
    rewriting step.  ``route="chase"`` applies the existence-check
    simplification and chases directly (ablation baseline; may return
    UNKNOWN on divergent chases).

    ``subsumption`` (default on) prunes rewriting disjuncts hom-implied
    by smaller kept ones before the canonical-database probes: the
    pruned UCQ is logically equivalent, so the decision is unchanged
    while fewer disjuncts are matched (set False to probe the raw
    isomorphism-deduplicated rewriting — the pre-pruning behavior).
    """
    compiled = _as_compiled(schema)
    if query.free_variables:
        query, __ = freeze_free_variables(query)
    if route == "chase":
        decision = _chase_containment(
            amondet_start_instance(query),
            compiled.amondet("existence-check"),
            prime_query(query),
            max_rounds=max_rounds,
            max_facts=max_facts,
            matcher=compiled.matcher(),
            budget=budget,
            parallelism=parallelism,
        )
        decision.detail["route"] = "chase"
        return decision
    if route != "linearization":
        raise ValueError(f"unknown route {route}")

    system = compiled.linearization()
    start = system.initial_instance(query)
    target = prime_query(query)
    try:
        rewriting = compiled.rewrite_engine(subsumption=subsumption).rewrite(
            target, max_disjuncts=max_disjuncts, budget=budget
        )
    except RewritingBudgetExceeded as error:
        return Decision.unknown(
            str(error), route="linearization", error=error.as_detail()
        )
    except RewritingError as error:
        return Decision.unknown(str(error), route="linearization")
    matcher = compiled.matcher()
    for disjunct in rewriting.disjuncts:
        if matcher.has(disjunct.atoms, start, budget=budget):
            return Decision.yes(
                "linearized rewriting matches the saturated canonical "
                "database (Prop 5.5 + backward rewriting)",
                certificate=disjunct,
                route="linearization",
                disjuncts=len(rewriting.disjuncts),
            )
    return Decision.no(
        "no disjunct of the complete linearized rewriting matches",
        route="linearization",
        disjuncts=len(rewriting.disjuncts),
    )


# ----------------------------------------------------------------------
# UIDs + FDs (Theorem 7.2)
# ----------------------------------------------------------------------
def _separability_axioms(
    schema: Schema, fds: list[FunctionalDependency]
) -> list[TGD]:
    """Choice axioms rewritten to export FD-determined positions.

    For a bound-1 method mt on R with inputs x̄, the head tuple keeps the
    body variables at every position of DetBy(R, x̄) and uses fresh
    existentials elsewhere; this makes the TGDs separable from the FDs
    (proof of Thm 7.2).
    """
    axioms: list[TGD] = []
    for method in schema.methods:
        if method.effective_bound() is None:
            axioms.extend(exact_method_axioms(method, inline=True))
            continue
        relation = method.relation.name
        arity = method.relation.arity
        determined = det_by(fds, relation, method.input_positions)
        terms = [Variable(f"x{i}") for i in range(arity)]
        premises = [
            Atom(ACCESSIBLE, (terms[i],))
            for i in sorted(method.input_positions)
        ]
        body = tuple(premises) + (Atom(relation, tuple(terms)),)
        head_terms = [
            terms[i] if i in determined else Variable(f"z{i}")
            for i in range(arity)
        ]
        head = [
            Atom(relation, tuple(head_terms)),
            Atom(primed(relation), tuple(head_terms)),
        ]
        head.extend(
            Atom(ACCESSIBLE, (head_terms[i],))
            for i in method.output_positions
        )
        axioms.append(TGD(body, tuple(head), f"sep_choice_{method.name}"))
    return axioms


def minimize_query_under_fds(
    query: ConjunctiveQuery, fds: list[FunctionalDependency]
) -> Optional[ConjunctiveQuery]:
    """Q*: the query with FD-implied equalities applied.

    Returns None when the FDs make the query unsatisfiable (constant
    clash), in which case it is trivially monotone answerable (a plan
    returning the empty table answers it).
    """
    canonical, freezing = query.canonical_instance()
    result = chase(canonical, fds)
    if result.outcome is ChaseOutcome.FAILED:
        return None
    unfreeze: dict = {}
    for variable, null in freezing.items():
        representative = result.substitution.get(null, null)
        unfreeze.setdefault(representative, variable)
    atoms = []
    for fact in result.instance:
        terms = tuple(unfreeze.get(t, t) for t in fact.terms)
        atoms.append(Atom(fact.relation, terms))
    return ConjunctiveQuery(tuple(atoms), (), query.name + "_min")


def decide_with_uids_and_fds(
    schema: SchemaLike,
    query: ConjunctiveQuery,
    *,
    max_rounds: Optional[int] = DEFAULT_CHASE_ROUNDS,
    max_facts: int = DEFAULT_CHASE_FACTS,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> Decision:
    """Monotone answerability for UIDs + FDs (Thm 7.2).

    Choice simplification (Thm 6.4), separability rewriting, FD
    minimization of Q, then the FDs are dropped and the remaining GTGD
    containment is chased.  Definitive on termination; UNKNOWN at the
    round cap (the paper's EXPTIME bound uses a generalized linearization
    we approximate by the chase — see DESIGN.md §2).
    """
    compiled = _as_compiled(schema)
    if query.free_variables:
        query, __ = freeze_free_variables(query)
    fds, constraints = compiled.uids_fds()

    minimized = minimize_query_under_fds(query, list(fds))
    if minimized is None:
        return Decision.yes(
            "query unsatisfiable under the FDs; the empty plan answers it",
            simplification="choice",
        )

    start, __ = minimized.canonical_instance()
    for constant in minimized.constants():
        start.add(Atom(ACCESSIBLE, (constant,)))
    decision = _chase_containment(
        start,
        constraints,
        prime_query(minimized),
        max_rounds=max_rounds,
        max_facts=max_facts,
        matcher=compiled.matcher(),
        budget=budget,
        parallelism=parallelism,
    )
    decision.detail["simplification"] = "choice+separability"
    return decision


# ----------------------------------------------------------------------
# Expressive classes via choice simplification (Thm 6.3 / 7.1)
# ----------------------------------------------------------------------
def decide_with_choice_simplification(
    schema: SchemaLike,
    query: ConjunctiveQuery,
    *,
    max_rounds: Optional[int] = DEFAULT_CHASE_ROUNDS,
    max_facts: int = DEFAULT_CHASE_FACTS,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> Decision:
    """Monotone answerability via choice simplification (TGD classes).

    Sound for all equality-free constraints (Thm 6.3); the chase-based
    containment is definitive when it terminates (e.g. weakly-acyclic or
    full TGDs) and UNKNOWN at the cap otherwise.
    """
    compiled = _as_compiled(schema)
    if query.free_variables:
        query, __ = freeze_free_variables(query)
    decision = _chase_containment(
        amondet_start_instance(query),
        compiled.amondet("choice"),
        prime_query(query),
        max_rounds=max_rounds,
        max_facts=max_facts,
        matcher=compiled.matcher(),
        budget=budget,
        parallelism=parallelism,
    )
    decision.detail["simplification"] = "choice"
    return decision


# ----------------------------------------------------------------------
# Dispatcher
# ----------------------------------------------------------------------
@dataclass
class AnswerabilityResult:
    """A decision plus the route that produced it."""

    decision: Decision
    route: str
    constraint_class: ConstraintClass

    @property
    def truth(self) -> Truth:
        return self.decision.truth

    @property
    def is_yes(self) -> bool:
        return self.decision.is_yes

    @property
    def is_no(self) -> bool:
        return self.decision.is_no

    @property
    def is_unknown(self) -> bool:
        return self.decision.is_unknown


def decide_monotone_answerability(
    schema: SchemaLike,
    query: ConjunctiveQuery,
    *,
    max_rounds: Optional[int] = DEFAULT_CHASE_ROUNDS,
    max_facts: int = DEFAULT_CHASE_FACTS,
    max_disjuncts: int = DEFAULT_MAX_DISJUNCTS,
    subsumption: bool = True,
    budget: Optional[Budget] = None,
    parallelism: int = 0,
) -> AnswerabilityResult:
    """Decide monotone answerability, dispatching on the constraint class.

    The routes implement Table 1 of the paper; see the per-class deciders
    for guarantees.  ``max_rounds`` caps the semidecidable chase routes
    only (the FD route's chase terminates on its own; the linearized ID
    route does not chase).  ``max_disjuncts`` bounds the backward
    rewriting of the ID route; exceeding it yields UNKNOWN with a
    structured `RewritingBudgetExceeded` detail.  ``subsumption``
    (default on) lets the ID route prune rewriting disjuncts hom-implied
    by smaller ones — logically equivalent, decision unchanged.  Schemas
    mixing arbitrary TGDs with FDs *and* carrying result bounds have no
    applicable simplifiability theorem (the paper leaves choice
    simplifiability of FDs + general IDs open, §9) — those return
    UNKNOWN.
    """
    compiled = _as_compiled(schema)
    fragment = compiled.constraint_class
    if fragment in (ConstraintClass.NONE, ConstraintClass.FDS):
        return AnswerabilityResult(
            decide_with_fds(
                compiled,
                query,
                max_facts=max_facts,
                budget=budget,
                parallelism=parallelism,
            ),
            "fd-simplification",
            fragment,
        )
    if fragment in (
        ConstraintClass.IDS,
        ConstraintClass.BOUNDED_WIDTH_IDS,
    ):
        return AnswerabilityResult(
            decide_with_ids(
                compiled,
                query,
                max_facts=max_facts,
                max_disjuncts=max_disjuncts,
                subsumption=subsumption,
                budget=budget,
                parallelism=parallelism,
            ),
            "linearization",
            fragment,
        )
    if fragment is ConstraintClass.UIDS_AND_FDS:
        return AnswerabilityResult(
            decide_with_uids_and_fds(
                compiled,
                query,
                max_rounds=max_rounds,
                max_facts=max_facts,
                budget=budget,
                parallelism=parallelism,
            ),
            "choice+separability",
            fragment,
        )
    if fragment in (
        ConstraintClass.FULL_TGDS,
        ConstraintClass.GUARDED_TGDS,
        ConstraintClass.FRONTIER_GUARDED_TGDS,
        ConstraintClass.EQUALITY_FREE,
    ):
        return AnswerabilityResult(
            decide_with_choice_simplification(
                compiled,
                query,
                max_rounds=max_rounds,
                max_facts=max_facts,
                budget=budget,
                parallelism=parallelism,
            ),
            "choice-simplification",
            fragment,
        )
    if not compiled.has_result_bounds:
        # No bounds: Prop 3.4 applies directly for arbitrary dependencies.
        if query.free_variables:
            query, __ = freeze_free_variables(query)
        decision = _chase_containment(
            amondet_start_instance(query),
            compiled.amondet("direct"),
            prime_query(query),
            max_rounds=max_rounds,
            max_facts=max_facts,
            matcher=compiled.matcher(),
            budget=budget,
            parallelism=parallelism,
        )
        return AnswerabilityResult(decision, "direct", fragment)
    return AnswerabilityResult(
        Decision.unknown(
            "no simplifiability theorem covers result bounds with "
            f"constraint class {fragment.value} (open per paper §9)"
        ),
        "unsupported",
        fragment,
    )
